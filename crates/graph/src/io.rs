//! Graph I/O: a plain-text edge-list format and a compact binary format.
//!
//! The text format is one `u v` pair per line, `#`-prefixed comment lines
//! allowed — the format SNAP datasets (live-journal, orkut, …) ship in.
//! The binary format is a little-endian `[magic, n, m, (u, v)*]` stream of
//! u64 words for fast reloading of generated instances.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::edgelist::EdgeList;

const BIN_MAGIC: u64 = 0x5452_4943_4e54_0001; // "TRICNT" v1

/// Reads a SNAP-style text edge list from `r`. Lines starting with `#` or
/// `%` are skipped; tokens are whitespace-separated.
pub fn read_text_edges<R: Read>(r: R) -> io::Result<EdgeList> {
    let mut el = EdgeList::new();
    let reader = BufReader::new(r);
    let mut line = String::new();
    let mut reader = reader;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge line: {t:?}"),
                ))
            }
        };
        let parse = |s: &str| {
            s.parse::<u64>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad id {s:?}: {e}"))
            })
        };
        el.push(parse(u)?, parse(v)?);
    }
    Ok(el)
}

/// Writes a canonical edge list as text.
pub fn write_text_edges<W: Write>(w: W, el: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for &(u, v) in el.pairs() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph in the binary format.
pub fn write_binary<W: Write>(w: W, g: &Csr) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let el = g.to_edge_list();
    w.write_all(&BIN_MAGIC.to_le_bytes())?;
    w.write_all(&g.num_vertices().to_le_bytes())?;
    w.write_all(&(el.len() as u64).to_le_bytes())?;
    for &(u, v) in el.pairs() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a graph from the binary format.
pub fn read_binary<R: Read>(r: R) -> io::Result<Csr> {
    let mut r = BufReader::new(r);
    let mut word = [0u8; 8];
    let mut next = |r: &mut BufReader<R>| -> io::Result<u64> {
        r.read_exact(&mut word)?;
        Ok(u64::from_le_bytes(word))
    };
    let magic = next(&mut r)?;
    if magic != BIN_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n = next(&mut r)?;
    let m = next(&mut r)?;
    let mut el = EdgeList::new();
    for _ in 0..m {
        let u = next(&mut r)?;
        let v = next(&mut r)?;
        if u >= n || v >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge id out of range",
            ));
        }
        el.push(u, v);
    }
    el.canonicalize();
    Ok(Csr::from_edges(n, &el))
}

/// Convenience: load a graph from a path, dispatching on extension
/// (`.bin` → binary, anything else → text edge list).
pub fn load_graph<P: AsRef<Path>>(path: P) -> io::Result<Csr> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "bin") {
        read_binary(f)
    } else {
        let mut el = read_text_edges(f)?;
        el.canonicalize();
        let n = el.num_vertices();
        Ok(Csr::from_edges(n, &el))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        el.canonicalize();
        Csr::from_edges(4, &el)
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_text_edges(&mut buf, &g.to_edge_list()).unwrap();
        let mut el = read_text_edges(&buf[..]).unwrap();
        el.canonicalize();
        assert_eq!(Csr::from_edges(4, &el), g);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let data = "# comment\n% other comment\n\n0 1\n1 2\n";
        let el = read_text_edges(data.as_bytes()).unwrap();
        assert_eq!(el.pairs(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text_edges("0\n".as_bytes()).is_err());
        assert!(read_text_edges("a b\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = [0u8; 24];
        assert!(read_binary(&buf[..]).is_err());
    }
}

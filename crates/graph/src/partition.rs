//! Contiguous 1D vertex partitions (paper §II-B: *ID partitioning*).
//!
//! Each PE `P_i` owns a contiguous range of vertex ids `V_i`; ranges are
//! globally sorted (`rank(v) < rank(w) ⇒ v < w`), which the surrogate
//! message-deduplication trick of Arifuzzaman et al. relies on.

use crate::csr::Csr;
use crate::VertexId;

/// A contiguous partition of vertex ids `0..n` into `p` ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `p + 1` boundaries: PE `i` owns `[bounds[i], bounds[i+1])`.
    bounds: Vec<VertexId>,
}

impl Partition {
    /// Splits `0..n` into `p` ranges with vertex counts as equal as possible
    /// (the first `n mod p` ranges get one extra vertex).
    pub fn balanced_vertices(n: u64, p: usize) -> Self {
        assert!(p > 0, "partition needs at least one PE");
        let p64 = p as u64;
        let base = n / p64;
        let extra = n % p64;
        let mut bounds = Vec::with_capacity(p + 1);
        let mut acc = 0u64;
        bounds.push(0);
        for i in 0..p64 {
            acc += base + u64::from(i < extra);
            bounds.push(acc);
        }
        Self { bounds }
    }

    /// Splits `0..n` so that each range carries a roughly equal number of
    /// adjacency entries of `g` (degree-sum balancing — reduces the work
    /// imbalance skewed graphs cause under vertex balancing).
    pub fn balanced_edges(g: &Csr, p: usize) -> Self {
        Self::balanced_by_cost(g, p, |d| d)
    }

    /// Splits `0..n` so that each contiguous range carries a roughly equal
    /// share of `Σ_v cost(d_v)` — the prefix-sum based, degree-cost-function
    /// load balancing of Arifuzzaman et al. that the paper's §IV-D
    /// discusses. `cost` maps a vertex degree to its estimated work.
    pub fn balanced_by_cost(g: &Csr, p: usize, cost: impl Fn(u64) -> u64) -> Self {
        assert!(p > 0, "partition needs at least one PE");
        let n = g.num_vertices();
        let total: u64 = g.vertices().map(|v| cost(g.degree(v))).sum();
        let mut bounds = Vec::with_capacity(p + 1);
        bounds.push(0u64);
        let mut acc = 0u64;
        let mut v = 0u64;
        for i in 1..p {
            let target = total * i as u64 / p as u64;
            while v < n && acc < target {
                acc += cost(g.degree(v));
                v += 1;
            }
            bounds.push(v);
        }
        bounds.push(n);
        Self { bounds }
    }

    /// Builds a partition from explicit boundaries (`bounds[0] == 0`,
    /// nondecreasing, last element is `n`).
    pub fn from_bounds(bounds: Vec<VertexId>) -> Self {
        assert!(!bounds.is_empty() && bounds[0] == 0);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        Self { bounds }
    }

    /// Number of PEs `p`.
    pub fn num_ranks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> u64 {
        *self.bounds.last().unwrap()
    }

    /// The range `V_i` owned by PE `i`.
    pub fn range(&self, rank: usize) -> std::ops::Range<VertexId> {
        self.bounds[rank]..self.bounds[rank + 1]
    }

    /// `|V_i|`.
    pub fn size_of(&self, rank: usize) -> u64 {
        self.bounds[rank + 1] - self.bounds[rank]
    }

    /// `rank(v)`: the PE owning vertex `v` (binary search over boundaries).
    #[inline]
    pub fn rank_of(&self, v: VertexId) -> usize {
        debug_assert!(v < self.num_vertices(), "vertex {v} out of range");
        // partition_point returns the count of bounds <= v among bounds[1..]
        match self.bounds[1..].binary_search_by(|b| {
            if *b <= v {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        }) {
            Ok(i) | Err(i) => i,
        }
    }

    /// Whether PE `rank` owns `v`.
    #[inline]
    pub fn owns(&self, rank: usize, v: VertexId) -> bool {
        v >= self.bounds[rank] && v < self.bounds[rank + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    #[test]
    fn balanced_vertices_covers_everything() {
        for n in [0u64, 1, 7, 64, 65, 100] {
            for p in [1usize, 2, 3, 7, 16] {
                let part = Partition::balanced_vertices(n, p);
                assert_eq!(part.num_ranks(), p);
                assert_eq!(part.num_vertices(), n);
                let total: u64 = (0..p).map(|r| part.size_of(r)).sum();
                assert_eq!(total, n);
                // sizes differ by at most one
                let sizes: Vec<u64> = (0..p).map(|r| part.size_of(r)).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn rank_of_agrees_with_ranges() {
        let part = Partition::balanced_vertices(100, 7);
        for v in 0..100u64 {
            let r = part.rank_of(v);
            assert!(part.owns(r, v), "v={v} r={r}");
            assert!(part.range(r).contains(&v));
        }
    }

    #[test]
    fn ranks_are_globally_sorted() {
        let part = Partition::balanced_vertices(64, 5);
        for v in 0..63u64 {
            assert!(part.rank_of(v) <= part.rank_of(v + 1));
        }
    }

    #[test]
    fn edge_balanced_covers_everything() {
        // a skewed graph: star with center 0
        let mut el = EdgeList::from_pairs((1..50).map(|v| (0u64, v)).collect());
        el.canonicalize();
        let g = Csr::from_edges(50, &el);
        let part = Partition::balanced_edges(&g, 4);
        assert_eq!(part.num_ranks(), 4);
        assert_eq!(part.num_vertices(), 50);
        let total: u64 = (0..4).map(|r| part.size_of(r)).sum();
        assert_eq!(total, 50);
        // the star center alone should saturate the first range
        assert!(part.size_of(0) < 50 / 2);
    }

    #[test]
    fn cost_function_balancing_shifts_boundaries() {
        // star graph: cost d² puts the center alone-ish even harder than
        // cost d
        let mut el = EdgeList::from_pairs((1..101).map(|v| (0u64, v)).collect());
        el.canonicalize();
        let g = Csr::from_edges(101, &el);
        let by_deg = Partition::balanced_by_cost(&g, 4, |d| d);
        let by_sq = Partition::balanced_by_cost(&g, 4, |d| d * d);
        assert!(by_sq.size_of(0) <= by_deg.size_of(0));
        // both cover everything
        for part in [&by_deg, &by_sq] {
            let total: u64 = (0..4).map(|r| part.size_of(r)).sum();
            assert_eq!(total, 101);
        }
    }

    #[test]
    fn degenerate_cost_function_is_safe() {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2)]);
        el.canonicalize();
        let g = Csr::from_edges(3, &el);
        // zero cost: boundaries collapse left but remain valid
        let part = Partition::balanced_by_cost(&g, 3, |_| 0);
        assert_eq!(part.num_vertices(), 3);
        let total: u64 = (0..3).map(|r| part.size_of(r)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn single_rank_owns_all() {
        let part = Partition::balanced_vertices(10, 1);
        assert_eq!(part.range(0), 0..10);
        assert_eq!(part.rank_of(9), 0);
    }

    #[test]
    fn empty_ranges_allowed() {
        let part = Partition::balanced_vertices(2, 4);
        let total: u64 = (0..4).map(|r| part.size_of(r)).sum();
        assert_eq!(total, 2);
        assert_eq!(part.rank_of(0), 0);
        assert_eq!(part.rank_of(1), 1);
    }
}

//! The *adjacency array* (CSR) graph representation of §II-B: for each vertex
//! the set of neighbors `N_v`, stored compressed in two arrays, each
//! neighborhood sorted ascending by vertex id.

use crate::edgelist::EdgeList;
use crate::VertexId;

/// An undirected graph in adjacency-array (CSR) form.
///
/// Every undirected edge `{u, v}` is stored twice: `v ∈ N_u` and `u ∈ N_v`.
/// Neighborhoods are sorted ascending, which the merge-based set
/// intersections of the counting algorithms rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR graph from a canonical edge list (see
    /// [`EdgeList::canonicalize`]) with `n` vertices. Ids in the list must be
    /// `< n`.
    pub fn from_edges(n: u64, edges: &EdgeList) -> Self {
        let n = n as usize;
        let mut degrees = vec![0usize; n];
        for &(u, v) in edges.pairs() {
            debug_assert!(u < v, "edge list must be canonical");
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; acc];
        let mut cursor = offsets.clone();
        for &(u, v) in edges.pairs() {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        let mut csr = Self { offsets, targets };
        csr.sort_neighborhoods();
        csr
    }

    /// Builds a CSR directly from per-vertex sorted neighbor lists. Used by
    /// orientation and contraction, which produce already-sorted lists.
    pub fn from_neighbor_lists(lists: Vec<Vec<VertexId>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for list in lists {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "lists must be sorted+unique"
            );
            targets.extend_from_slice(&list);
            offsets.push(targets.len());
        }
        Self { offsets, targets }
    }

    fn sort_neighborhoods(&mut self) {
        for v in 0..self.num_vertices() {
            let (lo, hi) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
            self.targets[lo..hi].sort_unstable();
        }
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of undirected edges `m`. For oriented/asymmetric graphs (built
    /// via [`Csr::from_neighbor_lists`]) use [`Csr::num_directed_edges`].
    pub fn num_edges(&self) -> u64 {
        (self.targets.len() / 2) as u64
    }

    /// Number of stored (directed) adjacency entries.
    pub fn num_directed_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// The (sorted) neighborhood `N_v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree `d_v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u64
    }

    /// All degrees as a vector.
    pub fn degrees(&self) -> Vec<u64> {
        (0..self.num_vertices()).map(|v| self.degree(v)).collect()
    }

    /// Whether `{u, v} ∈ E`, by binary search.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Iterator over canonical undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over all directed adjacency entries `(u, v)` (each
    /// undirected edge twice for symmetric graphs).
    pub fn directed_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().copied().map(move |v| (u, v)))
    }

    /// Total number of *wedges* (paths of length 2), `Σ_v d_v·(d_v−1)/2`.
    /// This is the quantity the paper reports per instance in Table I.
    pub fn num_wedges(&self) -> u64 {
        self.vertices()
            .map(|v| {
                let d = self.degree(v);
                d * d.saturating_sub(1) / 2
            })
            .sum()
    }

    /// Converts back to a canonical edge list.
    pub fn to_edge_list(&self) -> EdgeList {
        self.edges().collect()
    }

    /// Checks structural invariants (sorted unique neighborhoods, no self
    /// loops, symmetry). Intended for tests and debug assertions.
    pub fn validate_symmetric(&self) -> Result<(), String> {
        for v in self.vertices() {
            let ns = self.neighbors(v);
            if !ns.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("neighborhood of {v} not sorted/unique"));
            }
            if ns.binary_search(&v).is_ok() {
                return Err(format!("self loop at {v}"));
            }
            for &u in ns {
                if u >= self.num_vertices() {
                    return Err(format!("edge target {u} out of range"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Csr {
        // 0-1, 0-2, 1-2 (triangle), 2-3 (tail)
        let mut el = EdgeList::from_pairs(vec![(0, 1), (2, 0), (1, 2), (3, 2)]);
        el.canonicalize();
        Csr::from_edges(4, &el)
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn has_edge_lookup() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn wedge_count() {
        let g = triangle_plus_tail();
        // degrees: 2,2,3,1 → wedges 1+1+3+0 = 5
        assert_eq!(g.num_wedges(), 5);
    }

    #[test]
    fn roundtrip_edge_list() {
        let g = triangle_plus_tail();
        let el = g.to_edge_list();
        let g2 = Csr::from_edges(4, &el);
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new();
        let g = Csr::from_edges(0, &el);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_wedges(), 0);
    }

    #[test]
    fn from_neighbor_lists_asymmetric() {
        // Oriented triangle 0→1, 0→2, 1→2.
        let g = Csr::from_neighbor_lists(vec![vec![1, 2], vec![2], vec![]]);
        assert_eq!(g.num_directed_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }
}

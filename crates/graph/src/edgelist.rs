//! Undirected edge lists and the normalisation pipeline used before building
//! a [`Csr`](crate::Csr).
//!
//! The paper's preprocessing (§V-C): directed inputs are interpreted as
//! undirected, duplicate edges and self-loops are dropped, and vertices with
//! no neighbors are removed. [`EdgeList::canonicalize`] implements exactly
//! that pipeline.

use crate::hash::FxHashMap;
use crate::VertexId;

/// An undirected edge list. Edges are stored as `(u, v)` pairs; the list may
/// be unnormalised (duplicates, self loops, both orientations) until
/// [`EdgeList::canonicalize`] is called.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// Creates an empty edge list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an edge list from raw pairs (possibly unnormalised).
    pub fn from_pairs(edges: Vec<(VertexId, VertexId)>) -> Self {
        Self { edges }
    }

    /// Adds a single (possibly unnormalised) edge.
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of stored pairs (before canonicalisation this may include
    /// duplicates and self loops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list contains no pairs.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The raw pairs.
    pub fn pairs(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Consumes the list, returning the raw pairs.
    pub fn into_pairs(self) -> Vec<(VertexId, VertexId)> {
        self.edges
    }

    /// Normalises to a canonical undirected simple graph edge list:
    /// each edge appears exactly once as `(min, max)`, self loops are
    /// removed, and the list is sorted.
    pub fn canonicalize(&mut self) {
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Largest vertex id referenced plus one, i.e. the number of vertices of
    /// the graph *including* isolated ids below the maximum. Zero if empty.
    pub fn num_vertices(&self) -> u64 {
        self.edges
            .iter()
            .map(|&(u, v)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Compacts vertex ids so that only vertices incident to at least one
    /// edge keep an id, renumbered `0..n'` preserving relative order (the
    /// paper: "We remove vertices with no neighbors from the input").
    ///
    /// Returns the mapping from new id to original id.
    pub fn remove_isolated_vertices(&mut self) -> Vec<VertexId> {
        let mut used: Vec<VertexId> = self.edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        used.sort_unstable();
        used.dedup();
        let remap: FxHashMap<VertexId, VertexId> = used
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as VertexId))
            .collect();
        for e in &mut self.edges {
            *e = (remap[&e.0], remap[&e.1]);
        }
        used
    }
}

impl FromIterator<(VertexId, VertexId)> for EdgeList {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        Self {
            edges: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_dedups_and_orients() {
        let mut el = EdgeList::from_pairs(vec![(2, 1), (1, 2), (1, 1), (0, 2), (2, 0)]);
        el.canonicalize();
        assert_eq!(el.pairs(), &[(0, 2), (1, 2)]);
    }

    #[test]
    fn canonicalize_empty() {
        let mut el = EdgeList::new();
        el.canonicalize();
        assert!(el.is_empty());
        assert_eq!(el.num_vertices(), 0);
    }

    #[test]
    fn remove_isolated_compacts_ids() {
        let mut el = EdgeList::from_pairs(vec![(10, 20), (20, 30)]);
        el.canonicalize();
        let back = el.remove_isolated_vertices();
        assert_eq!(el.pairs(), &[(0, 1), (1, 2)]);
        assert_eq!(back, vec![10, 20, 30]);
    }

    #[test]
    fn num_vertices_counts_to_max_id() {
        let mut el = EdgeList::from_pairs(vec![(0, 5)]);
        el.canonicalize();
        assert_eq!(el.num_vertices(), 6);
    }

    #[test]
    fn self_loops_only_yields_empty() {
        let mut el = EdgeList::from_pairs(vec![(3, 3), (4, 4)]);
        el.canonicalize();
        assert!(el.is_empty());
    }
}

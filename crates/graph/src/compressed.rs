//! Delta/varint-compressed adjacency arrays, after the compressed-graph
//! processing the paper cites (Dhulipala, Blelloch & Shun, §III-A1): each
//! sorted neighborhood is stored as a varint-encoded first id followed by
//! varint gaps. On graphs with id locality (web crawls, RGG) this shrinks
//! the adjacency data several-fold, trading decode work per intersection —
//! the same space/time trade the large-graph literature makes.

use crate::csr::Csr;
use crate::VertexId;

/// A graph with varint/delta-compressed neighborhoods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedCsr {
    /// Byte offset of each vertex's encoded neighborhood (n+1 entries).
    offsets: Vec<usize>,
    /// Varint stream: per vertex `[degree, first, gap, gap, ...]`.
    data: Vec<u8>,
    n: u64,
    m: u64,
}

#[inline]
fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

impl CompressedCsr {
    /// Compresses a CSR graph.
    pub fn from_csr(g: &Csr) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut data = Vec::new();
        offsets.push(0);
        for v in g.vertices() {
            let ns = g.neighbors(v);
            push_varint(&mut data, ns.len() as u64);
            let mut prev = 0u64;
            for (i, &u) in ns.iter().enumerate() {
                if i == 0 {
                    push_varint(&mut data, u);
                } else {
                    // sorted unique → gap ≥ 1; store gap − 1
                    push_varint(&mut data, u - prev - 1);
                }
                prev = u;
            }
            offsets.push(data.len());
        }
        CompressedCsr {
            offsets,
            data,
            n,
            m: g.num_edges(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> u64 {
        self.m
    }

    /// Degree of `v` (one varint decode).
    pub fn degree(&self, v: VertexId) -> u64 {
        let mut pos = self.offsets[v as usize];
        read_varint(&self.data, &mut pos)
    }

    /// Iterator over the (sorted) neighborhood of `v`, decoding on the fly.
    pub fn neighbors(&self, v: VertexId) -> NeighborIter<'_> {
        let mut pos = self.offsets[v as usize];
        let remaining = read_varint(&self.data, &mut pos);
        NeighborIter {
            data: &self.data,
            pos,
            remaining,
            prev: 0,
            first: true,
        }
    }

    /// Size of the compressed adjacency data in bytes (excluding offsets).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes an uncompressed adjacency array (`u64` targets) would need.
    pub fn uncompressed_bytes(&self) -> usize {
        2 * self.m as usize * std::mem::size_of::<VertexId>()
    }

    /// Decompresses back to a plain CSR.
    pub fn to_csr(&self) -> Csr {
        let lists: Vec<Vec<VertexId>> = (0..self.n).map(|v| self.neighbors(v).collect()).collect();
        Csr::from_neighbor_lists(lists)
    }
}

/// Streaming decoder over one neighborhood.
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u64,
    prev: u64,
    first: bool,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let raw = read_varint(self.data, &mut self.pos);
        let val = if self.first {
            self.first = false;
            raw
        } else {
            self.prev + raw + 1
        };
        self.prev = val;
        Some(val)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Merge-intersection count over two sorted iterators (the streaming analog
/// of [`crate::intersect::merge_count`] for compressed neighborhoods).
/// Returns `(count, candidate comparisons)`.
pub fn merge_count_iter<A, B>(mut a: A, mut b: B) -> (u64, u64)
where
    A: Iterator<Item = VertexId>,
    B: Iterator<Item = VertexId>,
{
    let mut count = 0u64;
    let mut ops = 0u64;
    let mut x = a.next();
    let mut y = b.next();
    while let (Some(xv), Some(yv)) = (x, y) {
        ops += 1;
        match xv.cmp(&yv) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                count += 1;
                x = a.next();
                y = b.next();
            }
        }
    }
    (count, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::intersect::merge_count;

    fn sample() -> Csr {
        let mut el =
            EdgeList::from_pairs(vec![(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 4), (1, 4)]);
        el.canonicalize();
        Csr::from_edges(5, &el)
    }

    #[test]
    fn roundtrip_is_exact() {
        let g = sample();
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.to_csr(), g);
        for v in g.vertices() {
            assert_eq!(c.degree(v), g.degree(v));
            let decoded: Vec<u64> = c.neighbors(v).collect();
            assert_eq!(decoded, g.neighbors(v));
        }
    }

    #[test]
    fn varint_edge_values() {
        let mut buf = Vec::new();
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn compression_wins_on_local_ids() {
        // chain graph: all gaps are 1 → one byte per edge endpoint
        let n = 2000u64;
        let mut el = EdgeList::from_pairs((0..n - 1).map(|v| (v, v + 1)).collect());
        el.canonicalize();
        let g = Csr::from_edges(n, &el);
        let c = CompressedCsr::from_csr(&g);
        assert!(
            c.data_bytes() * 4 < c.uncompressed_bytes(),
            "compressed {} vs raw {}",
            c.data_bytes(),
            c.uncompressed_bytes()
        );
    }

    #[test]
    fn streaming_intersection_matches_slice_intersection() {
        let g = sample();
        let c = CompressedCsr::from_csr(&g);
        for v in g.vertices() {
            for u in g.vertices() {
                let (want, _) = merge_count(g.neighbors(v), g.neighbors(u));
                let (got, _) = merge_count_iter(c.neighbors(v), c.neighbors(u));
                assert_eq!(got, want, "({v},{u})");
            }
        }
    }

    #[test]
    fn empty_neighborhoods() {
        let g = Csr::from_edges(3, &EdgeList::new());
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.degree(1), 0);
        assert_eq!(c.neighbors(1).count(), 0);
        assert_eq!(c.to_csr(), g);
    }
}

//! Adaptive intersection-kernel layer.
//!
//! Every counting path in the reproduction intersects sorted adjacency
//! lists. Which kernel wins depends on the *shape* of the pair: merge is
//! optimal for balanced lists, galloping/binary probing wins when one list
//! is much shorter than the other, and for genuine hub vertices a
//! precomputed bitmap/hash index answers each probe in O(1). This module
//! provides:
//!
//! * [`KernelPolicy`] — the knob block threaded through `DistConfig`: forced
//!   kernel or [`KernelChoice::Auto`], the hub-degree threshold, and the
//!   intra-PE chunking/pool-width controls.
//! * [`HubIndex`] — a per-PE index over high-degree adjacency lists, built
//!   once at `PreparedRank` construction (and rebuilt on delta compaction,
//!   which is what keeps it coherent — see DESIGN §5e).
//! * [`Dispatcher`] — the per-call-site chooser. Given two lists (and
//!   optionally the vertex ids that key them in the hub index) it picks a
//!   kernel by the cost model `|small|·⌈log₂|large|⌉ < |small| + |large|`
//!   and tallies the choice in [`KernelCounters`].
//!
//! The dispatch decision is a pure function of the list lengths, the policy,
//! and hub-index membership — never of schedule, chunk boundaries, or pool
//! width — so for a fixed policy, counts and `ops` totals are bit-identical
//! across pool sizes and schedule perturbations.

use crate::hash::{FxHashMap, FxHashSet};
use crate::intersect::{
    binary_search_collect, binary_search_collect_iter, binary_search_count,
    binary_search_count_iter, gallop_collect, gallop_collect_iter, gallop_count, gallop_count_iter,
    merge_collect, merge_collect_iter, merge_count, merge_count_iter,
};
use crate::VertexId;

/// Which intersection kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Pick per call site by the size-ratio cost model, preferring the hub
    /// index when the larger side is indexed.
    #[default]
    Auto,
    /// Always the two-pointer merge (the paper's §III baseline).
    Merge,
    /// Always galloping (exponential search) probes.
    Gallop,
    /// Always plain binary-search probes.
    Binary,
    /// Always the hub bitmap/hash index; falls back to merge (recorded as a
    /// merge dispatch) when the larger side is not indexed.
    Bitmap,
}

impl KernelChoice {
    /// Parse a CLI spelling (`auto`, `merge`, `gallop`, `binary`, `bitmap`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Self::Auto),
            "merge" => Some(Self::Merge),
            "gallop" => Some(Self::Gallop),
            "binary" => Some(Self::Binary),
            "bitmap" => Some(Self::Bitmap),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Merge => "merge",
            Self::Gallop => "gallop",
            Self::Binary => "binary",
            Self::Bitmap => "bitmap",
        }
    }
}

/// Kernel-selection and intra-PE parallelism policy, threaded through
/// `DistConfig` into every counting path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPolicy {
    /// Forced kernel, or [`KernelChoice::Auto`] for the cost model.
    pub kernel: KernelChoice,
    /// Adjacency lists at least this long get a hub-index entry at
    /// `PreparedRank` construction.
    pub hub_threshold: u64,
    /// Chunk per-PE counting loops and run them on the `par` pool. Off by
    /// default; totals are bit-identical either way.
    pub chunking: bool,
    /// Worker threads for the intra-PE pool when `chunking` is on.
    pub pool_workers: usize,
}

impl Default for KernelPolicy {
    fn default() -> Self {
        Self {
            kernel: KernelChoice::Auto,
            hub_threshold: 256,
            chunking: false,
            pool_workers: 1,
        }
    }
}

impl KernelPolicy {
    /// A policy that reproduces the pre-kernel-layer behaviour exactly:
    /// merge everywhere, sequential.
    pub fn merge_only() -> Self {
        Self {
            kernel: KernelChoice::Merge,
            ..Self::default()
        }
    }
}

/// Per-kernel dispatch tallies: how many intersections each kernel served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Intersections served by the two-pointer merge.
    pub merge: u64,
    /// Intersections served by galloping probes.
    pub gallop: u64,
    /// Intersections served by plain binary-search probes.
    pub binary: u64,
    /// Intersections served by the hub bitmap/hash index.
    pub bitmap: u64,
}

impl KernelCounters {
    /// Total dispatches across all kernels.
    pub fn total(&self) -> u64 {
        self.merge + self.gallop + self.binary + self.bitmap
    }

    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: &KernelCounters) {
        self.merge += other.merge;
        self.gallop += other.gallop;
        self.binary += other.binary;
        self.bitmap += other.bitmap;
    }

    /// `(name, count)` pairs in fixed order, for rendering.
    pub fn named(&self) -> [(&'static str, u64); 4] {
        [
            ("merge", self.merge),
            ("gallop", self.gallop),
            ("binary", self.binary),
            ("bitmap", self.bitmap),
        ]
    }
}

/// One indexed hub neighborhood: a bitmap when the id span is dense enough
/// to pay for itself, otherwise a hash set.
#[derive(Debug, Clone)]
enum HubEntry {
    /// Dense: bit `v - base` set iff `v` is a neighbor.
    Bits { base: VertexId, words: Vec<u64> },
    /// Sparse: plain hash membership.
    Set(FxHashSet<VertexId>),
}

impl HubEntry {
    fn build(list: &[VertexId]) -> Self {
        debug_assert!(!list.is_empty());
        let base = list[0];
        let span = (list[list.len() - 1] - base) as usize + 1;
        let words = span / 64 + 1;
        // A bitmap costs `words` u64s; the hash set costs ~2 u64s per
        // element. Prefer the bitmap while it is at most ~4× the list.
        if words <= list.len().saturating_mul(4) {
            let mut bits = vec![0u64; words];
            for &v in list {
                let off = (v - base) as usize;
                bits[off / 64] |= 1 << (off % 64);
            }
            HubEntry::Bits { base, words: bits }
        } else {
            HubEntry::Set(list.iter().copied().collect())
        }
    }

    #[inline]
    fn contains(&self, v: VertexId) -> bool {
        match self {
            HubEntry::Bits { base, words } => {
                if v < *base {
                    return false;
                }
                let off = (v - base) as usize;
                match words.get(off / 64) {
                    Some(w) => w & (1 << (off % 64)) != 0,
                    None => false,
                }
            }
            HubEntry::Set(s) => s.contains(&v),
        }
    }
}

/// Per-PE membership index over hub (high-degree) adjacency lists, keyed by
/// the vertex whose neighborhood each list is.
///
/// Built once from the prepared (oriented or contracted) lists; the delta
/// path never consults those lists between compactions — overlay counting
/// streams merged views instead — so rebuild-on-compaction keeps the index
/// coherent without incremental maintenance.
#[derive(Debug, Clone, Default)]
pub struct HubIndex {
    entries: FxHashMap<VertexId, HubEntry>,
}

impl HubIndex {
    /// An empty index (nothing reaches the bitmap path).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Index every `(v, list)` pair with `list.len() >= threshold`.
    pub fn build<'a, I>(lists: I, threshold: u64) -> Self
    where
        I: Iterator<Item = (VertexId, &'a [VertexId])>,
    {
        let mut entries = FxHashMap::default();
        for (v, list) in lists {
            if list.len() as u64 >= threshold && !list.is_empty() {
                entries.insert(v, HubEntry::build(list));
            }
        }
        Self { entries }
    }

    /// Number of indexed hubs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no hub is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn get(&self, v: VertexId) -> Option<&HubEntry> {
        self.entries.get(&v)
    }
}

/// Which kernel the dispatcher picked for one intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pick {
    Merge,
    Gallop,
    Binary,
    /// Probe the *other* side into this hub entry.
    Bitmap,
}

/// The per-call-site kernel chooser. Holds the policy, an optional hub
/// index, and the dispatch tallies. Cheap to construct (two words + a map
/// reference); each parallel chunk owns its own and the tallies are merged
/// in canonical chunk order.
#[derive(Debug)]
pub struct Dispatcher<'a> {
    policy: KernelPolicy,
    hubs: Option<&'a HubIndex>,
    counters: KernelCounters,
}

/// `⌈log₂(n)⌉` for `n ≥ 1` (0 for `n ≤ 1`).
#[inline]
fn ceil_log2(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

/// The §III cost model: probing wins when
/// `|small| · ⌈log₂|large|⌉ < |small| + |large|`.
#[inline]
fn probe_wins(small: usize, large: usize) -> bool {
    (small as u64).saturating_mul(ceil_log2(large)) < (small + large) as u64
}

impl<'a> Dispatcher<'a> {
    /// A dispatcher with no hub index (forced-`Bitmap` policies fall back to
    /// merge).
    pub fn new(policy: KernelPolicy) -> Self {
        Self {
            policy,
            hubs: None,
            counters: KernelCounters::default(),
        }
    }

    /// A dispatcher that can route hub-keyed intersections to `hubs`.
    pub fn with_hubs(policy: KernelPolicy, hubs: &'a HubIndex) -> Self {
        Self {
            policy,
            hubs: Some(hubs),
            counters: KernelCounters::default(),
        }
    }

    /// The dispatch tallies accumulated so far.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// The policy this dispatcher runs.
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Pick a kernel for lists of the given lengths, where the *larger*
    /// side's hub entry (if any) is `hub`. Pure in (lengths, policy, hub
    /// presence).
    #[inline]
    fn pick(&self, small: usize, large: usize, hub_indexed: bool) -> Pick {
        match self.policy.kernel {
            KernelChoice::Merge => Pick::Merge,
            KernelChoice::Gallop => Pick::Gallop,
            KernelChoice::Binary => Pick::Binary,
            KernelChoice::Bitmap => {
                if hub_indexed {
                    Pick::Bitmap
                } else {
                    Pick::Merge
                }
            }
            KernelChoice::Auto => {
                if hub_indexed {
                    Pick::Bitmap
                } else if probe_wins(small, large) {
                    // Tiny probe sides amortise no gallop state; plain
                    // bisection has the better constants.
                    if small <= 8 {
                        Pick::Binary
                    } else {
                        Pick::Gallop
                    }
                } else {
                    Pick::Merge
                }
            }
        }
    }

    #[inline]
    fn hub_entry(&self, key: Option<VertexId>, len: usize) -> Option<&'a HubEntry> {
        if len as u64 >= self.policy.hub_threshold {
            self.hubs?.get(key?)
        } else {
            None
        }
    }

    /// Count the intersection of two sorted lists. `a_key`/`b_key` are the
    /// vertices whose neighborhoods `a`/`b` are (for hub-index lookup);
    /// pass `None` for synthetic lists (e.g. message payloads).
    #[inline]
    pub fn count(
        &mut self,
        a: &[VertexId],
        a_key: Option<VertexId>,
        b: &[VertexId],
        b_key: Option<VertexId>,
    ) -> (u64, u64) {
        if a.is_empty() || b.is_empty() {
            return (0, 0);
        }
        // Orient so `probe` is the smaller side and `table` the larger —
        // the hub index is only ever worth consulting for the larger side.
        let (probe, table, table_key) = if a.len() <= b.len() {
            (a, b, b_key)
        } else {
            (b, a, a_key)
        };
        let entry = self.hub_entry(table_key, table.len());
        match self.pick(probe.len(), table.len(), entry.is_some()) {
            Pick::Merge => {
                self.counters.merge += 1;
                merge_count(probe, table)
            }
            Pick::Gallop => {
                self.counters.gallop += 1;
                gallop_count(probe, table)
            }
            Pick::Binary => {
                self.counters.binary += 1;
                binary_search_count(probe, table)
            }
            Pick::Bitmap => {
                self.counters.bitmap += 1;
                let entry = entry.expect("bitmap pick implies hub entry");
                let mut count = 0u64;
                for &x in probe {
                    if entry.contains(x) {
                        count += 1;
                    }
                }
                // One op per O(1) membership probe.
                (count, probe.len() as u64)
            }
        }
    }

    /// Collect the intersection of two sorted lists into `out`, returning
    /// the op count. Output order is ascending for every kernel.
    #[inline]
    pub fn collect(
        &mut self,
        a: &[VertexId],
        a_key: Option<VertexId>,
        b: &[VertexId],
        b_key: Option<VertexId>,
        out: &mut Vec<VertexId>,
    ) -> u64 {
        if a.is_empty() || b.is_empty() {
            return 0;
        }
        let (probe, table, table_key) = if a.len() <= b.len() {
            (a, b, b_key)
        } else {
            (b, a, a_key)
        };
        let entry = self.hub_entry(table_key, table.len());
        match self.pick(probe.len(), table.len(), entry.is_some()) {
            Pick::Merge => {
                self.counters.merge += 1;
                merge_collect(probe, table, out)
            }
            Pick::Gallop => {
                self.counters.gallop += 1;
                gallop_collect(probe, table, out)
            }
            Pick::Binary => {
                self.counters.binary += 1;
                binary_search_collect(probe, table, out)
            }
            Pick::Bitmap => {
                self.counters.bitmap += 1;
                let entry = entry.expect("bitmap pick implies hub entry");
                let mut ops = 0u64;
                for &x in probe {
                    ops += 1;
                    if entry.contains(x) {
                        out.push(x);
                    }
                }
                ops
            }
        }
    }

    /// Count a sorted probe *iterator* of known length against a sorted
    /// slice table keyed by `table_key` — the streaming entry point for the
    /// delta overlay path, where the probe side is a merged base+overlay
    /// view that never materialises.
    #[inline]
    pub fn count_iter<I>(
        &mut self,
        probe: I,
        probe_len: usize,
        table: &[VertexId],
        table_key: Option<VertexId>,
    ) -> (u64, u64)
    where
        I: Iterator<Item = VertexId>,
    {
        if probe_len == 0 || table.is_empty() {
            return (0, 0);
        }
        let entry = self.hub_entry(table_key, table.len());
        // The iterator can only be the probe side; when the table is the
        // smaller side, probing it would be wrong way round, so fall back
        // to the streaming merge.
        if table.len() < probe_len {
            self.counters.merge += 1;
            return merge_count_iter(probe, table.iter().copied());
        }
        match self.pick(probe_len, table.len(), entry.is_some()) {
            Pick::Merge => {
                self.counters.merge += 1;
                merge_count_iter(probe, table.iter().copied())
            }
            Pick::Gallop => {
                self.counters.gallop += 1;
                gallop_count_iter(probe, table)
            }
            Pick::Binary => {
                self.counters.binary += 1;
                binary_search_count_iter(probe, table)
            }
            Pick::Bitmap => {
                self.counters.bitmap += 1;
                let entry = entry.expect("bitmap pick implies hub entry");
                let mut count = 0u64;
                let mut ops = 0u64;
                for x in probe {
                    ops += 1;
                    if entry.contains(x) {
                        count += 1;
                    }
                }
                (count, ops)
            }
        }
    }

    /// Streaming merge-collect of two composed iterators — the only kernel
    /// shape available when *both* sides are unmaterialised views (e.g.
    /// two dirty overlay neighborhoods). Tallied as a merge dispatch.
    #[inline]
    pub fn merge_iters_collect<I, J>(&mut self, a: I, b: J, out: &mut Vec<VertexId>) -> u64
    where
        I: Iterator<Item = VertexId>,
        J: Iterator<Item = VertexId>,
    {
        self.counters.merge += 1;
        merge_collect_iter(a, b, out)
    }

    /// Collect twin of [`Dispatcher::count_iter`].
    #[inline]
    pub fn collect_iter<I>(
        &mut self,
        probe: I,
        probe_len: usize,
        table: &[VertexId],
        table_key: Option<VertexId>,
        out: &mut Vec<VertexId>,
    ) -> u64
    where
        I: Iterator<Item = VertexId>,
    {
        if probe_len == 0 || table.is_empty() {
            return 0;
        }
        let entry = self.hub_entry(table_key, table.len());
        if table.len() < probe_len {
            self.counters.merge += 1;
            return merge_collect_iter(probe, table.iter().copied(), out);
        }
        match self.pick(probe_len, table.len(), entry.is_some()) {
            Pick::Merge => {
                self.counters.merge += 1;
                merge_collect_iter(probe, table.iter().copied(), out)
            }
            Pick::Gallop => {
                self.counters.gallop += 1;
                gallop_collect_iter(probe, table, out)
            }
            Pick::Binary => {
                self.counters.binary += 1;
                binary_search_collect_iter(probe, table, out)
            }
            Pick::Bitmap => {
                self.counters.bitmap += 1;
                let entry = entry.expect("bitmap pick implies hub entry");
                let mut ops = 0u64;
                for x in probe {
                    ops += 1;
                    if entry.contains(x) {
                        out.push(x);
                    }
                }
                ops
            }
        }
    }
}

/// Degree-aware chunking: split `weights` (one weight per item, in canonical
/// item order) into at most `chunks` contiguous ranges of roughly equal
/// total weight, by walking the prefix sum. Returns `(start, end)` index
/// pairs covering `0..weights.len()` exactly, in order. Deterministic in
/// (weights, chunks) — independent of pool width or schedule.
pub fn balanced_chunks(weights: &[u64], chunks: usize) -> Vec<(usize, usize)> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1);
    // Weight each item at least 1 so zero-degree runs still split.
    let total: u64 = weights.iter().map(|&w| w.max(1)).sum();
    let target = total.div_ceil(chunks as u64).max(1);
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w.max(1);
        if acc >= target {
            out.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push((start, n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(vals: &[u64]) -> Vec<VertexId> {
        vals.to_vec()
    }

    #[test]
    fn policy_default_is_auto_sequential() {
        let p = KernelPolicy::default();
        assert_eq!(p.kernel, KernelChoice::Auto);
        assert!(!p.chunking);
        assert_eq!(p.pool_workers, 1);
    }

    #[test]
    fn kernel_choice_parse_round_trips() {
        for k in [
            KernelChoice::Auto,
            KernelChoice::Merge,
            KernelChoice::Gallop,
            KernelChoice::Binary,
            KernelChoice::Bitmap,
        ] {
            assert_eq!(KernelChoice::parse(k.name()), Some(k));
        }
        assert_eq!(KernelChoice::parse("simd"), None);
    }

    #[test]
    fn hub_entry_bitmap_and_set_agree() {
        let dense: Vec<VertexId> = (0..300).map(|i| i * 2).collect();
        let sparse: Vec<VertexId> = (0..300).map(|i| i * 1_000_000).collect();
        let eb = HubEntry::build(&dense);
        let es = HubEntry::build(&sparse);
        assert!(matches!(eb, HubEntry::Bits { .. }));
        assert!(matches!(es, HubEntry::Set(_)));
        for probe in [0u64, 1, 2, 599, 598, 1_000_000, 999_999, 299_000_000] {
            assert_eq!(eb.contains(probe), dense.binary_search(&probe).is_ok());
            assert_eq!(es.contains(probe), sparse.binary_search(&probe).is_ok());
        }
    }

    #[test]
    fn all_dispatch_modes_agree_on_count() {
        let big: Vec<VertexId> = (0..2000).map(|i| i * 3).collect();
        let small = list(&[3, 5, 600, 601, 5997]);
        let hubs = HubIndex::build([(42u64, big.as_slice())].into_iter(), 256);
        let expect = merge_count(&small, &big).0;
        for kernel in [
            KernelChoice::Auto,
            KernelChoice::Merge,
            KernelChoice::Gallop,
            KernelChoice::Binary,
            KernelChoice::Bitmap,
        ] {
            let policy = KernelPolicy {
                kernel,
                ..KernelPolicy::default()
            };
            let mut d = Dispatcher::with_hubs(policy, &hubs);
            let (c, _) = d.count(&small, None, &big, Some(42));
            assert_eq!(c, expect, "{kernel:?}");
            assert_eq!(d.counters().total(), 1);
            let mut out = Vec::new();
            d.collect(&small, None, &big, Some(42), &mut out);
            let mut expect_out = Vec::new();
            merge_collect(&small, &big, &mut expect_out);
            assert_eq!(out, expect_out, "{kernel:?} collect");
            let (ci, _) = d.count_iter(small.iter().copied(), small.len(), &big, Some(42));
            assert_eq!(ci, expect, "{kernel:?} iter");
        }
    }

    /// Property test over adversarial list shapes: every kernel must agree
    /// with the merge reference on count *and* elements, for 1000×-skewed,
    /// empty, disjoint, identical and randomly-overlapping pairs. Lists are
    /// drawn from a seeded SplitMix64 walk so failures reproduce exactly.
    #[test]
    fn adversarial_shapes_all_kernels_agree() {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn sorted_unique(rng: &mut u64, len: usize, span: u64) -> Vec<VertexId> {
            let mut v: Vec<VertexId> = (0..len).map(|_| splitmix(rng) % span.max(1)).collect();
            v.sort_unstable();
            v.dedup();
            v
        }

        let mut rng = 0x6b65_726e_u64; // "kern"

        // (|a|, |b|, value span) — span controls overlap density. The
        // 2 / 2000 rows are the 1000× skew of the acceptance criteria.
        let shapes: [(usize, usize, u64); 8] = [
            (2, 2000, 6000),           // 1000× skew, dense overlap
            (2000, 2, 6000),           // skew with the large list first
            (1, 1000, 1_000_000),      // extreme skew, sparse values
            (0, 500, 1000),            // empty vs non-empty
            (0, 0, 1),                 // both empty
            (300, 300, 400),           // heavy overlap
            (64, 4096, 5000),          // 64× skew (galloping territory)
            (500, 500, 1_000_000_000), // near-disjoint random lists
        ];
        let kernels = [
            KernelChoice::Auto,
            KernelChoice::Merge,
            KernelChoice::Gallop,
            KernelChoice::Binary,
            KernelChoice::Bitmap,
        ];
        for (la, lb, span) in shapes {
            for rep in 0..8 {
                let a = sorted_unique(&mut rng, la, span);
                let mut b = sorted_unique(&mut rng, lb, span);
                if rep == 7 {
                    // force the fully-disjoint case: shift b past a's span
                    for v in &mut b {
                        *v += span + 1;
                    }
                }
                let hubs = HubIndex::build(
                    [(0u64, a.as_slice()), (1u64, b.as_slice())].into_iter(),
                    0, // index everything: bitmap must engage on every shape
                );
                let (expect, _) = merge_count(&a, &b);
                let mut expect_out = Vec::new();
                merge_collect(&a, &b, &mut expect_out);
                for kernel in kernels {
                    let policy = KernelPolicy {
                        kernel,
                        hub_threshold: 0,
                        ..KernelPolicy::default()
                    };
                    let mut d = Dispatcher::with_hubs(policy, &hubs);
                    let (c, _) = d.count(&a, Some(0), &b, Some(1));
                    assert_eq!(
                        c, expect,
                        "{kernel:?} count, shape ({la},{lb},{span}) rep {rep}"
                    );
                    let mut out = Vec::new();
                    d.collect(&a, Some(0), &b, Some(1), &mut out);
                    assert_eq!(
                        out, expect_out,
                        "{kernel:?} collect, shape ({la},{lb},{span}) rep {rep}"
                    );
                    let (ci, _) = d.count_iter(a.iter().copied(), a.len(), &b, Some(1));
                    assert_eq!(
                        ci, expect,
                        "{kernel:?} count_iter, shape ({la},{lb},{span}) rep {rep}"
                    );
                }
            }
        }
    }

    #[test]
    fn bitmap_forced_falls_back_to_merge_without_entry() {
        let a = list(&[1, 2, 3]);
        let b = list(&[2, 3, 4]);
        let policy = KernelPolicy {
            kernel: KernelChoice::Bitmap,
            ..KernelPolicy::default()
        };
        let mut d = Dispatcher::new(policy);
        let (c, _) = d.count(&a, Some(7), &b, Some(8));
        assert_eq!(c, 2);
        assert_eq!(d.counters().merge, 1);
        assert_eq!(d.counters().bitmap, 0);
    }

    #[test]
    fn auto_picks_merge_for_balanced_and_probe_for_skewed() {
        let a: Vec<VertexId> = (0..100).collect();
        let b: Vec<VertexId> = (50..150).collect();
        let mut d = Dispatcher::new(KernelPolicy::default());
        d.count(&a, None, &b, None);
        assert_eq!(d.counters().merge, 1, "balanced → merge");

        let small = list(&[10, 500, 900]);
        let big: Vec<VertexId> = (0..10_000).collect();
        let mut d = Dispatcher::new(KernelPolicy::default());
        d.count(&small, None, &big, None);
        assert_eq!(d.counters().binary, 1, "tiny probe → binary");

        let mid: Vec<VertexId> = (0..64).map(|i| i * 7).collect();
        let mut d = Dispatcher::new(KernelPolicy::default());
        d.count(&mid, None, &big, None);
        assert_eq!(d.counters().gallop, 1, "mid probe → gallop");
    }

    #[test]
    fn auto_uses_hub_index_above_threshold_only() {
        let big: Vec<VertexId> = (0..1000).collect();
        let small = list(&[5, 6, 7]);
        let hubs = HubIndex::build([(1u64, big.as_slice())].into_iter(), 256);
        let mut d = Dispatcher::with_hubs(KernelPolicy::default(), &hubs);
        d.count(&small, None, &big, Some(1));
        assert_eq!(d.counters().bitmap, 1);
        // Unknown key → no hub entry → cost model decides.
        let mut d = Dispatcher::with_hubs(KernelPolicy::default(), &hubs);
        d.count(&small, None, &big, Some(2));
        assert_eq!(d.counters().bitmap, 0);
    }

    #[test]
    fn counters_absorb_sums_fields() {
        let mut a = KernelCounters {
            merge: 1,
            gallop: 2,
            binary: 3,
            bitmap: 4,
        };
        let b = KernelCounters {
            merge: 10,
            gallop: 20,
            binary: 30,
            bitmap: 40,
        };
        a.absorb(&b);
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn balanced_chunks_cover_range_exactly() {
        for n in [0usize, 1, 2, 7, 100] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let weights: Vec<u64> = (0..n as u64).map(|i| i % 13).collect();
                let ranges = balanced_chunks(&weights, chunks);
                let mut next = 0usize;
                for &(s, e) in &ranges {
                    assert_eq!(s, next, "contiguous n={n} chunks={chunks}");
                    assert!(e > s);
                    next = e;
                }
                assert_eq!(next, n, "covers n={n} chunks={chunks}");
                assert!(ranges.len() <= chunks.max(1) + 1);
            }
        }
    }

    #[test]
    fn balanced_chunks_balance_by_weight_not_count() {
        // One huge item followed by many tiny ones: the huge item must get
        // its own chunk instead of dragging half the tiny ones with it.
        let mut weights = vec![1000u64];
        weights.extend(std::iter::repeat_n(1u64, 1000));
        let ranges = balanced_chunks(&weights, 2);
        assert!(ranges.len() >= 2);
        assert_eq!(ranges[0], (0, 1), "hub item isolated: {ranges:?}");
    }
}

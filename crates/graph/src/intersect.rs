//! Counting set intersections of sorted vertex-id lists.
//!
//! These are the innermost kernels of every EDGEITERATOR variant. Each
//! function returns `(count, ops)` where `ops` is the number of candidate
//! comparisons performed — the unit of "local work" metered by the machine
//! model (`CostModel::t_op`).

use crate::VertexId;

/// Merge-based intersection count of two sorted, duplicate-free lists
/// (the "merge phase of merge sort" procedure from §III).
#[inline]
pub fn merge_count(a: &[VertexId], b: &[VertexId]) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    let mut ops = 0u64;
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (count, ops)
}

/// Merge intersection that also *reports* the common elements (used for
/// triangle enumeration and per-vertex counting, where the third vertex of
/// each triangle must be known).
#[inline]
pub fn merge_collect(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut ops = 0u64;
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    ops
}

/// Merge-based intersection count over two sorted, duplicate-free
/// *iterators* — the streaming twin of [`merge_count`], so callers holding
/// composed neighborhood views (e.g. a base list with an overlay of
/// insertions and deletions) can intersect without materialising either
/// side.
#[inline]
pub fn merge_count_iter<I, J>(mut a: I, mut b: J) -> (u64, u64)
where
    I: Iterator<Item = VertexId>,
    J: Iterator<Item = VertexId>,
{
    let mut x = a.next();
    let mut y = b.next();
    let mut count = 0u64;
    let mut ops = 0u64;
    while let (Some(u), Some(v)) = (x, y) {
        ops += 1;
        match u.cmp(&v) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                count += 1;
                x = a.next();
                y = b.next();
            }
        }
    }
    (count, ops)
}

/// Streaming twin of [`merge_collect`]: intersects two sorted iterators and
/// pushes the common elements into `out`, returning the comparison count.
#[inline]
pub fn merge_collect_iter<I, J>(mut a: I, mut b: J, out: &mut Vec<VertexId>) -> u64
where
    I: Iterator<Item = VertexId>,
    J: Iterator<Item = VertexId>,
{
    let mut x = a.next();
    let mut y = b.next();
    let mut ops = 0u64;
    while let (Some(u), Some(v)) = (x, y) {
        ops += 1;
        match u.cmp(&v) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                out.push(u);
                x = a.next();
                y = b.next();
            }
        }
    }
    ops
}

/// Binary-search based intersection: probes each element of the smaller list
/// in the larger one. Wins when the lists have very different lengths
/// (GPU-style kernels in the paper's §III-C favour this shape).
#[inline]
pub fn binary_search_count(a: &[VertexId], b: &[VertexId]) -> (u64, u64) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.is_empty() || small.is_empty() {
        return (0, 0);
    }
    let mut count = 0u64;
    let mut ops = 0u64;
    let log = (usize::BITS - (large.len()).leading_zeros()) as u64;
    for &x in small {
        ops += log;
        if large.binary_search(&x).is_ok() {
            count += 1;
        }
    }
    (count, ops)
}

/// Galloping (exponential-search) intersection — adaptive between merge and
/// binary search; used as an ablation kernel.
#[inline]
pub fn gallop_count(a: &[VertexId], b: &[VertexId]) -> (u64, u64) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut ops = 0u64;
    let mut cur = 0usize;
    for &x in small {
        if cur >= large.len() {
            break;
        }
        // exponential search for an upper bound on x's position in large[cur..]
        let mut bound = 1usize;
        while cur + bound < large.len() && large[cur + bound] < x {
            ops += 1;
            bound *= 2;
        }
        let hi = (cur + bound + 1).min(large.len());
        ops += 1;
        match large[cur..hi].binary_search(&x) {
            Ok(pos) => {
                count += 1;
                cur += pos + 1;
            }
            Err(pos) => {
                cur += pos;
            }
        }
    }
    (count, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[VertexId], b: &[VertexId]) -> u64 {
        a.iter().filter(|x| b.contains(x)).count() as u64
    }

    #[test]
    fn merge_matches_naive() {
        let a = vec![1, 3, 5, 7, 9, 11];
        let b = vec![2, 3, 4, 7, 11, 20];
        assert_eq!(merge_count(&a, &b).0, naive(&a, &b));
    }

    #[test]
    fn all_kernels_agree() {
        let cases: &[(&[VertexId], &[VertexId])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[], &[1]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 5, 9], &[2, 6, 10]),
            (&[0, 2, 4, 6, 8, 10, 12], &[5, 6]),
            (&[7], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ];
        for (a, b) in cases {
            let expect = naive(a, b);
            assert_eq!(merge_count(a, b).0, expect, "merge {a:?} {b:?}");
            assert_eq!(binary_search_count(a, b).0, expect, "bsearch {a:?} {b:?}");
            assert_eq!(gallop_count(a, b).0, expect, "gallop {a:?} {b:?}");
        }
    }

    #[test]
    fn iter_kernels_match_slice_kernels() {
        let cases: &[(&[VertexId], &[VertexId])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 5, 9], &[2, 6, 10]),
            (&[0, 2, 4, 6, 8, 10, 12], &[5, 6]),
            (&[7], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ];
        for (a, b) in cases {
            let (c, ops) = merge_count(a, b);
            assert_eq!(
                merge_count_iter(a.iter().copied(), b.iter().copied()),
                (c, ops),
                "count {a:?} {b:?}"
            );
            let mut out_slice = Vec::new();
            let slice_ops = merge_collect(a, b, &mut out_slice);
            let mut out_iter = Vec::new();
            let iter_ops = merge_collect_iter(a.iter().copied(), b.iter().copied(), &mut out_iter);
            assert_eq!(out_iter, out_slice, "collect {a:?} {b:?}");
            assert_eq!(iter_ops, slice_ops);
        }
    }

    #[test]
    fn merge_collect_reports_elements() {
        let a = vec![1, 3, 5, 7];
        let b = vec![3, 4, 7, 8];
        let mut out = Vec::new();
        merge_collect(&a, &b, &mut out);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn merge_ops_bounded_by_sum_of_lengths() {
        let a: Vec<VertexId> = (0..100).map(|i| i * 2).collect();
        let b: Vec<VertexId> = (0..100).map(|i| i * 3).collect();
        let (_, ops) = merge_count(&a, &b);
        assert!(ops <= (a.len() + b.len()) as u64);
        assert!(ops >= a.len().min(b.len()) as u64);
    }
}

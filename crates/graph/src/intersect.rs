//! Counting set intersections of sorted vertex-id lists.
//!
//! These are the innermost kernels of every EDGEITERATOR variant. Each
//! function returns `(count, ops)` where `ops` is the number of candidate
//! comparisons performed — the unit of "local work" metered by the machine
//! model (`CostModel::t_op`). Every kernel counts the same unit: one op per
//! element comparison actually executed, so ablation plots compare like with
//! like (a galloping probe that touches 5 elements costs 5 ops, not a
//! synthetic `log n` lump).

use crate::VertexId;

/// Merge-based intersection count of two sorted, duplicate-free lists
/// (the "merge phase of merge sort" procedure from §III).
#[inline]
pub fn merge_count(a: &[VertexId], b: &[VertexId]) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    let mut ops = 0u64;
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (count, ops)
}

/// Merge intersection that also *reports* the common elements (used for
/// triangle enumeration and per-vertex counting, where the third vertex of
/// each triangle must be known).
#[inline]
pub fn merge_collect(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut ops = 0u64;
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    ops
}

/// Merge-based intersection count over two sorted, duplicate-free
/// *iterators* — the streaming twin of [`merge_count`], so callers holding
/// composed neighborhood views (e.g. a base list with an overlay of
/// insertions and deletions) can intersect without materialising either
/// side.
#[inline]
pub fn merge_count_iter<I, J>(mut a: I, mut b: J) -> (u64, u64)
where
    I: Iterator<Item = VertexId>,
    J: Iterator<Item = VertexId>,
{
    let mut x = a.next();
    let mut y = b.next();
    let mut count = 0u64;
    let mut ops = 0u64;
    while let (Some(u), Some(v)) = (x, y) {
        ops += 1;
        match u.cmp(&v) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                count += 1;
                x = a.next();
                y = b.next();
            }
        }
    }
    (count, ops)
}

/// Streaming twin of [`merge_collect`]: intersects two sorted iterators and
/// pushes the common elements into `out`, returning the comparison count.
#[inline]
pub fn merge_collect_iter<I, J>(mut a: I, mut b: J, out: &mut Vec<VertexId>) -> u64
where
    I: Iterator<Item = VertexId>,
    J: Iterator<Item = VertexId>,
{
    let mut x = a.next();
    let mut y = b.next();
    let mut ops = 0u64;
    while let (Some(u), Some(v)) = (x, y) {
        ops += 1;
        match u.cmp(&v) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                out.push(u);
                x = a.next();
                y = b.next();
            }
        }
    }
    ops
}

/// Binary search over a sorted slice that charges one op per element
/// comparison actually performed. Shared by the binary-probe and galloping
/// kernels so both meter work in the same unit as [`merge_count`].
#[inline]
fn counted_binary_search(hay: &[VertexId], x: VertexId, ops: &mut u64) -> Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, hay.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        *ops += 1;
        match hay[mid].cmp(&x) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Binary-search based intersection: probes each element of the smaller list
/// in the larger one. Wins when the lists have very different lengths
/// (GPU-style kernels in the paper's §III-C favour this shape).
#[inline]
pub fn binary_search_count(a: &[VertexId], b: &[VertexId]) -> (u64, u64) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.is_empty() || small.is_empty() {
        return (0, 0);
    }
    let mut count = 0u64;
    let mut ops = 0u64;
    for &x in small {
        if counted_binary_search(large, x, &mut ops).is_ok() {
            count += 1;
        }
    }
    (count, ops)
}

/// Binary-probe intersection that reports the common elements (in sorted
/// order, since the probed side is sorted).
#[inline]
pub fn binary_search_collect(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.is_empty() || small.is_empty() {
        return 0;
    }
    let mut ops = 0u64;
    for &x in small {
        if counted_binary_search(large, x, &mut ops).is_ok() {
            out.push(x);
        }
    }
    ops
}

/// Galloping (exponential-search) intersection — adaptive between merge and
/// binary search. Probes each element of the smaller list into the larger
/// one, but restarts from the previous match position so a full pass costs
/// O(|small|·log(|large|/|small|)) instead of O(|small|·log|large|).
#[inline]
pub fn gallop_count(a: &[VertexId], b: &[VertexId]) -> (u64, u64) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut ops = 0u64;
    let mut cur = 0usize;
    for &x in small {
        if cur >= large.len() {
            break;
        }
        if gallop_probe(large, &mut cur, x, &mut ops) {
            count += 1;
        }
    }
    (count, ops)
}

/// Galloping intersection that reports the common elements.
#[inline]
pub fn gallop_collect(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut ops = 0u64;
    let mut cur = 0usize;
    for &x in small {
        if cur >= large.len() {
            break;
        }
        if gallop_probe(large, &mut cur, x, &mut ops) {
            out.push(x);
        }
    }
    ops
}

/// One galloping probe: exponential search for an upper bound on `x`'s
/// position in `large[*cur..]`, then a counted binary search inside the
/// window. Advances `*cur` past the landing position so subsequent probes
/// never re-scan. Each element comparison (doubling probe or bisection
/// probe) costs one op.
#[inline]
fn gallop_probe(large: &[VertexId], cur: &mut usize, x: VertexId, ops: &mut u64) -> bool {
    // Exponential search: each probe compares one element of `large`.
    let mut bound = 1usize;
    loop {
        let idx = *cur + bound;
        if idx >= large.len() {
            break;
        }
        *ops += 1;
        if large[idx] >= x {
            break;
        }
        bound *= 2;
    }
    let lo = *cur + bound / 2;
    let hi = (*cur + bound + 1).min(large.len());
    match counted_binary_search(&large[lo..hi], x, ops) {
        Ok(pos) => {
            *cur = lo + pos + 1;
            true
        }
        Err(pos) => {
            *cur = lo + pos;
            false
        }
    }
}

/// Binary-probe intersection of a sorted *iterator* against a sorted slice
/// table: the streaming twin of [`binary_search_count`], for callers whose
/// probe side is a composed view (base list + overlay) that never
/// materialises. The table side must be a slice — random access is what the
/// probes buy their speed with.
#[inline]
pub fn binary_search_count_iter<I>(probe: I, table: &[VertexId]) -> (u64, u64)
where
    I: Iterator<Item = VertexId>,
{
    let mut count = 0u64;
    let mut ops = 0u64;
    if table.is_empty() {
        return (0, 0);
    }
    for x in probe {
        if counted_binary_search(table, x, &mut ops).is_ok() {
            count += 1;
        }
    }
    (count, ops)
}

/// Streaming twin of [`binary_search_collect`].
#[inline]
pub fn binary_search_collect_iter<I>(probe: I, table: &[VertexId], out: &mut Vec<VertexId>) -> u64
where
    I: Iterator<Item = VertexId>,
{
    let mut ops = 0u64;
    if table.is_empty() {
        return 0;
    }
    for x in probe {
        if counted_binary_search(table, x, &mut ops).is_ok() {
            out.push(x);
        }
    }
    ops
}

/// Galloping intersection of a sorted *iterator* against a sorted slice
/// table: the streaming twin of [`gallop_count`]. The probe side streams in
/// ascending order, so the gallop cursor still advances monotonically.
#[inline]
pub fn gallop_count_iter<I>(probe: I, table: &[VertexId]) -> (u64, u64)
where
    I: Iterator<Item = VertexId>,
{
    let mut count = 0u64;
    let mut ops = 0u64;
    let mut cur = 0usize;
    for x in probe {
        if cur >= table.len() {
            break;
        }
        if gallop_probe(table, &mut cur, x, &mut ops) {
            count += 1;
        }
    }
    (count, ops)
}

/// Streaming twin of [`gallop_collect`].
#[inline]
pub fn gallop_collect_iter<I>(probe: I, table: &[VertexId], out: &mut Vec<VertexId>) -> u64
where
    I: Iterator<Item = VertexId>,
{
    let mut ops = 0u64;
    let mut cur = 0usize;
    for x in probe {
        if cur >= table.len() {
            break;
        }
        if gallop_probe(table, &mut cur, x, &mut ops) {
            out.push(x);
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[VertexId], b: &[VertexId]) -> u64 {
        a.iter().filter(|x| b.contains(x)).count() as u64
    }

    #[test]
    fn merge_matches_naive() {
        let a = vec![1, 3, 5, 7, 9, 11];
        let b = vec![2, 3, 4, 7, 11, 20];
        assert_eq!(merge_count(&a, &b).0, naive(&a, &b));
    }

    #[test]
    fn all_kernels_agree() {
        let cases: &[(&[VertexId], &[VertexId])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[], &[1]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 5, 9], &[2, 6, 10]),
            (&[0, 2, 4, 6, 8, 10, 12], &[5, 6]),
            (&[7], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ];
        for (a, b) in cases {
            let expect = naive(a, b);
            assert_eq!(merge_count(a, b).0, expect, "merge {a:?} {b:?}");
            assert_eq!(binary_search_count(a, b).0, expect, "bsearch {a:?} {b:?}");
            assert_eq!(gallop_count(a, b).0, expect, "gallop {a:?} {b:?}");
        }
    }

    #[test]
    fn collect_kernels_agree() {
        let cases: &[(&[VertexId], &[VertexId])] = &[
            (&[], &[]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 3, 5, 7], &[3, 4, 7, 8]),
            (&[0, 2, 4, 6, 8, 10, 12], &[5, 6]),
            (&[7], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ];
        for (a, b) in cases {
            let mut expect = Vec::new();
            merge_collect(a, b, &mut expect);
            let mut got_b = Vec::new();
            binary_search_collect(a, b, &mut got_b);
            assert_eq!(got_b, expect, "bsearch collect {a:?} {b:?}");
            let mut got_g = Vec::new();
            gallop_collect(a, b, &mut got_g);
            assert_eq!(got_g, expect, "gallop collect {a:?} {b:?}");
        }
    }

    #[test]
    fn iter_kernels_match_slice_kernels() {
        let cases: &[(&[VertexId], &[VertexId])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 5, 9], &[2, 6, 10]),
            (&[0, 2, 4, 6, 8, 10, 12], &[5, 6]),
            (&[7], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ];
        for (a, b) in cases {
            let (c, ops) = merge_count(a, b);
            assert_eq!(
                merge_count_iter(a.iter().copied(), b.iter().copied()),
                (c, ops),
                "count {a:?} {b:?}"
            );
            let mut out_slice = Vec::new();
            let slice_ops = merge_collect(a, b, &mut out_slice);
            let mut out_iter = Vec::new();
            let iter_ops = merge_collect_iter(a.iter().copied(), b.iter().copied(), &mut out_iter);
            assert_eq!(out_iter, out_slice, "collect {a:?} {b:?}");
            assert_eq!(iter_ops, slice_ops);
        }
    }

    #[test]
    fn probe_iter_twins_match_probe_order() {
        // The iter twins probe the *first* argument into the second (no
        // small/large swap — the caller has no slice to swap). Check they
        // agree with the slice kernels when the probe side is the smaller.
        let cases: &[(&[VertexId], &[VertexId])] = &[
            (&[], &[1, 2, 3]),
            (&[2], &[1, 2, 3, 4, 5, 6, 7, 8]),
            (&[1, 5, 9], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]),
            (&[5, 6], &[0, 2, 4, 6, 8, 10, 12]),
        ];
        for (probe, table) in cases {
            let bs = binary_search_count(probe, table);
            assert_eq!(
                binary_search_count_iter(probe.iter().copied(), table),
                bs,
                "bsearch iter {probe:?} {table:?}"
            );
            let gl = gallop_count(probe, table);
            assert_eq!(
                gallop_count_iter(probe.iter().copied(), table),
                gl,
                "gallop iter {probe:?} {table:?}"
            );
            let mut s1 = Vec::new();
            let o1 = binary_search_collect(probe, table, &mut s1);
            let mut s2 = Vec::new();
            let o2 = binary_search_collect_iter(probe.iter().copied(), table, &mut s2);
            assert_eq!((s1, o1), (s2, o2));
            let mut g1 = Vec::new();
            let p1 = gallop_collect(probe, table, &mut g1);
            let mut g2 = Vec::new();
            let p2 = gallop_collect_iter(probe.iter().copied(), table, &mut g2);
            assert_eq!((g1, p1), (g2, p2));
        }
    }

    #[test]
    fn merge_collect_reports_elements() {
        let a = vec![1, 3, 5, 7];
        let b = vec![3, 4, 7, 8];
        let mut out = Vec::new();
        merge_collect(&a, &b, &mut out);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn merge_ops_bounded_by_sum_of_lengths() {
        let a: Vec<VertexId> = (0..100).map(|i| i * 2).collect();
        let b: Vec<VertexId> = (0..100).map(|i| i * 3).collect();
        let (_, ops) = merge_count(&a, &b);
        assert!(ops <= (a.len() + b.len()) as u64);
        assert!(ops >= a.len().min(b.len()) as u64);
    }

    #[test]
    fn probe_kernels_count_real_comparisons() {
        // A single probe into a 1024-element table must cost at most
        // ⌈log2(1025)⌉ comparisons — no fixed lump, no uncounted bisection.
        let table: Vec<VertexId> = (0..1024).map(|i| i * 2).collect();
        let (_, ops) = binary_search_count(&[1001], &table);
        assert!((1..=11).contains(&ops), "bsearch ops = {ops}");
        let (_, ops) = gallop_count(&[1001], &table);
        // gallop pays the doubling walk plus the window bisection
        assert!((1..=22).contains(&ops), "gallop ops = {ops}");
        // Probing an element smaller than everything must be ~O(1) for
        // gallop (one doubling probe + tiny window).
        let (_, ops) = gallop_count(&[u64::MAX], &table);
        assert!(ops <= 22, "gallop high probe ops = {ops}");
    }
}

//! A minimal Fx-style hasher for integer-keyed maps.
//!
//! The hot maps in this workspace are keyed by `u64` vertex ids or `usize`
//! ranks. SipHash (the std default) is needlessly slow for those; this is the
//! classic multiply-rotate Fx construction used by rustc, implemented in-tree
//! so that no external dependency is required.

// This module is the definition site of the sanctioned wrappers — the one
// place allowed to name the std containers the workspace otherwise bans.
#![allow(clippy::disallowed_types)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-DoS-resistant hasher for integer keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Sanity: the hasher should not collapse small integer keys.
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }

    #[test]
    fn write_bytes_matches_words_for_aligned_input() {
        let mut a = FxHasher::default();
        a.write_u64(0xdead_beef);
        let mut b = FxHasher::default();
        b.write(&0xdead_beefu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}

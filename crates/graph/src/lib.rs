//! Graph substrate for the distributed triangle counting reproduction.
//!
//! This crate provides everything the algorithms in `tricount-core` need to
//! *represent* graphs, both sequentially and as 1D-partitioned distributed
//! graphs in the sense of Sanders & Uhl (IPDPS 2023), §II-B:
//!
//! * [`Csr`] — the *adjacency array* format: neighborhoods stored compressed
//!   in two arrays, neighborhoods sorted by vertex id.
//! * [`EdgeList`] utilities — deduplication, symmetrization, self-loop
//!   removal, isolated-vertex removal (the paper removes degree-0 vertices).
//! * [`Ordering`](ordering) — the degree-based total order `≺` used by
//!   COMPACT-FORWARD-style orientation, and plain id order.
//! * [`Partition`] — contiguous (globally id-sorted) 1D vertex partitions,
//!   balanced by vertex count or by edge count.
//! * [`LocalGraph`] — the per-PE view: owned vertices with
//!   full neighborhoods, *ghost* vertices, *interface* vertices, *cut edges*,
//!   the *expanded local graph* (ghost neighborhoods rewired from incoming
//!   cut edges) and the *contraction* to the cut graph `∂G` (paper §IV-C).
//! * [`intersect`] — counting merge/gallop/binary intersections of sorted id
//!   lists, instrumented so callers can meter local work in "candidate
//!   comparisons".
//! * [`kernels`] — the adaptive dispatch layer above [`intersect`]: a
//!   [`kernels::KernelPolicy`] picks merge vs galloping vs binary probing by
//!   a size-ratio cost model, with a per-PE [`kernels::HubIndex`]
//!   (bitmap/hash) for hub vertices and degree-aware chunk planning for
//!   intra-PE parallel counting.
//!
//! Vertex ids are global `u64` machine words throughout, matching the
//! machine-word based communication-volume accounting of the paper.

#![warn(missing_docs)]

pub mod compressed;
pub mod csr;
pub mod dist;
pub mod edgelist;
pub mod hash;
pub mod intersect;
pub mod io;
pub mod kernels;
pub mod ordering;
pub mod partition;
pub mod stats;

pub use csr::Csr;
pub use dist::{DistGraph, GhostInfo, LocalGraph};
pub use edgelist::EdgeList;
pub use ordering::{OrdKey, OrderingKind};
pub use partition::Partition;

/// A global vertex identifier (one machine word, as in the paper's model).
pub type VertexId = u64;

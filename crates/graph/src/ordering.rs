//! The total orders `≺` used to orient the undirected input graph (paper
//! §II-A and §III).
//!
//! Orientation directs every edge from the `≺`-smaller to the `≺`-larger
//! endpoint, so each triangle is discovered exactly once (from its
//! `≺`-minimal vertex). COMPACT-FORWARD uses the degree-based order
//!
//! ```text
//! u ≺ v  ⇔  d_u < d_v,  or  d_u = d_v and u < v
//! ```
//!
//! which additionally caps the out-degree of high-degree vertices.
//!
//! Oriented neighborhoods `N_v⁺` are kept sorted by *vertex id* (not by
//! `≺`-rank): the order only decides membership, while intersections merge on
//! ids. This matters in the distributed setting, where a received
//! neighborhood may contain vertices whose degree the receiver does not know.

use crate::csr::Csr;
use crate::VertexId;

/// Which total order `≺` to orient by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingKind {
    /// Degree order with id tie-break (COMPACT-FORWARD; the paper's default).
    #[default]
    Degree,
    /// Plain vertex-id order (what the basic distributed EDGEITERATOR of
    /// Algorithm 2 degenerates to when degrees are ignored).
    Id,
}

/// A comparable key realising `≺`: lexicographic `(degree, id)` for the
/// degree order, `(0, id)` for the id order. Total and antisymmetric for
/// distinct vertices by the id tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrdKey {
    /// Degree component (0 for [`OrderingKind::Id`]).
    pub degree: u64,
    /// Vertex id tie-break.
    pub id: VertexId,
}

impl OrdKey {
    /// Builds the key for vertex `v` with degree `deg` under `kind`.
    #[inline]
    pub fn new(kind: OrderingKind, v: VertexId, deg: u64) -> Self {
        match kind {
            OrderingKind::Degree => OrdKey { degree: deg, id: v },
            OrderingKind::Id => OrdKey { degree: 0, id: v },
        }
    }
}

/// Orients `g` by `kind`: the result stores, for each vertex `v`, the
/// outgoing neighborhood `N_v⁺ = { u ∈ N_v | v ≺ u }`, sorted by id.
pub fn orient(g: &Csr, kind: OrderingKind) -> Csr {
    let degs = g.degrees();
    let key = |v: VertexId| OrdKey::new(kind, v, degs[v as usize]);
    let lists: Vec<Vec<VertexId>> = g
        .vertices()
        .map(|v| {
            let kv = key(v);
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| key(u) > kv)
                .collect()
        })
        .collect();
    Csr::from_neighbor_lists(lists)
}

/// Relabels the vertices of `g` so that the degree order coincides with the
/// id order in the new graph (ids assigned by ascending `(degree, id)`).
/// Returns the relabeled graph and the permutation `new_id → old_id`.
///
/// This is the classic sequential COMPACT-FORWARD preprocessing; provided to
/// cross-check the filter-based [`orient`] in tests.
pub fn relabel_by_degree(g: &Csr) -> (Csr, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), v));
    let mut new_of_old = vec![0 as VertexId; n as usize];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = new as VertexId;
    }
    let mut el = crate::edgelist::EdgeList::new();
    for (u, v) in g.edges() {
        el.push(new_of_old[u as usize], new_of_old[v as usize]);
    }
    el.canonicalize();
    (Csr::from_edges(n, &el), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn path_star() -> Csr {
        // star center 0 with leaves 1,2,3 plus edge 1-2
        let mut el = EdgeList::from_pairs(vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        el.canonicalize();
        Csr::from_edges(4, &el)
    }

    #[test]
    fn degree_orientation_points_to_higher_degree() {
        let g = path_star();
        let o = orient(&g, OrderingKind::Degree);
        // degrees: 0→3, 1→2, 2→2, 3→1
        // 3 (deg1) points at 0; 1 (deg2) points at 2 (tie id) and 0; 2 points at 0.
        assert_eq!(o.neighbors(3), &[0]);
        assert_eq!(o.neighbors(1), &[0, 2]);
        assert_eq!(o.neighbors(2), &[0]);
        assert_eq!(o.neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    fn id_orientation_points_to_higher_ids() {
        let g = path_star();
        let o = orient(&g, OrderingKind::Id);
        assert_eq!(o.neighbors(0), &[1, 2, 3]);
        assert_eq!(o.neighbors(1), &[2]);
        assert_eq!(o.neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn orientation_preserves_edge_count() {
        let g = path_star();
        for kind in [OrderingKind::Degree, OrderingKind::Id] {
            let o = orient(&g, kind);
            assert_eq!(o.num_directed_edges(), g.num_edges());
        }
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let g = path_star();
        let o = orient(&g, OrderingKind::Degree);
        for (u, v) in o.directed_edges() {
            assert!(
                !o.neighbors(v).contains(&u),
                "both ({u},{v}) and ({v},{u}) oriented"
            );
        }
    }

    #[test]
    fn ordkey_is_total_for_distinct_vertices() {
        for kind in [OrderingKind::Degree, OrderingKind::Id] {
            let a = OrdKey::new(kind, 1, 5);
            let b = OrdKey::new(kind, 2, 5);
            assert_ne!(a, b);
            assert!(a < b || b < a);
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = path_star();
        let (r, perm) = relabel_by_degree(&g);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        // degrees multiset preserved
        let mut d1 = g.degrees();
        let mut d2 = r.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // new ids sorted by old (degree, id)
        for w in perm.windows(2) {
            assert!((g.degree(w[0]), w[0]) < (g.degree(w[1]), w[1]));
        }
        // relabeled degree order == id order: orient by id must give same
        // out-degree distribution as orienting original by degree.
        let o1 = orient(&g, OrderingKind::Degree);
        let o2 = orient(&r, OrderingKind::Id);
        let mut od1: Vec<u64> = o1.vertices().map(|v| o1.degree(v)).collect();
        let mut od2: Vec<u64> = o2.vertices().map(|v| o2.degree(v)).collect();
        od1.sort_unstable();
        od2.sort_unstable();
        assert_eq!(od1, od2);
    }
}

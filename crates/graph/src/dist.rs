//! The per-PE view of a 1D-partitioned distributed graph (paper §II-B and
//! Fig. 1), plus the orientation / expansion / contraction transformations of
//! CETRIC (§IV-C, Algorithm 3).
//!
//! Terminology (all from the paper):
//! * **owned/local vertices** `V_i` — the contiguous id range assigned to PE `i`;
//!   their full neighborhoods are stored locally.
//! * **ghost vertices** `∂V_i` — non-local vertices appearing in some local
//!   neighborhood.
//! * **interface vertices** — local vertices adjacent to at least one ghost.
//! * **cut edges** — edges between vertices owned by different PEs; the *cut
//!   graph* `∂G` consists of exactly these.
//! * **expanded local graph** — `V_i ∪ ∂V_i` with every edge incident to
//!   `V_i`; ghost neighborhoods are obtained for free by "rewiring incoming
//!   cut edges" (§IV-D) — no communication needed.

use crate::csr::Csr;
use crate::ordering::{OrdKey, OrderingKind};
use crate::partition::Partition;
use crate::VertexId;

/// Ghost-vertex metadata for one PE: the sorted ghost ids and (after the
/// degree exchange of Algorithm 3 line 1) their global degrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhostInfo {
    ids: Vec<VertexId>,
    degrees: Option<Vec<u64>>,
}

impl GhostInfo {
    /// Sorted ghost ids `∂V_i`.
    pub fn ids(&self) -> &[VertexId] {
        &self.ids
    }

    /// Number of ghosts.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if this PE has no ghosts (its subgraph is isolated).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Index of ghost `v` in [`GhostInfo::ids`], if `v` is a ghost here.
    #[inline]
    pub fn index_of(&self, v: VertexId) -> Option<usize> {
        self.ids.binary_search(&v).ok()
    }

    /// Whether the ghost degree exchange has been performed.
    pub fn degrees_known(&self) -> bool {
        self.degrees.is_some()
    }

    /// Global degree of the `idx`-th ghost. Panics if degrees are unknown.
    #[inline]
    pub fn degree(&self, idx: usize) -> u64 {
        self.degrees.as_ref().expect("ghost degrees not exchanged")[idx]
    }
}

/// The graph data PE `i` holds: full neighborhoods of its owned vertices.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    rank: usize,
    part: Partition,
    /// Adjacency offsets, one slot per owned vertex (local index).
    offsets: Vec<usize>,
    /// Neighbor ids (global), sorted ascending per vertex.
    targets: Vec<VertexId>,
    ghosts: GhostInfo,
}

impl LocalGraph {
    /// Extracts PE `rank`'s local graph from a global CSR. (In a real
    /// deployment each PE loads only its slice; centralised extraction is the
    /// simulator's stand-in and happens outside every timed region, matching
    /// the paper's exclusion of input loading.)
    pub fn from_global(g: &Csr, part: &Partition, rank: usize) -> Self {
        let range = part.range(rank);
        let mut offsets = Vec::with_capacity((range.end - range.start) as usize + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        let mut ghost_ids = Vec::new();
        for v in range.clone() {
            let ns = g.neighbors(v);
            targets.extend_from_slice(ns);
            offsets.push(targets.len());
            for &u in ns {
                if !range.contains(&u) {
                    ghost_ids.push(u);
                }
            }
        }
        ghost_ids.sort_unstable();
        ghost_ids.dedup();
        Self {
            rank,
            part: part.clone(),
            offsets,
            targets,
            ghosts: GhostInfo {
                ids: ghost_ids,
                degrees: None,
            },
        }
    }

    /// Builds a local graph directly from `(vertex, neighborhood)` pairs —
    /// the receive side of a message-passing redistribution (§IV-D load
    /// balancing). The pairs must cover exactly `part.range(rank)` in
    /// ascending order; neighborhoods must be sorted by id.
    pub fn from_neighborhoods(
        part: Partition,
        rank: usize,
        neighborhoods: Vec<(VertexId, Vec<VertexId>)>,
    ) -> Self {
        let range = part.range(rank);
        assert_eq!(
            neighborhoods.len() as u64,
            range.end - range.start,
            "neighborhoods must cover the owned range"
        );
        let mut offsets = Vec::with_capacity(neighborhoods.len() + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        let mut ghost_ids = Vec::new();
        for (i, (v, ns)) in neighborhoods.into_iter().enumerate() {
            assert_eq!(
                v,
                range.start + i as u64,
                "vertices must arrive in id order"
            );
            debug_assert!(
                ns.windows(2).all(|w| w[0] < w[1]),
                "neighborhood not sorted"
            );
            for &u in &ns {
                if !range.contains(&u) {
                    ghost_ids.push(u);
                }
            }
            targets.extend(ns);
            offsets.push(targets.len());
        }
        ghost_ids.sort_unstable();
        ghost_ids.dedup();
        Self {
            rank,
            part,
            offsets,
            targets,
            ghosts: GhostInfo {
                ids: ghost_ids,
                degrees: None,
            },
        }
    }

    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The global partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The owned id range `V_i`.
    pub fn owned_range(&self) -> std::ops::Range<VertexId> {
        self.part.range(self.rank)
    }

    /// Number of owned vertices `|V_i|`.
    pub fn num_owned(&self) -> u64 {
        self.part.size_of(self.rank)
    }

    /// Number of locally stored adjacency entries `|E_i|` (each local edge
    /// twice, each cut edge once). This is the paper's per-PE input size that
    /// bounds the aggregation buffers (`δ ∈ O(|E_i|)`).
    pub fn num_local_entries(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Whether `v` is owned by this PE.
    #[inline]
    pub fn is_owned(&self, v: VertexId) -> bool {
        self.part.owns(self.rank, v)
    }

    /// Full sorted neighborhood `N_v` of an *owned* vertex.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        debug_assert!(self.is_owned(v));
        let l = (v - self.owned_range().start) as usize;
        &self.targets[self.offsets[l]..self.offsets[l + 1]]
    }

    /// Degree of an *owned* vertex.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        debug_assert!(self.is_owned(v));
        let l = (v - self.owned_range().start) as usize;
        (self.offsets[l + 1] - self.offsets[l]) as u64
    }

    /// Iterator over owned vertex ids.
    pub fn owned_vertices(&self) -> std::ops::Range<VertexId> {
        self.owned_range()
    }

    /// Ghost metadata.
    pub fn ghosts(&self) -> &GhostInfo {
        &self.ghosts
    }

    /// Installs the ghost degrees resulting from the degree exchange. The
    /// vector must align with [`GhostInfo::ids`].
    pub fn set_ghost_degrees(&mut self, degrees: Vec<u64>) {
        assert_eq!(degrees.len(), self.ghosts.ids.len());
        self.ghosts.degrees = Some(degrees);
    }

    /// Degree of any vertex this PE knows: owned directly, ghosts from the
    /// exchange. Panics for unknown vertices or before the exchange.
    #[inline]
    pub fn known_degree(&self, v: VertexId) -> u64 {
        if self.is_owned(v) {
            self.degree(v)
        } else {
            let idx = self.ghosts.index_of(v).unwrap_or_else(|| {
                panic!("vertex {v} is neither owned nor ghost on PE {}", self.rank)
            });
            self.ghosts.degree(idx)
        }
    }

    /// The `≺`-key of any known vertex under `kind`.
    #[inline]
    pub fn ord_key(&self, kind: OrderingKind, v: VertexId) -> OrdKey {
        let deg = match kind {
            OrderingKind::Degree => self.known_degree(v),
            OrderingKind::Id => 0,
        };
        OrdKey::new(kind, v, deg)
    }

    /// Iterator over this PE's outgoing *cut edges* `(v, ghost)`.
    pub fn cut_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.owned_vertices().flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .copied()
                .filter(move |&u| !self.is_owned(u))
                .map(move |u| (v, u))
        })
    }

    /// Number of outgoing cut edges.
    pub fn num_cut_edges(&self) -> u64 {
        self.cut_edges().count() as u64
    }

    /// Owned vertices adjacent to at least one ghost (*interface vertices*).
    pub fn interface_vertices(&self) -> Vec<VertexId> {
        self.owned_vertices()
            .filter(|&v| self.neighbors(v).iter().any(|&u| !self.is_owned(u)))
            .collect()
    }

    /// Groups ghost ids by their owner rank — the request sets for the ghost
    /// degree exchange. Returns `(rank, ghost ids owned by rank)` pairs with
    /// nonempty id lists, ranks ascending.
    pub fn ghost_ids_by_owner(&self) -> Vec<(usize, Vec<VertexId>)> {
        let mut out: Vec<(usize, Vec<VertexId>)> = Vec::new();
        for &g in &self.ghosts.ids {
            let r = self.part.rank_of(g);
            match out.last_mut() {
                Some((lr, v)) if *lr == r => v.push(g),
                _ => out.push((r, vec![g])),
            }
        }
        out
    }

    /// Orients this local graph by `kind`, producing the structure both the
    /// local phase (with ghost neighborhoods, `expand_ghosts = true`) and the
    /// plain distributed EDGEITERATOR (`expand_ghosts = false`) operate on.
    ///
    /// Requires ghost degrees when `kind == Degree` and ghosts exist.
    pub fn orient(&self, kind: OrderingKind, expand_ghosts: bool) -> OrientedLocalGraph {
        if kind == OrderingKind::Degree && !self.ghosts.is_empty() {
            assert!(
                self.ghosts.degrees_known(),
                "degree orientation requires the ghost degree exchange first"
            );
        }
        let range = self.owned_range();
        let mut owned_off = Vec::with_capacity((range.end - range.start) as usize + 1);
        owned_off.push(0usize);
        let mut owned_adj: Vec<VertexId> = Vec::new();
        for v in range.clone() {
            let kv = self.ord_key(kind, v);
            owned_adj.extend(
                self.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| self.ord_key(kind, u) > kv),
            );
            owned_off.push(owned_adj.len());
        }

        let (ghost_off, ghost_adj) = if expand_ghosts {
            // Rewire incoming cut edges: ghost g's locally visible
            // neighborhood is every owned v with g ∈ N_v. Restricted to
            // out-neighbors: A(g) = { v ∈ V_i ∩ N_g | v ≻ g }.
            let mut lists: Vec<Vec<VertexId>> = vec![Vec::new(); self.ghosts.len()];
            for v in range.clone() {
                for &u in self.neighbors(v) {
                    if !self.is_owned(u) {
                        let gi = self.ghosts.index_of(u).expect("ghost must be registered");
                        if self.ord_key(kind, v) > self.ord_key(kind, u) {
                            lists[gi].push(v);
                        }
                    }
                }
            }
            let mut off = Vec::with_capacity(self.ghosts.len() + 1);
            off.push(0usize);
            let mut adj = Vec::new();
            for mut list in lists {
                list.sort_unstable();
                adj.extend_from_slice(&list);
                off.push(adj.len());
            }
            (off, adj)
        } else {
            (vec![0usize], Vec::new())
        };

        OrientedLocalGraph {
            rank: self.rank,
            part: self.part.clone(),
            kind,
            owned_off,
            owned_adj,
            ghost_ids: self.ghosts.ids.clone(),
            ghost_off,
            ghost_adj,
            expanded: expand_ghosts,
        }
    }
}

/// The degree-oriented per-PE graph: `A(v) = { x ∈ N_v | x ≻ v }` for owned
/// vertices (sorted by id), and — when built with ghost expansion — the
/// locally visible `A(g) = { x ∈ N_g ∩ V_i | x ≻ g }` for ghosts.
#[derive(Debug, Clone)]
pub struct OrientedLocalGraph {
    rank: usize,
    part: Partition,
    kind: OrderingKind,
    owned_off: Vec<usize>,
    owned_adj: Vec<VertexId>,
    ghost_ids: Vec<VertexId>,
    ghost_off: Vec<usize>,
    ghost_adj: Vec<VertexId>,
    expanded: bool,
}

impl OrientedLocalGraph {
    /// This PE's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The global partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The ordering this graph was oriented by.
    pub fn ordering(&self) -> OrderingKind {
        self.kind
    }

    /// Whether ghost neighborhoods were materialised (CETRIC's expanded
    /// local graph).
    pub fn is_expanded(&self) -> bool {
        self.expanded
    }

    /// The owned id range.
    pub fn owned_range(&self) -> std::ops::Range<VertexId> {
        self.part.range(self.rank)
    }

    /// Whether `v` is owned.
    #[inline]
    pub fn is_owned(&self, v: VertexId) -> bool {
        self.part.owns(self.rank, v)
    }

    /// Oriented out-neighborhood `A(v)` of an owned vertex, sorted by id.
    #[inline]
    pub fn a_owned(&self, v: VertexId) -> &[VertexId] {
        debug_assert!(self.is_owned(v));
        let l = (v - self.owned_range().start) as usize;
        &self.owned_adj[self.owned_off[l]..self.owned_off[l + 1]]
    }

    /// Sorted ghost ids.
    pub fn ghost_ids(&self) -> &[VertexId] {
        &self.ghost_ids
    }

    /// Locally visible oriented neighborhood of the `idx`-th ghost.
    #[inline]
    pub fn a_ghost(&self, idx: usize) -> &[VertexId] {
        debug_assert!(self.expanded, "ghost adjacency requires expansion");
        &self.ghost_adj[self.ghost_off[idx]..self.ghost_off[idx + 1]]
    }

    /// `A(v)` for any vertex this PE can see (owned, or ghost when
    /// expanded); `None` for unknown vertices.
    #[inline]
    pub fn a_of(&self, v: VertexId) -> Option<&[VertexId]> {
        if self.is_owned(v) {
            Some(self.a_owned(v))
        } else if self.expanded {
            self.ghost_ids
                .binary_search(&v)
                .ok()
                .map(|i| self.a_ghost(i))
        } else {
            None
        }
    }

    /// Sum of owned `|A(v)|` (the number of oriented local adjacency
    /// entries).
    pub fn num_oriented_entries(&self) -> u64 {
        self.owned_adj.len() as u64
    }

    /// The *contraction* step (Algorithm 3 line 8): for each owned `v`, keep
    /// only the non-local part of `A(v)` — the oriented cut edges. Returns
    /// per-owned-vertex contracted lists (sorted by id; the local id range is
    /// contiguous so the result is the concatenation of a prefix and a
    /// suffix of `A(v)`).
    pub fn contracted(&self) -> ContractedGraph {
        let range = self.owned_range();
        let mut off = Vec::with_capacity(self.owned_off.len());
        off.push(0usize);
        let mut adj = Vec::new();
        for v in range.clone() {
            adj.extend(
                self.a_owned(v)
                    .iter()
                    .copied()
                    .filter(|&u| !range.contains(&u)),
            );
            off.push(adj.len());
        }
        ContractedGraph {
            start: range.start,
            off,
            adj,
        }
    }
}

/// The cut-graph restriction of an oriented local graph: per owned vertex the
/// oriented *cut* out-neighborhood `A(v) \ V_i`. Lemma 1 of the paper:
/// triangles of this graph (across all PEs) are exactly the type-3 triangles
/// of `G`.
#[derive(Debug, Clone)]
pub struct ContractedGraph {
    start: VertexId,
    off: Vec<usize>,
    adj: Vec<VertexId>,
}

impl ContractedGraph {
    /// Contracted `A(v)` of owned vertex `v`.
    #[inline]
    pub fn a_of(&self, v: VertexId) -> &[VertexId] {
        let l = (v - self.start) as usize;
        &self.adj[self.off[l]..self.off[l + 1]]
    }

    /// Iterator over owned vertices with nonempty contracted neighborhoods,
    /// as `(v, A(v))`.
    pub fn nonempty(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        (0..self.off.len() - 1).filter_map(move |l| {
            let a = &self.adj[self.off[l]..self.off[l + 1]];
            (!a.is_empty()).then_some((self.start + l as VertexId, a))
        })
    }

    /// Total remaining oriented entries (= oriented cut edges from this PE).
    pub fn num_entries(&self) -> u64 {
        self.adj.len() as u64
    }
}

/// A fully partitioned graph: every PE's [`LocalGraph`] plus the shared
/// [`Partition`]. This is the object handed to the simulated runtime; each
/// rank thread takes its own `LocalGraph`.
#[derive(Debug, Clone)]
pub struct DistGraph {
    part: Partition,
    locals: Vec<LocalGraph>,
}

impl DistGraph {
    /// Partitions `g` over `p` PEs, balanced by vertex count.
    pub fn new_balanced_vertices(g: &Csr, p: usize) -> Self {
        Self::with_partition(g, Partition::balanced_vertices(g.num_vertices(), p))
    }

    /// Partitions `g` over `p` PEs, balanced by adjacency entries.
    pub fn new_balanced_edges(g: &Csr, p: usize) -> Self {
        Self::with_partition(g, Partition::balanced_edges(g, p))
    }

    /// Partitions `g` with an explicit partition.
    pub fn with_partition(g: &Csr, part: Partition) -> Self {
        assert_eq!(part.num_vertices(), g.num_vertices());
        let locals = (0..part.num_ranks())
            .map(|r| LocalGraph::from_global(g, &part, r))
            .collect();
        Self { part, locals }
    }

    /// The partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Number of PEs.
    pub fn num_ranks(&self) -> usize {
        self.part.num_ranks()
    }

    /// Borrow PE `rank`'s local graph.
    pub fn local(&self, rank: usize) -> &LocalGraph {
        &self.locals[rank]
    }

    /// Take ownership of the per-rank local graphs (to move into rank
    /// threads).
    pub fn into_locals(self) -> Vec<LocalGraph> {
        self.locals
    }

    /// Fills every PE's ghost degrees directly from neighbours' data,
    /// bypassing communication. For tests and sequential tooling; the real
    /// metered exchange lives in `tricount-core::dist::preprocess`.
    pub fn fill_ghost_degrees_centrally(&mut self) {
        let part = self.part.clone();
        // degrees of all vertices, readable across locals
        let deg_of = |v: VertexId, locals: &[LocalGraph]| {
            let r = part.rank_of(v);
            locals[r].degree(v)
        };
        for i in 0..self.locals.len() {
            let degrees: Vec<u64> = self.locals[i]
                .ghosts()
                .ids()
                .iter()
                .map(|&g| deg_of(g, &self.locals))
                .collect();
            self.locals[i].set_ghost_degrees(degrees);
        }
    }

    /// Global number of cut edges (each counted once).
    pub fn num_cut_edges(&self) -> u64 {
        self.locals.iter().map(|l| l.num_cut_edges()).sum::<u64>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    /// Figure-1-style graph: two PEs, a triangle on each side plus cut edges.
    fn two_pe_graph() -> (Csr, Partition) {
        // vertices 0..3 on PE0, 3..6 on PE1
        // PE0 triangle {0,1,2}; PE1 triangle {3,4,5}; cut edges {2,3}, {1,4}
        let mut el = EdgeList::from_pairs(vec![
            (0, 1),
            (0, 2),
            (1, 2),
            (3, 4),
            (3, 5),
            (4, 5),
            (2, 3),
            (1, 4),
        ]);
        el.canonicalize();
        let g = Csr::from_edges(6, &el);
        let part = Partition::from_bounds(vec![0, 3, 6]);
        (g, part)
    }

    #[test]
    fn local_graphs_partition_the_adjacency() {
        let (g, part) = two_pe_graph();
        let dg = DistGraph::with_partition(&g, part);
        let total: u64 = (0..2).map(|r| dg.local(r).num_local_entries()).sum();
        assert_eq!(total, g.num_directed_edges());
        assert_eq!(dg.local(0).neighbors(2), &[0, 1, 3]);
        assert_eq!(dg.local(1).neighbors(4), &[1, 3, 5]);
    }

    #[test]
    fn ghosts_and_interfaces_identified() {
        let (g, part) = two_pe_graph();
        let dg = DistGraph::with_partition(&g, part);
        assert_eq!(dg.local(0).ghosts().ids(), &[3, 4]);
        assert_eq!(dg.local(1).ghosts().ids(), &[1, 2]);
        assert_eq!(dg.local(0).interface_vertices(), vec![1, 2]);
        assert_eq!(dg.local(1).interface_vertices(), vec![3, 4]);
        assert_eq!(dg.num_cut_edges(), 2);
    }

    #[test]
    fn ghost_degree_requests_grouped_by_owner() {
        let (g, part) = two_pe_graph();
        let dg = DistGraph::with_partition(&g, part);
        let reqs = dg.local(0).ghost_ids_by_owner();
        assert_eq!(reqs, vec![(1usize, vec![3, 4])]);
    }

    #[test]
    fn central_ghost_degrees_match_truth() {
        let (g, part) = two_pe_graph();
        let mut dg = DistGraph::with_partition(&g, part);
        dg.fill_ghost_degrees_centrally();
        let l0 = dg.local(0);
        assert_eq!(l0.known_degree(3), g.degree(3));
        assert_eq!(l0.known_degree(4), g.degree(4));
    }

    #[test]
    fn orientation_with_ghosts() {
        let (g, part) = two_pe_graph();
        let mut dg = DistGraph::with_partition(&g, part);
        dg.fill_ghost_degrees_centrally();
        let o = dg.local(0).orient(OrderingKind::Degree, true);
        // degrees: d0=2 d1=3 d2=3 d3=3 d4=3 d5=2
        // A(0) = {1,2} (both deg 3 > 2)
        assert_eq!(o.a_owned(0), &[1, 2]);
        // A(1): nbrs {0,2,4}; key(1)=(3,1); 0=(2,0) no; 2=(3,2) yes; 4=(3,4) yes
        assert_eq!(o.a_owned(1), &[2, 4]);
        // A(2): nbrs {0,1,3}; key(2)=(3,2); 3=(3,3) yes only
        assert_eq!(o.a_owned(2), &[3]);
        // ghosts of PE0: 3 and 4; A(3) local = owned nbrs ≻ 3 = {2?}: key(2)=(3,2) < (3,3) → none
        assert_eq!(o.a_ghost(0), &[] as &[VertexId]);
        // A(4) local: owned nbr 1, key(1)=(3,1) < (3,4) → none
        assert_eq!(o.a_ghost(1), &[] as &[VertexId]);
    }

    #[test]
    fn contraction_keeps_only_cut_entries() {
        let (g, part) = two_pe_graph();
        let mut dg = DistGraph::with_partition(&g, part);
        dg.fill_ghost_degrees_centrally();
        let o = dg.local(0).orient(OrderingKind::Degree, true);
        let c = o.contracted();
        assert_eq!(c.a_of(0), &[] as &[VertexId]);
        assert_eq!(c.a_of(1), &[4]);
        assert_eq!(c.a_of(2), &[3]);
        assert_eq!(c.num_entries(), 2);
        let ne: Vec<_> = c.nonempty().map(|(v, a)| (v, a.to_vec())).collect();
        assert_eq!(ne, vec![(1, vec![4]), (2, vec![3])]);
    }

    #[test]
    fn id_orientation_needs_no_ghost_degrees() {
        let (g, part) = two_pe_graph();
        let dg = DistGraph::with_partition(&g, part);
        let o = dg.local(0).orient(OrderingKind::Id, false);
        assert_eq!(o.a_owned(0), &[1, 2]);
        assert_eq!(o.a_owned(2), &[3]);
        assert!(o.a_of(5).is_none());
    }

    #[test]
    fn single_pe_has_no_ghosts() {
        let (g, _) = two_pe_graph();
        let dg = DistGraph::new_balanced_vertices(&g, 1);
        assert!(dg.local(0).ghosts().is_empty());
        assert_eq!(dg.local(0).num_cut_edges(), 0);
        assert_eq!(dg.num_cut_edges(), 0);
    }

    #[test]
    fn from_neighborhoods_reconstructs_local_graph() {
        let (g, part) = two_pe_graph();
        for rank in 0..2 {
            let reference = LocalGraph::from_global(&g, &part, rank);
            let nbh: Vec<(VertexId, Vec<VertexId>)> = reference
                .owned_vertices()
                .map(|v| (v, reference.neighbors(v).to_vec()))
                .collect();
            let rebuilt = LocalGraph::from_neighborhoods(part.clone(), rank, nbh);
            for v in rebuilt.owned_vertices() {
                assert_eq!(rebuilt.neighbors(v), reference.neighbors(v));
            }
            assert_eq!(rebuilt.ghosts().ids(), reference.ghosts().ids());
        }
    }

    #[test]
    #[should_panic(expected = "cover the owned range")]
    fn from_neighborhoods_rejects_partial_coverage() {
        let (_, part) = two_pe_graph();
        let _ = LocalGraph::from_neighborhoods(part, 0, vec![(0, vec![1])]);
    }

    #[test]
    #[should_panic(expected = "id order")]
    fn from_neighborhoods_rejects_misordered_vertices() {
        let (_, part) = two_pe_graph();
        let _ =
            LocalGraph::from_neighborhoods(part, 0, vec![(1, vec![0]), (0, vec![1]), (2, vec![])]);
    }

    #[test]
    fn oriented_entries_sum_to_m() {
        let (g, part) = two_pe_graph();
        let mut dg = DistGraph::with_partition(&g, part);
        dg.fill_ghost_degrees_centrally();
        let total: u64 = (0..2)
            .map(|r| {
                dg.local(r)
                    .orient(OrderingKind::Degree, false)
                    .num_oriented_entries()
            })
            .sum();
        assert_eq!(total, g.num_edges());
    }
}

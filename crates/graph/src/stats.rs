//! Descriptive graph statistics: the quantities Table I reports (n, m,
//! wedges) plus the degree-distribution summaries used to characterise the
//! instance families (skew, hubs) and the global clustering coefficient.

use crate::csr::Csr;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: u64,
    /// Number of undirected edges.
    pub m: u64,
    /// Number of wedges `Σ d(d−1)/2`.
    pub wedges: u64,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Median degree.
    pub median_degree: u64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: u64,
}

impl GraphStats {
    /// Computes the summary for `g`.
    pub fn of(g: &Csr) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut degs = g.degrees();
        degs.sort_unstable();
        GraphStats {
            n,
            m,
            wedges: g.num_wedges(),
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            max_degree: degs.last().copied().unwrap_or(0),
            median_degree: if degs.is_empty() {
                0
            } else {
                degs[degs.len() / 2]
            },
            isolated: degs.iter().take_while(|&&d| d == 0).count() as u64,
        }
    }

    /// Degree-skew indicator: `max_degree / avg_degree` (≫ 1 for power-law
    /// graphs, ≈ 1–3 for roads and GNM).
    pub fn skew(&self) -> f64 {
        if self.avg_degree == 0.0 {
            0.0
        } else {
            self.max_degree as f64 / self.avg_degree
        }
    }
}

/// Global clustering coefficient (transitivity) `3T / wedges`, given the
/// triangle count `t` of the graph.
pub fn global_clustering_coefficient(g: &Csr, t: u64) -> f64 {
    let w = g.num_wedges();
    if w == 0 {
        0.0
    } else {
        3.0 * t as f64 / w as f64
    }
}

/// Log₂-binned degree histogram: `hist[b]` counts vertices with
/// `2^b ≤ degree < 2^(b+1)` (`hist[0]` also includes degree 1; degree-0
/// vertices are excluded). Useful for eyeballing power-law tails.
pub fn degree_histogram_log2(g: &Csr) -> Vec<u64> {
    let mut hist: Vec<u64> = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        if d == 0 {
            continue;
        }
        let b = (63 - d.leading_zeros()) as usize;
        if hist.len() <= b {
            hist.resize(b + 1, 0);
        }
        hist[b] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn star(leaves: u64) -> Csr {
        let mut el = EdgeList::from_pairs((1..=leaves).map(|v| (0u64, v)).collect());
        el.canonicalize();
        Csr::from_edges(leaves + 1, &el)
    }

    #[test]
    fn star_stats() {
        let g = star(10);
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 11);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.median_degree, 1);
        assert_eq!(s.wedges, 45);
        assert!(s.skew() > 5.0);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_edges(0, &EdgeList::new());
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn isolated_vertices_counted() {
        let mut el = EdgeList::new();
        el.push(3, 4);
        el.canonicalize();
        let g = Csr::from_edges(6, &el);
        assert_eq!(GraphStats::of(&g).isolated, 4);
    }

    #[test]
    fn gcc_of_triangle_is_one() {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 2)]);
        el.canonicalize();
        let g = Csr::from_edges(3, &el);
        assert_eq!(global_clustering_coefficient(&g, 1), 1.0);
    }

    #[test]
    fn gcc_of_path_is_zero() {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2)]);
        el.canonicalize();
        let g = Csr::from_edges(3, &el);
        assert_eq!(global_clustering_coefficient(&g, 0), 0.0);
    }

    #[test]
    fn histogram_bins() {
        // degrees: star(8) → one vertex of degree 8 (bin 3), 8 of degree 1 (bin 0)
        let g = star(8);
        let h = degree_histogram_log2(&g);
        assert_eq!(h[0], 8);
        assert_eq!(h[3], 1);
        assert_eq!(h.iter().sum::<u64>(), 9);
    }
}

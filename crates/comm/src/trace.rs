//! Execution-trace recording for the verification layer (see the
//! `tricount-verify` crate).
//!
//! When the `trace` cargo feature is enabled and a run requests recording
//! (see [`crate::runtime::SimOptions::record_trace`]), every PE appends one
//! [`TraceEvent`] per communication action to a private per-PE buffer; the
//! buffers are assembled into a [`Trace`] when the run ends. Recording is a
//! plain `Vec::push` per event with no synchronisation, so traced runs stay
//! faithful to untraced ones (the schedule is not perturbed by recording).
//!
//! The events are chosen so that the paper's protocol invariants are
//! machine-checkable from the trace alone:
//!
//! * [`TraceEvent::Posted`] / [`TraceEvent::Delivered`] — every envelope
//!   handed to the queue must reach its destination's sink exactly once
//!   (multiset equality on `(dest, payload)`).
//! * [`TraceEvent::Posted::buffered_after`] — the §IV-A memory lemma: with
//!   `delta: Some(d)` the buffered volume never exceeds `d` by more than a
//!   bounded overshoot.
//! * [`TraceEvent::Flushed`] — grid-routed traffic leaves a PE only toward
//!   its O(√p) row/column peers (§IV-B).
//! * [`TraceEvent::CollEnter`] / [`TraceEvent::CollExit`] — all PEs execute
//!   the same sequence of collectives (epoch alignment).
//! * [`TraceEvent::Sent`] / [`TraceEvent::Received`] — the words the cost
//!   model charges equal the words that actually crossed the (simulated)
//!   wire.

/// The collective operations a PE can enter, in trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// [`crate::Ctx::barrier`].
    Barrier,
    /// [`crate::Ctx::allgatherv`].
    Allgatherv,
    /// [`crate::Ctx::allreduce_sum`].
    AllreduceSum,
    /// [`crate::Ctx::allreduce_max`].
    AllreduceMax,
    /// [`crate::Ctx::exscan_sum`].
    ExscanSum,
    /// [`crate::Ctx::alltoallv`].
    Alltoallv,
    /// [`crate::MessageQueue::finish`] — the sparse-exchange termination.
    SparseFinish,
}

impl CollKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CollKind::Barrier => "barrier",
            CollKind::Allgatherv => "allgatherv",
            CollKind::AllreduceSum => "allreduce_sum",
            CollKind::AllreduceMax => "allreduce_max",
            CollKind::ExscanSum => "exscan_sum",
            CollKind::Alltoallv => "alltoallv",
            CollKind::SparseFinish => "sparse_finish",
        }
    }
}

/// Sentinel sequence number for [`TraceEvent::Sent`]/[`TraceEvent::Received`]
/// events that are constituents of an `alltoallv` collective rather than
/// true point-to-point messages: their ordering is established by the
/// collective's enter/exit barriers, not by the per-peer sequence space.
pub const COLL_CONSTITUENT_SEQ: u64 = u64::MAX;

/// One recorded action of one PE. The PE is implicit: events live in
/// per-PE buffers ([`Trace::per_pe`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A [`crate::MessageQueue`] announced its configuration (recorded once
    /// per queue, at the first post). Starts a new *queue segment* in the
    /// event stream; segment-scoped invariants (memory bound, grid fan-out)
    /// reset here.
    QueueConfigured {
        /// Flush threshold δ in words (`None` = static aggregation).
        delta: Option<u64>,
        /// Whether the queue routes via the §IV-B grid.
        grid: bool,
    },
    /// An envelope was posted to the queue.
    Posted {
        /// Final destination PE.
        dest: usize,
        /// First hop chosen by the routing discipline.
        hop: usize,
        /// Payload length in words (headers excluded).
        payload_words: u64,
        /// Order-sensitive hash of the payload words.
        payload_hash: u64,
        /// Total buffered words *after* this post was appended (pre-flush).
        buffered_after: u64,
    },
    /// A relay record passed through this PE's buffers (grid second hop).
    Relayed {
        /// Final destination PE.
        dest: usize,
        /// Payload length in words.
        payload_words: u64,
        /// Hash of the payload words.
        payload_hash: u64,
        /// Total buffered words after appending the relay record.
        buffered_after: u64,
    },
    /// One per-peer buffer was flushed as a single aggregated message.
    Flushed {
        /// The peer the aggregate was sent to.
        peer: usize,
        /// Aggregate size in words (headers included).
        words: u64,
    },
    /// An envelope reached its destination sink.
    Delivered {
        /// Payload length in words.
        payload_words: u64,
        /// Hash of the payload words (matches the posting event's hash).
        payload_hash: u64,
    },
    /// A raw point-to-point message left this PE (queue flushes and direct
    /// sends; `alltoallv` constituents are recorded here too).
    Sent {
        /// Destination rank.
        to: usize,
        /// Message length in words.
        words: u64,
        /// Per-`(sender, to)` sequence number assigned at send time; pairs
        /// this event with the matching [`TraceEvent::Received`] for
        /// happens-before analysis. [`COLL_CONSTITUENT_SEQ`] for `alltoallv`
        /// constituents (those are ordered by the collective itself).
        seq: u64,
    },
    /// A raw point-to-point message was received.
    Received {
        /// Immediate sender rank.
        from: usize,
        /// Message length in words.
        words: u64,
        /// Sequence number carried by the message (assigned by the sender);
        /// see [`TraceEvent::Sent::seq`].
        seq: u64,
    },
    /// The PE entered a collective.
    CollEnter {
        /// Which collective.
        kind: CollKind,
    },
    /// The PE left a collective.
    CollExit {
        /// Which collective.
        kind: CollKind,
    },
    /// The PE ended a phase ([`crate::Ctx::end_phase`]).
    PhaseEnded {
        /// Phase name.
        name: String,
    },
}

/// A causal timestamp pair captured at a span boundary: the overlap-aware
/// simulated clock of timed runs (0 in untimed runs) plus host wall time
/// relative to the run's start. Wall stamps are measurement, not model —
/// they vary run to run and never feed deterministic artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStamp {
    /// Simulated-clock seconds at the boundary ([`crate::stats::Counters::sim_clock`]).
    pub sim: f64,
    /// Host wall nanoseconds since the run started.
    pub wall_nanos: u64,
}

/// What a recorded [`SpanRecord`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A barrier-delimited phase, closed by [`crate::Ctx::end_phase`].
    Phase,
    /// A collective, from entry to exit.
    Collective(CollKind),
    /// A [`crate::MessageQueue`] flush that actually sent something.
    Flush,
    /// A caller-named section ([`crate::Ctx::with_span`]).
    Task,
}

impl SpanKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Phase => "phase",
            SpanKind::Collective(_) => "collective",
            SpanKind::Flush => "flush",
            SpanKind::Task => "task",
        }
    }
}

/// One recorded span of one PE: a labelled interval with causal begin/end
/// stamps. Recorded with a plain `Vec::push` into a private per-PE buffer,
/// exactly like [`TraceEvent`]s, so span recording never perturbs the
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// What the span covers.
    pub kind: SpanKind,
    /// Phase name, collective name, or caller-chosen label.
    pub label: String,
    /// Stamp at span entry.
    pub begin: SpanStamp,
    /// Stamp at span exit.
    pub end: SpanStamp,
}

impl SpanRecord {
    /// Wall duration in seconds (0 if the clock went backwards).
    pub fn wall_seconds(&self) -> f64 {
        self.end.wall_nanos.saturating_sub(self.begin.wall_nanos) as f64 * 1e-9
    }

    /// Simulated-clock duration in seconds (0 in untimed runs).
    pub fn sim_seconds(&self) -> f64 {
        (self.end.sim - self.begin.sim).max(0.0)
    }
}

/// The full per-PE event record of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events of each PE, indexed by rank, in program order.
    pub per_pe: Vec<Vec<TraceEvent>>,
    /// Spans of each PE, indexed by rank, in completion order (a span is
    /// recorded when it ends). Empty per-PE vectors when the run recorded
    /// no spans.
    pub spans: Vec<Vec<SpanRecord>>,
}

impl Trace {
    /// Number of PEs.
    pub fn num_ranks(&self) -> usize {
        self.per_pe.len()
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.per_pe.iter().map(Vec::len).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of recorded spans.
    pub fn num_spans(&self) -> usize {
        self.spans.iter().map(Vec::len).sum()
    }
}

/// Order-sensitive Fx-style hash of a word slice, used to match posted
/// envelopes with their deliveries without widening the wire format.
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = words.len() as u64;
    for &w in words {
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_order_sensitive() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
        assert_ne!(hash_words(&[]), hash_words(&[0]));
        assert_eq!(hash_words(&[5, 6, 7]), hash_words(&[5, 6, 7]));
    }

    #[test]
    fn empty_trace_reports_empty() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.num_ranks(), 0);
    }
}

//! The dynamically buffered message queue and asynchronous sparse all-to-all
//! of paper §IV-A/§IV-B — the machinery behind DITRIC's linear memory
//! guarantee and the grid-indirection variants.
//!
//! A producer posts *envelopes* (a destination plus a word payload, e.g. a
//! vertex neighborhood `(v, A(v))`). Envelopes headed for the same first-hop
//! peer are appended to that peer's buffer `B_j`. When the total buffered
//! volume `B = Σ_j |B_j|` exceeds the threshold `δ`, all buffers are flushed,
//! each as one aggregated message (the simulator's stand-in for the paper's
//! double buffering: sends complete immediately here, and the recorded
//! high-water mark of buffered words is the memory bound the paper proves).
//! Setting `δ ∈ O(|E_i|)` keeps per-PE memory linear in the local input.
//!
//! Three regimes fall out of one knob:
//! * `delta: Some(0)` — flush after every post: **no aggregation**
//!   (the Fig. 2 baseline).
//! * `delta: Some(d)` — DITRIC's dynamic aggregation.
//! * `delta: None` — never auto-flush: **static aggregation** as in TriC,
//!   whose peak buffered volume is the total outgoing volume (superlinear —
//!   this is what the paper identifies as TriC's memory blow-up).
//!
//! With [`Routing::Grid`], envelopes travel via the proxy of §IV-B and are
//! re-aggregated there (relay records pass through the proxy's own buffers),
//! cutting the peer count to O(√p).
//!
//! **Termination.** Real MPI needs a nonblocking-consensus (NBX) protocol to
//! detect that no messages are in flight. The simulator uses shared
//! expected/delivered counters instead, but charges each exchange the
//! equivalent of one p-word all-reduce so modeled times do not benefit from
//! the shortcut.

use std::sync::atomic::Ordering;

use crate::cost::ceil_log2;
use crate::grid::Grid;
use crate::runtime::Ctx;
use crate::trace::{hash_words, SpanKind, TraceEvent};

/// Envelope routing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Send every envelope straight to its destination.
    #[default]
    Direct,
    /// Two-hop grid indirection via the proxy PE (§IV-B).
    Grid,
}

/// Configuration of a [`MessageQueue`].
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Flush threshold δ in buffered words; `None` = only flush on
    /// [`MessageQueue::finish`] (static aggregation).
    pub delta: Option<usize>,
    /// Routing discipline.
    pub routing: Routing,
}

impl QueueConfig {
    /// Dynamic aggregation with direct routing (DITRIC's default).
    pub fn dynamic(delta: usize) -> Self {
        QueueConfig {
            delta: Some(delta),
            routing: Routing::Direct,
        }
    }

    /// No aggregation: every envelope is its own message.
    pub fn unaggregated() -> Self {
        QueueConfig {
            delta: Some(0),
            routing: Routing::Direct,
        }
    }

    /// Static aggregation (TriC-style single batch).
    pub fn static_aggregation() -> Self {
        QueueConfig {
            delta: None,
            routing: Routing::Direct,
        }
    }
}

/// A received envelope, handed to the sink callback.
#[derive(Debug, Clone, Copy)]
pub struct Envelope<'a> {
    /// Payload words.
    pub payload: &'a [u64],
}

/// Words of framing per buffered envelope: `[final_dest, payload_len]`.
/// Public so the conformance linter can reconstruct record sizes.
pub const HEADER_WORDS: u64 = 2;

/// A protocol violation to inject into a [`MessageQueue`], for validating
/// the conformance linter by mutation (`fault-injection` cargo feature;
/// never compiled into normal builds).
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Silently drop the `index`-th envelope posted on this PE: the post is
    /// still recorded in the trace, but the envelope never enters a buffer
    /// (and the destination's expected-counter is not incremented, so the
    /// exchange terminates and the *linter*, not a hang, reports the loss).
    DropEnvelope {
        /// Zero-based index among this PE's posts.
        index: u64,
    },
    /// Skip the first δ-threshold flush, letting the buffered volume
    /// overshoot the §IV-A memory bound.
    SkipFlushOnce,
}

/// The per-PE buffered message queue. One sparse exchange at a time per run;
/// all PEs must eventually call [`MessageQueue::finish`] (it is collective).
pub struct MessageQueue {
    cfg: QueueConfig,
    grid: Grid,
    rank: usize,
    p: usize,
    /// Per-first-hop-peer buffers.
    buffers: Vec<Vec<u64>>,
    buffered_words: u64,
    delivered: u64,
    finishing: bool,
    #[cfg(feature = "fault-injection")]
    posts_seen: u64,
    #[cfg(feature = "fault-injection")]
    drop_at: Option<u64>,
    #[cfg(feature = "fault-injection")]
    skip_flush_pending: bool,
}

impl MessageQueue {
    /// Creates the queue for this PE.
    pub fn new(ctx: &mut Ctx, cfg: QueueConfig) -> Self {
        let p = ctx.num_ranks();
        ctx.trace_with(|| TraceEvent::QueueConfigured {
            delta: cfg.delta.map(|d| d as u64),
            grid: cfg.routing == Routing::Grid,
        });
        MessageQueue {
            cfg,
            grid: Grid::new(p),
            rank: ctx.rank(),
            p,
            buffers: vec![Vec::new(); p],
            buffered_words: 0,
            delivered: 0,
            finishing: false,
            #[cfg(feature = "fault-injection")]
            posts_seen: 0,
            #[cfg(feature = "fault-injection")]
            drop_at: None,
            #[cfg(feature = "fault-injection")]
            skip_flush_pending: false,
        }
    }

    /// Arms an injected protocol violation (see [`Fault`]).
    #[cfg(feature = "fault-injection")]
    pub fn inject_fault(&mut self, fault: Fault) {
        match fault {
            Fault::DropEnvelope { index } => self.drop_at = Some(index),
            Fault::SkipFlushOnce => self.skip_flush_pending = true,
        }
    }

    /// Number of envelopes delivered to this PE so far in the current
    /// exchange.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Posts an envelope to `dest`. May trigger a flush of all buffers when
    /// the δ threshold is exceeded. Posting to self is a programming error.
    pub fn post(&mut self, ctx: &mut Ctx, dest: usize, payload: &[u64]) {
        assert!(dest != self.rank, "post to self");
        assert!(dest < self.p);
        let hop = match self.cfg.routing {
            Routing::Direct => dest,
            Routing::Grid => self.grid.proxy(self.rank, dest),
        };
        #[cfg(feature = "fault-injection")]
        {
            let idx = self.posts_seen;
            self.posts_seen += 1;
            if self.drop_at == Some(idx) {
                // The post is traced but the envelope vanishes; the
                // destination is never told to expect it, so the exchange
                // terminates and the conformance linter sees the loss.
                let buffered = self.buffered_words;
                ctx.trace_with(|| TraceEvent::Posted {
                    dest,
                    hop,
                    payload_words: payload.len() as u64,
                    payload_hash: hash_words(payload),
                    buffered_after: buffered,
                });
                return;
            }
        }
        ctx.shared.expected[dest].fetch_add(1, Ordering::SeqCst);
        self.push_record(ctx, hop, dest, payload);
        let buffered = self.buffered_words;
        ctx.trace_with(|| TraceEvent::Posted {
            dest,
            hop,
            payload_words: payload.len() as u64,
            payload_hash: hash_words(payload),
            buffered_after: buffered,
        });
        self.maybe_flush(ctx);
    }

    fn push_record(&mut self, ctx: &mut Ctx, hop: usize, dest: usize, payload: &[u64]) {
        let buf = &mut self.buffers[hop];
        buf.push(dest as u64);
        buf.push(payload.len() as u64);
        buf.extend_from_slice(payload);
        self.buffered_words += HEADER_WORDS + payload.len() as u64;
        ctx.note_buffered(self.buffered_words);
    }

    fn maybe_flush(&mut self, ctx: &mut Ctx) {
        match self.cfg.delta {
            Some(d) if self.buffered_words > d as u64 => {
                #[cfg(feature = "fault-injection")]
                if self.skip_flush_pending {
                    self.skip_flush_pending = false;
                    return;
                }
                self.flush_all(ctx);
            }
            _ => {}
        }
    }

    /// Flushes every nonempty buffer as one aggregated message per peer.
    pub fn flush_all(&mut self, ctx: &mut Ctx) {
        let active = self.buffered_words > 0;
        if active {
            ctx.span_begin(SpanKind::Flush, "flush");
        }
        for peer in 0..self.p {
            if !self.buffers[peer].is_empty() {
                let buf = std::mem::take(&mut self.buffers[peer]);
                let words = buf.len() as u64;
                ctx.trace_with(|| TraceEvent::Flushed { peer, words });
                ctx.send_raw(peer, buf);
            }
        }
        if active {
            ctx.span_end();
        }
        self.buffered_words = 0;
        ctx.note_buffered(0);
    }

    /// Receives and processes at most one incoming aggregated message.
    /// Envelopes addressed here are passed to `sink`; relay records are
    /// forwarded (re-aggregated through this PE's buffers, or immediately
    /// when finishing). Returns whether a message was processed.
    pub fn poll<F>(&mut self, ctx: &mut Ctx, sink: &mut F) -> bool
    where
        F: FnMut(&mut Ctx, Envelope<'_>),
    {
        let Some(msg) = ctx.try_recv_raw() else {
            return false;
        };
        let words = msg.words;
        let mut i = 0usize;
        let mut relayed = false;
        while i < words.len() {
            let dest = words[i] as usize;
            let len = words[i + 1] as usize;
            let payload = &words[i + 2..i + 2 + len];
            if dest == self.rank {
                self.delivered += 1;
                ctx.report_delivered(self.delivered);
                ctx.trace_with(|| TraceEvent::Delivered {
                    payload_words: payload.len() as u64,
                    payload_hash: hash_words(payload),
                });
                sink(ctx, Envelope { payload });
            } else {
                // Relay hop: forward toward the final destination (second
                // hop of grid routing is always direct).
                self.push_record(ctx, dest, dest, payload);
                let buffered = self.buffered_words;
                ctx.trace_with(|| TraceEvent::Relayed {
                    dest,
                    payload_words: payload.len() as u64,
                    payload_hash: hash_words(payload),
                    buffered_after: buffered,
                });
                relayed = true;
            }
            i += 2 + len;
        }
        if relayed {
            if self.finishing {
                self.flush_all(ctx);
            } else {
                self.maybe_flush(ctx);
            }
        }
        true
    }

    /// Declares this PE done producing, then polls (delivering and
    /// forwarding) until the exchange has globally terminated. Collective:
    /// every PE must call it exactly once per exchange. The queue is reset
    /// and reusable for a subsequent exchange afterwards.
    pub fn finish<F>(&mut self, ctx: &mut Ctx, sink: &mut F)
    where
        F: FnMut(&mut Ctx, Envelope<'_>),
    {
        self.finishing = true;
        ctx.enter_sparse_finish();
        self.flush_all(ctx);
        let shared = ctx.shared;
        shared.producers_done.fetch_add(1, Ordering::SeqCst);
        let mut marked = false;
        loop {
            let progressed = self.poll(ctx, sink);
            if !marked
                && shared.producers_done.load(Ordering::SeqCst) == self.p
                && self.delivered == shared.expected[self.rank].load(Ordering::SeqCst)
            {
                shared.satisfied.fetch_add(1, Ordering::SeqCst);
                marked = true;
            }
            if shared.satisfied.load(Ordering::SeqCst) == self.p {
                break;
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
        // Charge the NBX-equivalent termination consensus: one p-word
        // all-reduce.
        {
            let log = ceil_log2(self.p);
            ctx.add_termination_charge(log, log * self.p as u64);
        }
        // Reset shared exchange state for the next exchange.
        ctx.barrier_uncharged();
        if self.rank == 0 {
            for e in shared.expected.iter() {
                e.store(0, Ordering::SeqCst);
            }
            shared.producers_done.store(0, Ordering::SeqCst);
            shared.satisfied.store(0, Ordering::SeqCst);
        }
        ctx.barrier_uncharged();
        self.delivered = 0;
        ctx.report_delivered(0);
        self.finishing = false;
        ctx.exit_sparse_finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;

    fn exchange_all_pairs(p: usize, cfg: QueueConfig) -> crate::runtime::RunOutput<Vec<Vec<u64>>> {
        run(p, move |ctx| {
            let mut q = MessageQueue::new(ctx, cfg);
            let mut inbox: Vec<Vec<u64>> = Vec::new();
            let me = ctx.rank() as u64;
            for d in 0..p {
                if d != ctx.rank() {
                    q.post(ctx, d, &[me * 100 + d as u64, me]);
                }
                // interleave polling as the algorithms do
                q.poll(ctx, &mut |_c, env| inbox.push(env.payload.to_vec()));
            }
            q.finish(ctx, &mut |_c, env| inbox.push(env.payload.to_vec()));
            inbox.sort();
            inbox
        })
    }

    fn check_all_pairs(p: usize, out: &crate::runtime::RunOutput<Vec<Vec<u64>>>) {
        for (me, inbox) in out.results.iter().enumerate() {
            let mut expect: Vec<Vec<u64>> = (0..p)
                .filter(|&s| s != me)
                .map(|s| vec![(s * 100 + me) as u64, s as u64])
                .collect();
            expect.sort();
            assert_eq!(inbox, &expect, "rank {me} (p={p})");
        }
    }

    #[test]
    fn direct_unaggregated_delivers_everything() {
        for p in [2usize, 3, 5, 8] {
            let out = exchange_all_pairs(p, QueueConfig::unaggregated());
            check_all_pairs(p, &out);
            // one message per envelope
            assert_eq!(out.stats.total_messages(), (p * (p - 1)) as u64);
        }
    }

    #[test]
    fn dynamic_aggregation_delivers_everything_with_fewer_messages() {
        let p = 4;
        let rounds = 10u64;
        let mk = |cfg: QueueConfig| {
            run(p, move |ctx| {
                let mut q = MessageQueue::new(ctx, cfg);
                let mut sum = 0u64;
                for r in 0..rounds {
                    for d in 0..p {
                        if d != ctx.rank() {
                            q.post(ctx, d, &[r + 1]);
                        }
                    }
                }
                q.finish(ctx, &mut |_c, env| sum += env.payload[0]);
                sum
            })
        };
        let agg = mk(QueueConfig::dynamic(1 << 20));
        let none = mk(QueueConfig::unaggregated());
        let expect: u64 = (p as u64 - 1) * (1..=rounds).sum::<u64>();
        assert!(agg.results.iter().all(|&s| s == expect));
        assert!(none.results.iter().all(|&s| s == expect));
        // aggregated: one message per (src,dst) pair; unaggregated: one per
        // envelope (rounds× more)
        assert_eq!(agg.stats.total_messages(), (p * (p - 1)) as u64);
        assert_eq!(none.stats.total_messages(), (p * (p - 1)) as u64 * rounds);
        // payload volume identical (headers included in both)
        assert_eq!(agg.stats.total_volume(), none.stats.total_volume());
    }

    #[test]
    fn static_aggregation_buffers_everything() {
        let p = 4;
        let out = exchange_all_pairs(p, QueueConfig::static_aggregation());
        check_all_pairs(p, &out);
        // exactly one message per (src, dest) pair
        assert_eq!(out.stats.total_messages(), (p * (p - 1)) as u64);
        // peak buffered = all 3 envelopes of 4 words
        assert_eq!(out.stats.max_peak_buffered(), 12);
    }

    #[test]
    fn grid_routing_delivers_everything() {
        for p in [2usize, 4, 7, 9, 12, 16] {
            let out = exchange_all_pairs(
                p,
                QueueConfig {
                    delta: Some(64),
                    routing: Routing::Grid,
                },
            );
            check_all_pairs(p, &out);
        }
    }

    #[test]
    fn grid_routing_reduces_peer_fanout() {
        // all-to-one hotspot: everyone sends many envelopes to rank 0
        let p = 16;
        let run_cfg = |routing| {
            run(p, move |ctx| {
                let mut q = MessageQueue::new(
                    ctx,
                    QueueConfig {
                        delta: Some(1 << 16),
                        routing,
                    },
                );
                let mut got = 0u64;
                if ctx.rank() != 0 {
                    for i in 0..32u64 {
                        q.post(ctx, 0, &[i]);
                    }
                }
                q.finish(ctx, &mut |_c, _e| got += 1);
                got
            })
        };
        let direct = run_cfg(Routing::Direct);
        let grid = run_cfg(Routing::Grid);
        assert_eq!(direct.results[0], 15 * 32);
        assert_eq!(grid.results[0], 15 * 32);
        // Deterministic fan-in property (§IV-B): directly, the hotspot hears
        // from all p−1 = 15 peers; under grid routing only from its own row
        // and column (senders there go direct, every proxy for (i,j)→(0,0)
        // lies in column 0), i.e. ≤ (cols−1)+(rows−1) = 6 peers for p = 16.
        let recv_peers_direct = direct.stats.phases[0].per_rank[0].recv_peers;
        let recv_peers_grid = grid.stats.phases[0].per_rank[0].recv_peers;
        assert_eq!(recv_peers_direct, 15);
        assert!(
            recv_peers_grid <= 6,
            "grid fan-in {recv_peers_grid} exceeds row+column bound"
        );
    }

    #[test]
    fn delta_bounds_peak_buffering() {
        let p = 4;
        let delta = 16usize;
        let out = run(p, move |ctx| {
            let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(delta));
            for round in 0..50u64 {
                for d in 0..p {
                    if d != ctx.rank() {
                        q.post(ctx, d, &[round, round, round]);
                    }
                }
            }
            q.finish(ctx, &mut |_c, _e| {});
        });
        // peak ≤ δ + one max record (header 2 + payload 3)
        assert!(out.stats.max_peak_buffered() <= delta as u64 + 5);
    }

    #[test]
    fn consecutive_exchanges_reuse_the_queue() {
        let p = 3;
        let out = run(p, move |ctx| {
            let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(8));
            let mut sums = Vec::new();
            for round in 1..=3u64 {
                let mut acc = 0u64;
                for d in 0..p {
                    if d != ctx.rank() {
                        q.post(ctx, d, &[round * 10]);
                    }
                }
                q.finish(ctx, &mut |_c, env| acc += env.payload[0]);
                sums.push(acc);
            }
            sums
        });
        for r in &out.results {
            assert_eq!(r, &vec![20, 40, 60]);
        }
    }

    #[test]
    fn empty_exchange_terminates() {
        let out = run(4, |ctx| {
            let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(8));
            let mut n = 0u64;
            q.finish(ctx, &mut |_c, _e| n += 1);
            n
        });
        assert!(out.results.iter().all(|&n| n == 0));
    }

    #[test]
    fn hotspot_volume_doubles_under_grid() {
        // grid indirection trades volume (2×) for fan-in (√p) — §IV-B.
        let p = 16;
        let mk = |routing| {
            run(p, move |ctx| {
                let mut q = MessageQueue::new(
                    ctx,
                    QueueConfig {
                        delta: Some(1 << 16),
                        routing,
                    },
                );
                if ctx.rank() != 0 {
                    q.post(ctx, 0, &[7, 7, 7, 7]);
                }
                q.finish(ctx, &mut |_c, _e| {});
            })
        };
        let direct = mk(Routing::Direct);
        let grid = mk(Routing::Grid);
        let dv = direct.stats.total_volume();
        let gv = grid.stats.total_volume();
        assert!(gv > dv, "grid should add relay volume: {gv} !> {dv}");
        assert!(gv <= 2 * dv, "at most double: {gv} > 2*{dv}");
    }
}

//! Grid-based indirect message delivery (paper §IV-B, Fig. 3).
//!
//! PEs are arranged row-major in a logical 2D grid with
//! `c = ⌊√p + ½⌋` columns (round to nearest). A message from `P_{i,j}` to
//! `P_{k,l}` first travels along the sender's row to the *proxy* `P_{i,l}`
//! (same row as the sender, same column as the destination), which forwards
//! it along the column to `P_{k,l}`. Combined with per-PE aggregation at the
//! proxy, every PE talks to O(√p) peers instead of up to `p`.
//!
//! If `p` is not rectangular the last row is ragged. When a sender sits in
//! the ragged last row and the destination column exceeds that row's length,
//! the logical proxy does not exist; the paper then *transposes* the last
//! row and appends it as a column on the right, i.e. the sender at
//! `(rows−1, j)` acts as if located at `(j, c)` and picks the proxy
//! `P_{j, l}` in row `j`. (This is only needed in that direction.)

/// The logical 2D arrangement of `p` PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    p: usize,
    cols: usize,
}

impl Grid {
    /// Builds the grid for `p` PEs with `⌊√p + ½⌋` columns.
    pub fn new(p: usize) -> Self {
        assert!(p > 0);
        let cols = ((p as f64).sqrt() + 0.5).floor() as usize;
        Self {
            p,
            cols: cols.max(1),
        }
    }

    /// Number of PEs.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (last row possibly ragged).
    pub fn rows(&self) -> usize {
        self.p.div_ceil(self.cols)
    }

    /// Row/column position of a rank.
    #[inline]
    pub fn pos(&self, rank: usize) -> (usize, usize) {
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at a position, if it exists.
    #[inline]
    pub fn id(&self, row: usize, col: usize) -> Option<usize> {
        let r = row * self.cols + col;
        (col < self.cols && r < self.p).then_some(r)
    }

    /// The proxy (first hop) for a message `from → to`. Returns `to` itself
    /// when no indirection is useful (same row or column, or degenerate
    /// ragged cases).
    pub fn proxy(&self, from: usize, to: usize) -> usize {
        debug_assert!(from < self.p && to < self.p);
        let (fi, fj) = self.pos(from);
        let (ti, tj) = self.pos(to);
        if fi == ti || fj == tj || from == to {
            // already share a row or column — go direct
            return to;
        }
        if let Some(pr) = self.id(fi, tj) {
            return pr;
        }
        // Sender in the ragged last row and the destination column does not
        // exist there: transpose the last row (sender acts as (fj, cols)) and
        // take the proxy in row fj.
        if let Some(pr) = self.id(fj, tj) {
            return pr;
        }
        // Degenerate fallback (tiny p): go direct.
        to
    }

    /// The full route `from → to` as the sequence of hops after `from`
    /// (either `[to]` or `[proxy, to]`).
    pub fn route(&self, from: usize, to: usize) -> Vec<usize> {
        let pr = self.proxy(from, to);
        if pr == to {
            vec![to]
        } else {
            vec![pr, to]
        }
    }

    /// The set of distinct first-hop peers of `from` (used to verify the
    /// O(√p) peer bound).
    pub fn first_hop_peers(&self, from: usize) -> Vec<usize> {
        let mut peers: Vec<usize> = (0..self.p)
            .filter(|&to| to != from)
            .map(|to| self.proxy(from, to))
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_shape() {
        let g = Grid::new(16);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 4);
        assert_eq!(g.pos(6), (1, 2));
        assert_eq!(g.id(1, 2), Some(6));
    }

    #[test]
    fn nearest_rounding_of_columns() {
        // p=8 → √8≈2.83 → ⌊2.83+0.5⌋ = 3 columns
        let g = Grid::new(8);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.rows(), 3); // rows 0,1 full; last row has 2
                                 // p=2 → cols 1
        assert_eq!(Grid::new(2).cols(), 1);
        assert_eq!(Grid::new(1).cols(), 1);
    }

    #[test]
    fn proxy_in_sender_row_dest_column() {
        let g = Grid::new(16);
        // from (0,0)=0 to (3,3)=15 → proxy (0,3)=3
        assert_eq!(g.proxy(0, 15), 3);
        // same row → direct
        assert_eq!(g.proxy(0, 3), 3);
        // same column → direct
        assert_eq!(g.proxy(0, 12), 12);
    }

    #[test]
    fn ragged_last_row_transposition() {
        // p=7, cols=3: rows [0,1,2],[3,4,5],[6]. Sender 6 = (2,0).
        let g = Grid::new(7);
        assert_eq!(g.pos(6), (2, 0));
        // 6 → 4=(1,1): proxy (2,1) does not exist; transpose: sender acts as
        // (0, 3) → row 0 → proxy (0,1)=1.
        assert_eq!(g.proxy(6, 4), 1);
        // 6 → 3=(1,0): same column, direct.
        assert_eq!(g.proxy(6, 3), 3);
    }

    #[test]
    fn routes_reach_destination_for_many_p() {
        for p in 1..=40 {
            let g = Grid::new(p);
            for from in 0..p {
                for to in 0..p {
                    if from == to {
                        continue;
                    }
                    let route = g.route(from, to);
                    assert_eq!(*route.last().unwrap(), to, "p={p} {from}->{to}");
                    assert!(route.len() <= 2);
                    // hops are valid ranks, no self-loops in the route
                    let mut prev = from;
                    for &h in &route {
                        assert!(h < p);
                        assert_ne!(h, prev, "p={p} {from}->{to} route {route:?}");
                        prev = h;
                    }
                }
            }
        }
    }

    #[test]
    fn peer_count_is_near_sqrt_p() {
        for p in [16usize, 64, 100, 144, 256] {
            let g = Grid::new(p);
            let c = g.cols();
            for from in 0..p {
                let peers = g.first_hop_peers(from).len();
                // row peers + column peers (+ small ragged slack)
                assert!(
                    peers <= 2 * c + 2,
                    "p={p} from={from}: {peers} peers > {}",
                    2 * c + 2
                );
            }
        }
    }

    #[test]
    fn second_hop_shares_column_with_dest() {
        for p in [7usize, 12, 16, 23, 64] {
            let g = Grid::new(p);
            for from in 0..p {
                for to in 0..p {
                    if from == to {
                        continue;
                    }
                    let pr = g.proxy(from, to);
                    if pr != to {
                        // forwarding hop must share the destination's column
                        assert_eq!(g.pos(pr).1, g.pos(to).1, "p={p} {from}->{to} via {pr}");
                    }
                }
            }
        }
    }
}

//! The distributed machine: `p` logical PEs running as threads, exchanging
//! messages through a pluggable transport (`tricount-net`), with every
//! communication action metered (see [`crate::stats`]).
//!
//! A [`run`] call plays the role of `mpirun`: it spawns one thread
//! per PE, hands each a [`Ctx`] (the communicator), runs the given rank
//! program, and assembles per-phase statistics. Collectives are executed
//! through shared memory but *charged* with the standard tree/butterfly cost
//! formulas, so modeled times match what a real MPI implementation of the
//! paper's algorithms would pay.
//!
//! All protocol code talks to the data plane through the
//! [`Endpoint`](tricount_net::Endpoint) trait; [`SimOptions::transport`]
//! selects the backend:
//!
//! * [`TransportKind::Sim`] (default) — the metered simulator data plane,
//!   the substrate of the determinism/conformance/model-checking
//!   harnesses;
//! * [`TransportKind::Threads`] — a real parallel backend (per-pair SPSC
//!   queues, spin barrier). The modeled meters keep running unchanged —
//!   counts and counters match the simulator — while the recorded per-phase
//!   **wall clock** ([`crate::PhaseStats::wall_per_rank`]) becomes honest
//!   parallel time instead of simulator overhead.
//!
//! Beyond the plain [`run`]/[`run_timed`] entry points, the runtime supports
//! the verification harness of the `tricount-verify` crate through
//! [`run_sim`] and [`run_guarded`]:
//!
//! * **trace recording** (`trace` cargo feature +
//!   [`SimOptions::record_trace`]) — every send, flush, delivery and
//!   collective entry/exit is logged per PE (see [`crate::trace`]);
//! * **schedule perturbation** ([`SimOptions::perturb_seed`]) — message
//!   delivery order and thread interleavings are permuted under a seeded
//!   RNG, so schedule-dependent results can be flushed out;
//! * **deadlock guarding** ([`run_guarded`]) — a watchdog observes per-PE
//!   progress heartbeats and, instead of hanging, returns a
//!   [`DeadlockReport`] dumping each PE's state (buffered volume, pending
//!   collective, delivered/expected envelopes) plus a wait-for graph.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tricount_net::Endpoint;
pub use tricount_net::TransportKind;

use crate::cost::{ceil_log2, CostModel};
use crate::stats::{Counters, PhaseStats, RunStats};
use crate::trace::{CollKind, SpanKind, SpanRecord, SpanStamp, Trace, TraceEvent};

/// A raw point-to-point message: the sending rank and a word payload
/// (the transport's message type, re-exported under its historical name).
pub use tricount_net::Msg as RawMsg;

/// Operation codes published by each PE for the deadlock watchdog.
const OP_RUNNING: u64 = 0;
const OP_DONE: u64 = 100;

fn coll_op_code(kind: CollKind) -> u64 {
    match kind {
        CollKind::Barrier => 1,
        CollKind::Allgatherv => 2,
        CollKind::AllreduceSum => 3,
        CollKind::AllreduceMax => 4,
        CollKind::ExscanSum => 5,
        CollKind::Alltoallv => 6,
        CollKind::SparseFinish => 7,
    }
}

fn op_name(code: u64) -> &'static str {
    match code {
        OP_RUNNING => "running",
        1 => "barrier",
        2 => "allgatherv",
        3 => "allreduce_sum",
        4 => "allreduce_max",
        5 => "exscan_sum",
        6 => "alltoallv",
        7 => "sparse_finish",
        OP_DONE => "done",
        _ => "unknown",
    }
}

/// Control-plane state shared by all PEs of one run: meters, watchdog
/// signals and clock slots. The data plane (queues, barrier, collective
/// scratch) lives behind each PE's [`Endpoint`].
pub(crate) struct Shared {
    p: usize,
    /// Wall-clock origin of the run; span stamps and per-phase wall times
    /// are relative to this.
    epoch: Instant,
    /// Sparse-exchange termination: envelopes expected per destination.
    pub(crate) expected: Vec<AtomicU64>,
    /// Ranks that finished producing in the current sparse exchange.
    pub(crate) producers_done: AtomicUsize,
    /// Ranks whose inbox is fully drained in the current sparse exchange.
    pub(crate) satisfied: AtomicUsize,
    /// Clock deposit slots for timed runs (f64 bits).
    clock_slots: Vec<AtomicU64>,
    /// Per-PE progress heartbeat for the deadlock watchdog: bumped on every
    /// send, receive, delivery, collective step and metered work batch.
    heartbeat: Vec<AtomicU64>,
    /// Per-PE current operation ([`OP_RUNNING`], a collective code, or
    /// [`OP_DONE`]) for the watchdog's wait-for graph.
    op_state: Vec<AtomicU64>,
    /// Per-PE currently buffered queue words (watchdog state dump).
    buffered_now: Vec<AtomicU64>,
    /// Per-PE envelopes delivered in the current exchange (watchdog dump).
    delivered_now: Vec<AtomicU64>,
}

fn make_shared(p: usize) -> Shared {
    Shared {
        p,
        epoch: Instant::now(),
        expected: (0..p).map(|_| AtomicU64::new(0)).collect(),
        producers_done: AtomicUsize::new(0),
        satisfied: AtomicUsize::new(0),
        clock_slots: (0..p).map(|_| AtomicU64::new(0)).collect(),
        heartbeat: (0..p).map(|_| AtomicU64::new(0)).collect(),
        op_state: (0..p).map(|_| AtomicU64::new(OP_RUNNING)).collect(),
        buffered_now: (0..p).map(|_| AtomicU64::new(0)).collect(),
        delivered_now: (0..p).map(|_| AtomicU64::new(0)).collect(),
    }
}

/// Chooses which pending message a PE delivers next. The model checker's
/// hook into message delivery order: when set on [`SimOptions::delivery`],
/// every [`Ctx::try_recv_raw`] drains the inbox into a holding pen and asks
/// the chooser instead of taking the FIFO head.
///
/// `pending` lists the candidates as `(src, seq)` pairs in canonical order
/// (ascending by source rank, then sequence number), so the index space a
/// chooser sees is independent of the OS interleaving that filled the pen.
pub trait DeliveryPick: Send + Sync {
    /// Returns the index into `pending` of the message to deliver.
    fn pick(&self, rank: usize, pending: &[(usize, u64)]) -> usize;
}

/// Options of a run beyond the rank program itself.
#[derive(Clone, Default)]
pub struct SimOptions {
    /// Which data plane carries the run's communication. The default
    /// [`TransportKind::Sim`] keeps the metered simulator semantics;
    /// [`TransportKind::Threads`] executes the same protocol in real
    /// parallel over shared memory (identical counts and comm meters,
    /// honest wall clock).
    pub transport: TransportKind,
    /// Enable the overlap-aware simulated clock under this cost model.
    pub timing: Option<CostModel>,
    /// Record a [`Trace`] (requires the `trace` cargo feature; without it
    /// the returned trace is `None`).
    pub record_trace: bool,
    /// Perturb message delivery order and thread interleaving under this
    /// seed (`None` = the natural schedule).
    pub perturb_seed: Option<u64>,
    /// Externally controlled message delivery order (model checking);
    /// overrides `perturb_seed` for delivery decisions when set.
    pub delivery: Option<Arc<dyn DeliveryPick>>,
    /// Wall-clock profile the transport (threads backend only): per-PE
    /// event rings and contention meters, drained into
    /// [`SimOutput::wall`] and summarised on [`RunStats::contention`].
    /// Strictly observational — the modeled meters are bit-identical with
    /// this on or off. No effect on the sim backend.
    pub wall_profile: bool,
    /// Per-PE event-ring capacity for `wall_profile` runs; 0 selects the
    /// backend default. Overflow degrades to a counted drop.
    pub wall_ring_capacity: usize,
}

impl std::fmt::Debug for SimOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimOptions")
            .field("transport", &self.transport)
            .field("timing", &self.timing)
            .field("record_trace", &self.record_trace)
            .field("perturb_seed", &self.perturb_seed)
            .field("delivery", &self.delivery.as_ref().map(|_| "<hook>"))
            .field("wall_profile", &self.wall_profile)
            .field("wall_ring_capacity", &self.wall_ring_capacity)
            .finish()
    }
}

impl SimOptions {
    /// Options with trace recording enabled.
    pub fn traced() -> Self {
        SimOptions {
            record_trace: true,
            ..SimOptions::default()
        }
    }

    /// Options with schedule perturbation under `seed`.
    pub fn perturbed(seed: u64) -> Self {
        SimOptions {
            perturb_seed: Some(seed),
            ..SimOptions::default()
        }
    }

    /// Options running on the given transport backend.
    pub fn on(transport: TransportKind) -> Self {
        SimOptions {
            transport,
            ..SimOptions::default()
        }
    }

    /// Options for a wall-profiled threads run.
    pub fn wall_profiled() -> Self {
        SimOptions {
            transport: TransportKind::Threads,
            wall_profile: true,
            ..SimOptions::default()
        }
    }
}

/// SplitMix64 step — the perturbation RNG.
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-PE communicator handle. One per rank thread; owns that rank's
/// inbox and counters.
pub struct Ctx<'s> {
    rank: usize,
    pub(crate) shared: &'s Shared,
    /// This rank's handle on the data plane (sim or threads backend).
    endpoint: Box<dyn Endpoint>,
    counters: Counters,
    phases: Vec<PhaseRecord>,
    sent_peer_seen: Vec<bool>,
    recv_peer_seen: Vec<bool>,
    /// Cost model of a timed run (None = untimed; clock stays 0).
    timing: Option<CostModel>,
    clock: f64,
    /// Undelivered messages pulled off the channel under perturbation or
    /// external delivery control.
    pending: Vec<RawMsg>,
    /// Perturbation RNG state (unused when `perturb` is false).
    rng_state: u64,
    perturb: bool,
    /// Externally controlled delivery order (model checking).
    delivery: Option<Arc<dyn DeliveryPick>>,
    /// Next outgoing sequence number per destination rank.
    send_seq: Vec<u64>,
    /// Whether trace events are recorded for this run.
    tracing: bool,
    trace_buf: Vec<TraceEvent>,
    /// Completed spans of this PE (recorded when a span ends).
    span_buf: Vec<SpanRecord>,
    /// Open spans, innermost last.
    span_stack: Vec<(SpanKind, String, SpanStamp)>,
    /// Stamp at which the current phase began (previous phase end).
    phase_mark: SpanStamp,
}

struct PhaseRecord {
    name: String,
    counters: Counters,
    /// Wall clock at phase end, nanoseconds since the run's epoch.
    wall_nanos: u64,
}

impl<'s> Ctx<'s> {
    /// This PE's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs `p`.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.shared.p
    }

    /// Which transport backend carries this run's communication.
    #[inline]
    pub fn transport(&self) -> TransportKind {
        self.endpoint.kind()
    }

    /// Read access to the running counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Records a trace event, constructed lazily so untraced runs pay
    /// nothing beyond a branch (and nothing at all without the `trace`
    /// feature).
    #[inline]
    pub(crate) fn trace_with(&mut self, make: impl FnOnce() -> TraceEvent) {
        #[cfg(feature = "trace")]
        if self.tracing {
            self.trace_buf.push(make());
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = make;
            let _ = self.tracing;
        }
    }

    /// A causal stamp at the current instant: this PE's simulated clock
    /// plus wall time since the run's epoch.
    #[inline]
    fn now_stamp(&self) -> SpanStamp {
        SpanStamp {
            sim: self.clock,
            wall_nanos: self.shared.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Opens a span. Gated on `self.tracing` (always false without the
    /// `trace` feature), so untraced runs pay one predictable branch and
    /// never touch the wall clock — the same non-perturbation discipline
    /// as [`Ctx::trace_with`].
    #[inline]
    pub(crate) fn span_begin(&mut self, kind: SpanKind, label: &str) {
        if self.tracing {
            let at = self.now_stamp();
            self.span_stack.push((kind, label.to_string(), at));
        }
    }

    /// Closes the innermost open span and records it.
    #[inline]
    pub(crate) fn span_end(&mut self) {
        if self.tracing {
            if let Some((kind, label, begin)) = self.span_stack.pop() {
                let end = self.now_stamp();
                self.span_buf.push(SpanRecord {
                    kind,
                    label,
                    begin,
                    end,
                });
            }
        }
    }

    /// Runs `f` under a caller-named [`SpanKind::Task`] span. In traced
    /// runs the section appears in [`Trace::spans`] with causal begin/end
    /// stamps; otherwise this is just a call to `f`.
    pub fn with_span<R>(&mut self, label: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.span_begin(SpanKind::Task, label);
        let out = f(self);
        self.span_end();
        out
    }

    /// Bumps this PE's progress heartbeat (watchdog liveness signal).
    #[inline]
    pub(crate) fn beat(&self) {
        self.shared.heartbeat[self.rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the operation this PE is currently blocked in.
    #[inline]
    fn set_op(&self, code: u64) {
        self.shared.op_state[self.rank].store(code, Ordering::Relaxed);
    }

    /// Marks collective entry: op state, heartbeat, trace event, span.
    fn enter_coll(&mut self, kind: CollKind) {
        self.set_op(coll_op_code(kind));
        self.beat();
        self.trace_with(|| TraceEvent::CollEnter { kind });
        self.span_begin(SpanKind::Collective(kind), kind.name());
    }

    /// Marks collective exit.
    fn exit_coll(&mut self, kind: CollKind) {
        self.span_end();
        self.trace_with(|| TraceEvent::CollExit { kind });
        self.set_op(OP_RUNNING);
    }

    /// Marks entry/exit of the sparse-exchange termination (used by
    /// [`crate::MessageQueue::finish`]).
    pub(crate) fn enter_sparse_finish(&mut self) {
        self.enter_coll(CollKind::SparseFinish);
    }

    /// See [`Ctx::enter_sparse_finish`].
    pub(crate) fn exit_sparse_finish(&mut self) {
        self.exit_coll(CollKind::SparseFinish);
    }

    /// Publishes the envelopes delivered so far in the current exchange
    /// (watchdog state dump; called by the message queue).
    #[inline]
    pub(crate) fn report_delivered(&self, delivered: u64) {
        self.shared.delivered_now[self.rank].store(delivered, Ordering::Relaxed);
    }

    /// A perturbation RNG draw (only meaningful under perturbed runs).
    #[inline]
    fn next_rand(&mut self) -> u64 {
        splitmix(&mut self.rng_state)
    }

    /// Under perturbation, randomly yields the thread to shake up the
    /// interleaving of rank threads.
    #[inline]
    fn jitter(&mut self) {
        if self.perturb && self.next_rand() & 7 == 0 {
            std::thread::yield_now();
        }
    }

    /// Meters `ops` candidate comparisons of local work.
    #[inline]
    pub fn add_work(&mut self, ops: u64) {
        self.beat();
        self.counters.work_ops += ops;
        if let Some(cost) = self.timing {
            self.clock += cost.t_op * ops as f64;
            self.counters.sim_clock = self.clock;
        }
    }

    /// Advances the simulated clock by a collective's analytic cost and
    /// records the charge (no-op on the clock in untimed runs).
    fn charge_collective(&mut self, alpha_units: u64, word_units: u64) {
        self.counters.coll_alpha_units += alpha_units;
        self.counters.coll_word_units += word_units;
        if let Some(cost) = self.timing {
            self.clock += cost.alpha * alpha_units as f64 + cost.beta * word_units as f64;
            self.counters.sim_clock = self.clock;
        }
    }

    /// Synchronises simulated clocks to the global maximum (used at
    /// barriers and collectives of timed runs; no-op otherwise).
    pub(crate) fn sync_clocks(&mut self) {
        if self.timing.is_none() {
            return;
        }
        self.shared.clock_slots[self.rank].store(self.clock.to_bits(), Ordering::SeqCst);
        self.barrier_uncharged();
        let max = self
            .shared
            .clock_slots
            .iter()
            .map(|s| f64::from_bits(s.load(Ordering::SeqCst)))
            .fold(0.0, f64::max);
        self.barrier_uncharged();
        self.clock = max;
        self.counters.sim_clock = self.clock;
    }

    /// Records a buffer-occupancy level (called by the message queue): the
    /// high-water mark feeds the §IV-A memory accounting, the current level
    /// feeds the deadlock watchdog's state dump.
    #[inline]
    pub fn note_buffered(&mut self, words: u64) {
        self.shared.buffered_now[self.rank].store(words, Ordering::Relaxed);
        if words > self.counters.peak_buffered_words {
            self.counters.peak_buffered_words = words;
        }
    }

    /// Charges the modeled cost of the sparse-exchange termination protocol
    /// (used by the message queue; see `crate::queue`). In timed runs this
    /// also synchronises clocks — termination is a consensus.
    pub(crate) fn add_termination_charge(&mut self, alpha_units: u64, word_units: u64) {
        self.sync_clocks();
        self.charge_collective(alpha_units, word_units);
    }

    /// Sends one point-to-point message. Counted as one message of
    /// `words.len()` machine words.
    pub fn send_raw(&mut self, to: usize, words: Vec<u64>) {
        debug_assert!(
            to < self.shared.p && to != self.rank,
            "bad destination {to}"
        );
        self.beat();
        self.jitter();
        self.counters.sent_messages += 1;
        self.counters.sent_words += words.len() as u64;
        if !self.sent_peer_seen[to] {
            self.sent_peer_seen[to] = true;
            self.counters.sent_peers += 1;
        }
        let mut arrival = 0.0;
        if let Some(cost) = self.timing {
            // sender is occupied for the startup latency; the payload then
            // arrives after the transmission time
            self.clock += cost.alpha;
            arrival = self.clock + cost.beta * words.len() as f64;
            self.counters.sim_clock = self.clock;
        }
        let seq = self.send_seq[to];
        self.send_seq[to] += 1;
        self.trace_with(|| TraceEvent::Sent {
            to,
            words: words.len() as u64,
            seq,
        });
        self.endpoint.send(
            to,
            RawMsg {
                src: self.rank,
                seq,
                words,
                arrival,
            },
        );
    }

    /// Non-blocking receive of one message. Under perturbed runs the
    /// transport is drained into a holding pen and a seeded-random pending
    /// message is delivered instead of the FIFO head; under an external
    /// [`DeliveryPick`] hook ([`SimOptions::delivery`]) the chooser decides.
    pub fn try_recv_raw(&mut self) -> Option<RawMsg> {
        let m = if let Some(pick) = self.delivery.clone() {
            while let Some(m) = self.endpoint.try_recv() {
                self.pending.push(m);
            }
            if self.pending.is_empty() {
                None
            } else {
                // Canonical candidate order so the chooser's index space is
                // independent of the interleaving that filled the pen.
                let mut order: Vec<usize> = (0..self.pending.len()).collect();
                order.sort_by_key(|&i| (self.pending[i].src, self.pending[i].seq));
                let cands: Vec<(usize, u64)> = order
                    .iter()
                    .map(|&i| (self.pending[i].src, self.pending[i].seq))
                    .collect();
                let k = pick.pick(self.rank, &cands);
                assert!(k < order.len(), "DeliveryPick index {k} out of range");
                Some(self.pending.swap_remove(order[k]))
            }
        } else if self.perturb {
            while let Some(m) = self.endpoint.try_recv() {
                self.pending.push(m);
            }
            if self.pending.is_empty() {
                None
            } else {
                let i = (self.next_rand() % self.pending.len() as u64) as usize;
                Some(self.pending.swap_remove(i))
            }
        } else {
            self.endpoint.try_recv()
        };
        let m = m?;
        self.beat();
        self.jitter();
        self.counters.recv_messages += 1;
        self.counters.recv_words += m.words.len() as u64;
        if !self.recv_peer_seen[m.src] {
            self.recv_peer_seen[m.src] = true;
            self.counters.recv_peers += 1;
        }
        if self.timing.is_some() {
            self.clock = self.clock.max(m.arrival);
            self.counters.sim_clock = self.clock;
        }
        self.trace_with(|| TraceEvent::Received {
            from: m.src,
            words: m.words.len() as u64,
            seq: m.seq,
        });
        Some(m)
    }

    /// Barrier without cost charge (internal synchronisation of the
    /// runtime itself). Publishes "barrier" as the blocked-in op while
    /// waiting unless an enclosing collective already claimed the slot, so
    /// a PE stuck in a bare sync (e.g. the end-of-run phase barrier) is
    /// diagnosable by the deadlock watchdog.
    pub(crate) fn barrier_uncharged(&self) {
        self.beat();
        let st = &self.shared.op_state[self.rank];
        let prev = st.load(Ordering::Relaxed);
        if prev == OP_RUNNING {
            st.store(coll_op_code(CollKind::Barrier), Ordering::Relaxed);
        }
        self.endpoint.barrier();
        st.store(prev, Ordering::Relaxed);
    }

    /// Synchronises all PEs; charged `α⌈log₂ p⌉`.
    pub fn barrier(&mut self) {
        self.enter_coll(CollKind::Barrier);
        self.sync_clocks();
        self.charge_collective(ceil_log2(self.shared.p), 0);
        self.barrier_uncharged();
        self.exit_coll(CollKind::Barrier);
    }

    /// All-gather of variable-length word vectors; returns every rank's
    /// contribution indexed by rank. Charged `α⌈log₂p⌉ + β·(total words)`.
    pub fn allgatherv(&mut self, data: Vec<u64>) -> Vec<Vec<u64>> {
        self.enter_coll(CollKind::Allgatherv);
        let out = self.allgatherv_uncharged(data);
        let total: u64 = out.iter().map(|v| v.len() as u64).sum();
        self.sync_clocks();
        self.charge_collective(ceil_log2(self.shared.p), total);
        self.exit_coll(CollKind::Allgatherv);
        out
    }

    /// Element-wise sum all-reduce of equal-length vectors. Charged
    /// `(α + β·len)·⌈log₂ p⌉`.
    pub fn allreduce_sum(&mut self, data: &[u64]) -> Vec<u64> {
        self.enter_coll(CollKind::AllreduceSum);
        let parts = self.allgatherv_uncharged(data.to_vec());
        let len = data.len();
        let mut acc = vec![0u64; len];
        for part in &parts {
            assert_eq!(
                part.len(),
                len,
                "allreduce contributions must agree in length"
            );
            for (a, &x) in acc.iter_mut().zip(part) {
                *a += x;
            }
        }
        let log = ceil_log2(self.shared.p);
        self.sync_clocks();
        self.charge_collective(log, log * len as u64);
        self.exit_coll(CollKind::AllreduceSum);
        acc
    }

    /// Scalar max all-reduce. Charged like a 1-word all-reduce.
    pub fn allreduce_max(&mut self, x: u64) -> u64 {
        self.enter_coll(CollKind::AllreduceMax);
        let parts = self.allgatherv_uncharged(vec![x]);
        let log = ceil_log2(self.shared.p);
        self.sync_clocks();
        self.charge_collective(log, log);
        self.exit_coll(CollKind::AllreduceMax);
        parts.iter().map(|v| v[0]).max().unwrap_or(0)
    }

    /// Exclusive prefix sum over ranks of a scalar. Charged like a 1-word
    /// all-reduce.
    pub fn exscan_sum(&mut self, x: u64) -> u64 {
        self.enter_coll(CollKind::ExscanSum);
        let parts = self.allgatherv_uncharged(vec![x]);
        let log = ceil_log2(self.shared.p);
        self.sync_clocks();
        self.charge_collective(log, log);
        self.exit_coll(CollKind::ExscanSum);
        parts[..self.rank].iter().map(|v| v[0]).sum()
    }

    fn allgatherv_uncharged(&mut self, data: Vec<u64>) -> Vec<Vec<u64>> {
        self.beat();
        self.endpoint.exchange(data)
    }

    /// Dense irregular all-to-all (`MPI_Alltoallv`): `outgoing[d]` is sent to
    /// rank `d`; returns what every rank sent here, indexed by source rank.
    /// Counted as the constituent point-to-point messages (nonempty, non-self
    /// vectors only), plus the receive-counts pre-exchange a real
    /// `MPI_Alltoallv` needs (an all-to-all of `p` counts, charged as
    /// `α⌈log₂p⌉ + β·p`) — this is the dense overhead a sparse exchange
    /// avoids (§IV-D).
    pub fn alltoallv(&mut self, outgoing: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(outgoing.len(), self.shared.p);
        self.enter_coll(CollKind::Alltoallv);
        self.sync_clocks();
        self.charge_collective(ceil_log2(self.shared.p), self.shared.p as u64);
        let mut sent_words_here = 0u64;
        let mut sent_msgs_here = 0u64;
        for (d, v) in outgoing.iter().enumerate() {
            if d != self.rank && !v.is_empty() {
                self.counters.sent_messages += 1;
                self.counters.sent_words += v.len() as u64;
                sent_msgs_here += 1;
                sent_words_here += v.len() as u64;
                let words = v.len() as u64;
                self.trace_with(|| TraceEvent::Sent {
                    to: d,
                    words,
                    seq: crate::trace::COLL_CONSTITUENT_SEQ,
                });
            }
        }
        self.beat();
        let incoming = self.endpoint.exchange_matrix(outgoing);
        let mut recv_words_here = 0u64;
        let mut recv_msgs_here = 0u64;
        for (srcr, v) in incoming.iter().enumerate() {
            if srcr != self.rank && !v.is_empty() {
                self.counters.recv_messages += 1;
                self.counters.recv_words += v.len() as u64;
                recv_msgs_here += 1;
                recv_words_here += v.len() as u64;
                let words = v.len() as u64;
                self.trace_with(|| TraceEvent::Received {
                    from: srcr,
                    words,
                    seq: crate::trace::COLL_CONSTITUENT_SEQ,
                });
            }
        }
        if let Some(cost) = self.timing {
            // single-ported: pay the max direction
            let msgs = sent_msgs_here.max(recv_msgs_here) as f64;
            let words = sent_words_here.max(recv_words_here) as f64;
            self.clock += cost.alpha * msgs + cost.beta * words;
            self.counters.sim_clock = self.clock;
        }
        // participants leave the exchange together
        self.sync_clocks();
        self.exit_coll(CollKind::Alltoallv);
        incoming
    }

    /// Ends the current phase: synchronises all PEs and records the counter
    /// deltas under `name`. All PEs must call this with the same sequence of
    /// phase names.
    pub fn end_phase(&mut self, name: &str) {
        self.counters.coll_alpha_units += ceil_log2(self.shared.p);
        self.end_phase_uncharged(name);
    }

    fn end_phase_uncharged(&mut self, name: &str) {
        self.sync_clocks();
        self.barrier_uncharged();
        self.trace_with(|| TraceEvent::PhaseEnded {
            name: name.to_string(),
        });
        if self.tracing {
            let end = self.now_stamp();
            self.span_buf.push(SpanRecord {
                kind: SpanKind::Phase,
                label: name.to_string(),
                begin: self.phase_mark,
                end,
            });
            self.phase_mark = end;
        }
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            counters: self.counters,
            wall_nanos: self.shared.epoch.elapsed().as_nanos() as u64,
        });
    }
}

/// The result of a simulated run: the per-rank return values and the full
/// statistics record.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values (indexed by rank).
    pub results: Vec<R>,
    /// Per-phase, per-rank counters.
    pub stats: RunStats,
}

/// A [`RunOutput`] plus the recorded [`Trace`] (when requested and the
/// `trace` feature is compiled in).
#[derive(Debug)]
pub struct SimOutput<R> {
    /// The run's results and statistics.
    pub output: RunOutput<R>,
    /// The recorded trace, if any.
    pub trace: Option<Trace>,
    /// The drained wall-clock profile of a [`SimOptions::wall_profile`]
    /// threads run, if any.
    pub wall: Option<tricount_net::WallProfile>,
}

/// What one rank thread hands back: result, phase records, trace events,
/// recorded spans.
type RankOutcome<R> = (R, Vec<PhaseRecord>, Vec<TraceEvent>, Vec<SpanRecord>);

fn drive_rank<R, F>(
    rank: usize,
    shared: &Shared,
    endpoint: Box<dyn Endpoint>,
    opts: &SimOptions,
    f: &F,
) -> RankOutcome<R>
where
    F: Fn(&mut Ctx) -> R,
{
    let p = shared.p;
    let perturb = opts.perturb_seed.is_some();
    let mut rng_state = opts
        .perturb_seed
        .unwrap_or(0)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03_u64.wrapping_mul(rank as u64 + 1));
    if perturb {
        // decorrelate the per-rank streams
        splitmix(&mut rng_state);
    }
    let mut ctx = Ctx {
        rank,
        shared,
        endpoint,
        counters: Counters::default(),
        phases: Vec::new(),
        sent_peer_seen: vec![false; p],
        recv_peer_seen: vec![false; p],
        timing: opts.timing,
        clock: 0.0,
        pending: Vec::new(),
        rng_state,
        perturb,
        delivery: opts.delivery.clone(),
        send_seq: vec![0; p],
        tracing: cfg!(feature = "trace") && opts.record_trace,
        trace_buf: Vec::new(),
        span_buf: Vec::new(),
        span_stack: Vec::new(),
        phase_mark: SpanStamp::default(),
    };
    let result = f(&mut ctx);
    ctx.end_phase_uncharged("rest");
    ctx.set_op(OP_DONE);
    ctx.beat();
    (result, ctx.phases, ctx.trace_buf, ctx.span_buf)
}

/// Assembles per-rank outcomes into a [`SimOutput`]; all ranks must agree on
/// the phase sequence. `wall` is the drained wall profile of a profiled
/// threads run (every rank thread must already be joined).
fn assemble<R>(
    p: usize,
    outcomes: Vec<RankOutcome<R>>,
    want_trace: bool,
    wall: Option<tricount_net::WallProfile>,
) -> SimOutput<R> {
    let mut results = Vec::with_capacity(p);
    let mut per_rank_phases: Vec<Vec<PhaseRecord>> = Vec::with_capacity(p);
    let mut per_pe_trace: Vec<Vec<TraceEvent>> = Vec::with_capacity(p);
    let mut per_pe_spans: Vec<Vec<SpanRecord>> = Vec::with_capacity(p);
    for (r, ph, tr, sp) in outcomes {
        results.push(r);
        per_rank_phases.push(ph);
        per_pe_trace.push(tr);
        per_pe_spans.push(sp);
    }

    let names: Vec<String> = per_rank_phases[0]
        .iter()
        .map(|pr| pr.name.clone())
        .collect();
    for (r, phs) in per_rank_phases.iter().enumerate() {
        let theirs: Vec<&String> = phs.iter().map(|pr| &pr.name).collect();
        assert_eq!(
            theirs,
            names.iter().collect::<Vec<_>>(),
            "rank {r} recorded a different phase sequence"
        );
    }
    let mut phases = Vec::with_capacity(names.len());
    for (pi, name) in names.iter().enumerate() {
        let per_rank: Vec<Counters> = per_rank_phases
            .iter()
            .map(|phs| {
                let cur = phs[pi].counters;
                if pi == 0 {
                    cur
                } else {
                    cur.delta_since(&phs[pi - 1].counters)
                }
            })
            .collect();
        let wall_per_rank: Vec<f64> = per_rank_phases
            .iter()
            .map(|phs| {
                let prev = if pi == 0 { 0 } else { phs[pi - 1].wall_nanos };
                phs[pi].wall_nanos.saturating_sub(prev) as f64 / 1e9
            })
            .collect();
        phases.push(PhaseStats {
            name: name.clone(),
            per_rank,
            wall_per_rank,
        });
    }
    // Drop an empty trailing "rest" phase to keep reports clean. Peak and
    // peer fields are running values and do not indicate phase activity.
    let is_inactive = |c: &Counters| {
        c.sent_messages == 0
            && c.sent_words == 0
            && c.recv_messages == 0
            && c.recv_words == 0
            && c.work_ops == 0
            && c.coll_alpha_units == 0
            && c.coll_word_units == 0
    };
    if phases
        .last()
        .is_some_and(|ph| ph.name == "rest" && ph.per_rank.iter().all(is_inactive))
    {
        phases.pop();
    }

    let trace = (want_trace && cfg!(feature = "trace")).then_some(Trace {
        per_pe: per_pe_trace,
        spans: per_pe_spans,
    });
    let contention = wall.as_ref().map(|w| w.contention());
    SimOutput {
        output: RunOutput {
            results,
            stats: RunStats {
                p,
                phases,
                contention,
            },
        },
        trace,
        wall,
    }
}

/// Runs `f` as the rank program on `p` simulated PEs.
///
/// `f` is called once per rank with that rank's [`Ctx`]; any un-phased
/// trailing activity is recorded as a final `"rest"` phase.
pub fn run<R, F>(p: usize, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    run_sim(p, &SimOptions::default(), f).output
}

/// Like [`run`], but with the overlap-aware simulated clock enabled: every
/// PE carries a causal clock advanced by its local work (`t_op`), its send
/// overheads (`α`) and the arrival times of the messages it receives
/// (`send clock + α + β·ℓ`), synchronised at barriers/collectives. The
/// resulting [`RunStats::makespan`] captures communication/computation
/// overlap, which the per-phase [`RunStats::modeled_time`] upper bound
/// cannot.
pub fn run_timed<R, F>(p: usize, cost: CostModel, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    run_sim(
        p,
        &SimOptions {
            timing: Some(cost),
            ..SimOptions::default()
        },
        f,
    )
    .output
}

/// Runs `f` on `p` PEs under the given [`SimOptions`] (transport backend,
/// timing, trace recording, schedule perturbation).
pub fn run_sim<R, F>(p: usize, opts: &SimOptions, f: F) -> SimOutput<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    assert!(p > 0, "need at least one PE");
    let shared = make_shared(p);
    let (endpoints, collector) = if opts.wall_profile {
        tricount_net::endpoints_profiled(opts.transport, p, opts.wall_ring_capacity)
    } else {
        (tricount_net::endpoints(opts.transport, p), None)
    };
    let mut outcomes: Vec<RankOutcome<R>> = Vec::with_capacity(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, endpoint) in endpoints.into_iter().enumerate() {
            let shared = &shared;
            let f = &f;
            let opts = &*opts;
            handles.push(scope.spawn(move || drive_rank(rank, shared, endpoint, opts, f)));
        }
        // Join everything before re-raising a panic: unwinding out of the
        // scope with threads still running would panic a second time in the
        // scope's implicit join (process abort).
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(outcome) => outcomes.push(outcome),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    // Every rank thread is joined: the endpoints have dropped and each PE's
    // wall log (if profiling) has been deposited.
    let wall = collector.map(tricount_net::WallCollector::drain);
    assemble(p, outcomes, opts.record_trace, wall)
}

/// One PE's state in a [`DeadlockReport`].
#[derive(Debug, Clone)]
pub struct PeSnapshot {
    /// The PE's rank.
    pub rank: usize,
    /// Whether the rank program returned.
    pub done: bool,
    /// The operation the PE was last observed in ("running", a collective
    /// name, "sparse_finish", or "done").
    pub op: &'static str,
    /// Words currently buffered in the PE's message queue.
    pub buffered_words: u64,
    /// Envelopes delivered to this PE in the current sparse exchange.
    pub delivered: u64,
    /// Envelopes destined to this PE in the current sparse exchange.
    pub expected: u64,
    /// Total progress heartbeats observed for this PE.
    pub heartbeats: u64,
}

/// A deadlock diagnosis produced by [`run_guarded`] instead of hanging: the
/// machine made no progress (no heartbeat on any PE) for the guard timeout.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// How long the machine was observed without progress.
    pub stalled_for: Duration,
    /// Per-PE state at the moment of diagnosis.
    pub pes: Vec<PeSnapshot>,
    /// Wait-for edges `(waiter, waited_on)` derived from the op states:
    /// a PE blocked in a collective waits on every PE that has not entered
    /// the same collective (or already exited the program).
    pub wait_edges: Vec<(usize, usize)>,
    /// Work-stealing pool batches that were in flight at the moment of
    /// diagnosis: per batch, each worker's executed/steal counters (from
    /// [`tricount_par::probe::snapshot_live`]). Distinguishes "a rank is
    /// stuck inside its thread pool" from "the pool is idle and the rank is
    /// stuck in the protocol".
    pub pool_workers: Vec<Vec<tricount_par::WorkerStats>>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deadlock: no progress for {:?} on {} PEs",
            self.stalled_for,
            self.pes.len()
        )?;
        for pe in &self.pes {
            writeln!(
                f,
                "  PE {:>3}: op={:<13} done={:<5} buffered={} delivered={}/{} heartbeats={}",
                pe.rank,
                pe.op,
                pe.done,
                pe.buffered_words,
                pe.delivered,
                pe.expected,
                pe.heartbeats
            )?;
        }
        if !self.wait_edges.is_empty() {
            write!(f, "  wait-for:")?;
            for (a, b) in &self.wait_edges {
                write!(f, " {a}→{b}")?;
            }
            writeln!(f)?;
        }
        for (bi, batch) in self.pool_workers.iter().enumerate() {
            write!(f, "  pool batch {bi}:")?;
            for (w, ws) in batch.iter().enumerate() {
                write!(
                    f,
                    " w{w}[exec={} steals={}/{}]",
                    ws.executed, ws.steals_succeeded, ws.steals_attempted
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn snapshot(shared: &Shared, done: &[bool]) -> (Vec<PeSnapshot>, Vec<(usize, usize)>) {
    let p = shared.p;
    let ops: Vec<u64> = shared
        .op_state
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .collect();
    let pes: Vec<PeSnapshot> = (0..p)
        .map(|r| PeSnapshot {
            rank: r,
            done: done[r],
            op: op_name(ops[r]),
            buffered_words: shared.buffered_now[r].load(Ordering::Relaxed),
            delivered: shared.delivered_now[r].load(Ordering::Relaxed),
            expected: shared.expected[r].load(Ordering::Relaxed),
            heartbeats: shared.heartbeat[r].load(Ordering::Relaxed),
        })
        .collect();
    let mut wait_edges = Vec::new();
    for waiter in 0..p {
        let op = ops[waiter];
        if done[waiter] || op == OP_RUNNING || op == OP_DONE {
            continue;
        }
        for other in 0..p {
            if other != waiter && (ops[other] != op || done[other]) {
                wait_edges.push((waiter, other));
            }
        }
    }
    (pes, wait_edges)
}

/// Like [`run_sim`], but supervised by a deadlock watchdog: if no PE makes
/// progress for `timeout`, the run is abandoned and a [`DeadlockReport`]
/// dumping per-PE state is returned instead of hanging forever.
///
/// The rank program must be `'static` because stuck rank threads cannot be
/// joined — on a diagnosed deadlock they are leaked (acceptable in a test
/// harness; the owning process exits soon after). Pick `timeout` larger than
/// the longest stretch of purely local computation in the rank program:
/// local work metered through [`Ctx::add_work`] counts as progress, unmetered
/// busy loops do not.
pub fn run_guarded<R, F>(
    p: usize,
    opts: &SimOptions,
    timeout: Duration,
    f: F,
) -> Result<SimOutput<R>, Box<DeadlockReport>>
where
    R: Send + 'static,
    F: Fn(&mut Ctx) -> R + Send + Sync + 'static,
{
    assert!(p > 0, "need at least one PE");
    let shared = Arc::new(make_shared(p));
    let (endpoints, collector) = if opts.wall_profile {
        tricount_net::endpoints_profiled(opts.transport, p, opts.wall_ring_capacity)
    } else {
        (tricount_net::endpoints(opts.transport, p), None)
    };
    let f = Arc::new(f);
    let opts_copy = opts.clone();
    let (done_tx, done_rx) = mpsc::channel::<(usize, RankOutcome<R>)>();
    for (rank, endpoint) in endpoints.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let f = Arc::clone(&f);
        let done_tx = done_tx.clone();
        let opts_copy = opts_copy.clone();
        std::thread::spawn(move || {
            let outcome = drive_rank(rank, &shared, endpoint, &opts_copy, &*f);
            // the supervisor may have given up already; ignore send errors
            let _ = done_tx.send((rank, outcome));
        });
    }
    drop(done_tx);

    let poll = (timeout / 10).max(Duration::from_millis(2));
    let mut slots: Vec<Option<RankOutcome<R>>> = (0..p).map(|_| None).collect();
    let mut done = vec![false; p];
    let mut completed = 0usize;
    let mut last_beats: Vec<u64> = shared
        .heartbeat
        .iter()
        .map(|h| h.load(Ordering::Relaxed))
        .collect();
    let mut last_change = Instant::now();
    loop {
        match done_rx.recv_timeout(poll) {
            Ok((rank, outcome)) => {
                slots[rank] = Some(outcome);
                done[rank] = true;
                completed += 1;
                last_change = Instant::now();
                if completed == p {
                    // every slot is Some: `completed` counts distinct ranks.
                    // A rank's outcome is sent only after `drive_rank`
                    // returned, i.e. after its endpoint dropped and (if
                    // profiling) deposited its wall log.
                    let outcomes: Vec<RankOutcome<R>> = slots.into_iter().flatten().collect();
                    let wall = collector.map(tricount_net::WallCollector::drain);
                    return Ok(assemble(p, outcomes, opts.record_trace, wall));
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                panic!("rank thread panicked before completing");
            }
        }
        let beats: Vec<u64> = shared
            .heartbeat
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect();
        if beats != last_beats {
            last_beats = beats;
            last_change = Instant::now();
        } else if last_change.elapsed() >= timeout {
            let (pes, wait_edges) = snapshot(&shared, &done);
            return Err(Box::new(DeadlockReport {
                stalled_for: last_change.elapsed(),
                pes,
                wait_edges,
                pool_workers: tricount_par::probe::snapshot_live(),
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |ctx| {
            ctx.add_work(10);
            ctx.rank()
        });
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.stats.total_work(), 10);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send_raw(1, vec![1, 2, 3]);
                0u64
            } else {
                loop {
                    if let Some(m) = ctx.try_recv_raw() {
                        assert_eq!(m.src, 0);
                        return m.words.iter().sum();
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(out.results[1], 6);
        assert_eq!(out.stats.total_messages(), 1);
        assert_eq!(out.stats.total_volume(), 3);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run(4, |ctx| ctx.allreduce_sum(&[ctx.rank() as u64, 1])[0]);
        assert!(out.results.iter().all(|&x| x == 6));
        let out2 = run(4, |ctx| ctx.allreduce_sum(&[ctx.rank() as u64, 1])[1]);
        assert!(out2.results.iter().all(|&x| x == 4));
    }

    #[test]
    fn allreduce_max_and_exscan() {
        let out = run(4, |ctx| {
            let mx = ctx.allreduce_max(ctx.rank() as u64 * 10);
            let scan = ctx.exscan_sum(1);
            (mx, scan)
        });
        for (r, &(mx, scan)) in out.results.iter().enumerate() {
            assert_eq!(mx, 30);
            assert_eq!(scan, r as u64);
        }
    }

    #[test]
    fn allgatherv_collects_everything() {
        let out = run(3, |ctx| {
            let mine = vec![ctx.rank() as u64; ctx.rank() + 1];
            ctx.allgatherv(mine)
        });
        for res in &out.results {
            assert_eq!(res[0], vec![0]);
            assert_eq!(res[1], vec![1, 1]);
            assert_eq!(res[2], vec![2, 2, 2]);
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let p = 4;
        let out = run(p, |ctx| {
            let outgoing: Vec<Vec<u64>> =
                (0..p).map(|d| vec![(ctx.rank() * 10 + d) as u64]).collect();
            ctx.alltoallv(outgoing)
        });
        for (me, incoming) in out.results.iter().enumerate() {
            for (src, v) in incoming.iter().enumerate() {
                assert_eq!(v, &vec![(src * 10 + me) as u64]);
            }
        }
        // each rank sends p-1 real messages of 1 word
        assert_eq!(out.stats.total_messages(), (p * (p - 1)) as u64);
    }

    #[test]
    fn phases_split_counters() {
        let out = run(2, |ctx| {
            ctx.add_work(5);
            ctx.end_phase("a");
            ctx.add_work(7);
            ctx.end_phase("b");
        });
        assert_eq!(out.stats.phases.len(), 2);
        assert_eq!(out.stats.phases[0].total_work(), 10);
        assert_eq!(out.stats.phases[1].total_work(), 14);
        assert_eq!(
            out.stats.phase_time(
                "b",
                &CostModel {
                    alpha: 0.0,
                    beta: 0.0,
                    t_op: 1.0,
                }
            ),
            7.0
        );
    }

    #[test]
    fn mismatched_phases_panic() {
        let result = std::panic::catch_unwind(|| {
            run(2, |ctx| {
                if ctx.rank() == 0 {
                    ctx.end_phase("a");
                } else {
                    ctx.end_phase("z");
                }
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = run(1, |ctx| {
            let ar = ctx.allreduce_sum(&[7, 9]);
            let mx = ctx.allreduce_max(5);
            let sc = ctx.exscan_sum(3);
            let ag = ctx.allgatherv(vec![1, 2, 3]);
            let aa = ctx.alltoallv(vec![vec![4, 5]]);
            (ar, mx, sc, ag, aa)
        });
        let (ar, mx, sc, ag, aa) = &out.results[0];
        assert_eq!(ar, &vec![7, 9]);
        assert_eq!(*mx, 5);
        assert_eq!(*sc, 0);
        assert_eq!(ag, &vec![vec![1, 2, 3]]);
        assert_eq!(aa, &vec![vec![4, 5]]);
        // p = 1: no messages, no log-p latency charges
        assert_eq!(out.stats.total_messages(), 0);
    }

    #[test]
    fn empty_allgatherv_contributions() {
        let out = run(3, |ctx| {
            let data = if ctx.rank() == 1 { vec![9] } else { Vec::new() };
            ctx.allgatherv(data)
        });
        for res in &out.results {
            assert_eq!(res[0], Vec::<u64>::new());
            assert_eq!(res[1], vec![9]);
            assert_eq!(res[2], Vec::<u64>::new());
        }
    }

    #[test]
    fn alltoallv_charges_counts_preexchange() {
        let p = 8;
        let out = run(p, |ctx| {
            ctx.alltoallv(vec![Vec::new(); p]);
        });
        let c = out.stats.phases[0].per_rank[0];
        // even an empty alltoallv pays the counts exchange
        assert!(c.coll_alpha_units >= ceil_log2(p));
        assert!(c.coll_word_units >= p as u64);
    }

    #[test]
    fn collective_charges_recorded() {
        let out = run(4, |ctx| {
            ctx.barrier();
        });
        // α·⌈log₂4⌉ = 2α per rank for the explicit barrier (+2 for phase end)
        let c = out.stats.phases[0].per_rank[0];
        assert!(c.coll_alpha_units >= 2);
        assert_eq!(c.sent_messages, 0);
    }

    #[test]
    fn perturbed_collectives_agree_with_unperturbed() {
        let body = |ctx: &mut Ctx| {
            let s = ctx.allreduce_sum(&[ctx.rank() as u64 + 1])[0];
            let m = ctx.allreduce_max(ctx.rank() as u64);
            (s, m)
        };
        let plain = run(4, body);
        for seed in 0..4u64 {
            let perturbed = run_sim(4, &SimOptions::perturbed(seed), body);
            assert_eq!(perturbed.output.results, plain.results, "seed {seed}");
        }
    }

    #[test]
    fn perturbed_point_to_point_delivers_all() {
        let p = 4;
        for seed in 0..4u64 {
            let out = run_sim(p, &SimOptions::perturbed(seed), move |ctx| {
                for d in 0..p {
                    if d != ctx.rank() {
                        ctx.send_raw(d, vec![ctx.rank() as u64]);
                    }
                }
                let mut got = Vec::new();
                while got.len() < p - 1 {
                    if let Some(m) = ctx.try_recv_raw() {
                        got.push(m.words[0]);
                    } else {
                        std::thread::yield_now();
                    }
                }
                got.sort_unstable();
                got
            });
            for (me, got) in out.output.results.iter().enumerate() {
                let expect: Vec<u64> = (0..p as u64).filter(|&s| s != me as u64).collect();
                assert_eq!(got, &expect, "seed {seed} rank {me}");
            }
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_runs_record_phase_collective_and_task_spans() {
        let out = run_sim(
            4,
            &SimOptions {
                timing: Some(CostModel::supermuc()),
                ..SimOptions::traced()
            },
            |ctx| {
                ctx.with_span("setup", |ctx| ctx.add_work(10));
                ctx.allreduce_sum(&[1]);
                ctx.end_phase("a");
                ctx.barrier();
                ctx.end_phase("b");
            },
        );
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.spans.len(), 4);
        for spans in &trace.spans {
            let phases: Vec<&str> = spans
                .iter()
                .filter(|s| s.kind == SpanKind::Phase)
                .map(|s| s.label.as_str())
                .collect();
            // trailing "rest" phase is recorded as a span even when the
            // stats drop it as inactive
            assert_eq!(phases, ["a", "b", "rest"]);
            assert!(spans
                .iter()
                .any(|s| s.kind == SpanKind::Collective(CollKind::AllreduceSum)));
            let task = spans
                .iter()
                .find(|s| s.kind == SpanKind::Task)
                .expect("task span");
            assert_eq!(task.label, "setup");
            for s in spans {
                assert!(s.end.wall_nanos >= s.begin.wall_nanos);
                assert!(s.end.sim >= s.begin.sim);
            }
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn untraced_runs_record_no_spans() {
        let out = run_sim(2, &SimOptions::default(), |ctx| {
            ctx.with_span("w", |ctx| ctx.add_work(1));
            ctx.end_phase("a");
        });
        assert!(out.trace.is_none());
    }

    #[test]
    fn threads_backend_matches_sim_on_collectives_and_p2p() {
        let body = |ctx: &mut Ctx| {
            let p = ctx.num_ranks();
            for d in 0..p {
                if d != ctx.rank() {
                    ctx.send_raw(d, vec![ctx.rank() as u64, 7]);
                }
            }
            let mut got = 0usize;
            let mut sum = 0u64;
            while got < p - 1 {
                if let Some(m) = ctx.try_recv_raw() {
                    sum += m.words[0];
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            ctx.add_work(5);
            ctx.end_phase("p2p");
            let red = ctx.allreduce_sum(&[sum])[0];
            let aa = ctx.alltoallv((0..p).map(|d| vec![d as u64]).collect());
            ctx.end_phase("coll");
            (red, aa.len() as u64)
        };
        let sim = run_sim(4, &SimOptions::default(), body);
        let thr = run_sim(4, &SimOptions::on(TransportKind::Threads), body);
        assert_eq!(sim.output.results, thr.output.results);
        // phase-by-phase, rank-by-rank: identical meters on both backends
        for (ps, pt) in sim.output.stats.phases.iter().zip(&thr.output.stats.phases) {
            assert_eq!(ps.name, pt.name);
            assert_eq!(ps.per_rank, pt.per_rank);
        }
    }

    #[test]
    fn threads_backend_panic_joins_all_ranks() {
        // rank 2 dies while the rest head into a barrier: poisoning must
        // release every sibling so the scope joins and re-raises (a hang
        // here would trip the test harness timeout, not pass).
        let result = std::panic::catch_unwind(|| {
            run_sim(4, &SimOptions::on(TransportKind::Threads), |ctx| {
                if ctx.rank() == 2 {
                    panic!("rank 2 dies");
                }
                ctx.barrier();
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn threads_backend_records_wall_time() {
        let out = run_sim(2, &SimOptions::on(TransportKind::Threads), |ctx| {
            ctx.add_work(1000);
            ctx.end_phase("work");
        });
        let ph = &out.output.stats.phases[0];
        assert_eq!(ph.wall_per_rank.len(), 2);
        assert!(ph.max_wall() > 0.0, "wall clock must be recorded");
        assert!(out.output.stats.wall_time() > 0.0);
    }

    #[test]
    fn guarded_run_completes_normally() {
        let out = run_guarded(
            4,
            &SimOptions::default(),
            Duration::from_secs(5),
            |ctx: &mut Ctx| ctx.allreduce_sum(&[1])[0],
        )
        .expect("no deadlock");
        assert_eq!(out.output.results, vec![4, 4, 4, 4]);
    }

    #[test]
    fn guarded_run_reports_stalled_collective() {
        // rank 0 skips the barrier and exits; 1..3 wait forever
        let report = run_guarded(
            4,
            &SimOptions::default(),
            Duration::from_millis(200),
            |ctx: &mut Ctx| {
                if ctx.rank() != 0 {
                    ctx.barrier();
                }
            },
        )
        .expect_err("must diagnose the deadlock");
        assert_eq!(report.pes.len(), 4);
        assert!(report.pes[0].done);
        for pe in &report.pes[1..] {
            assert!(!pe.done);
            assert_eq!(pe.op, "barrier");
        }
        // every waiter points at rank 0
        assert!(report.wait_edges.iter().any(|&(w, o)| w == 1 && o == 0));
        let rendered = report.to_string();
        assert!(rendered.contains("deadlock"));
        assert!(rendered.contains("barrier"));
    }
}

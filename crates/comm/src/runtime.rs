//! The simulated distributed machine: `p` logical PEs running as threads,
//! exchanging messages through channels, with every communication action
//! metered (see [`crate::stats`]).
//!
//! A [`run`] call plays the role of `mpirun`: it spawns one thread
//! per PE, hands each a [`Ctx`] (the communicator), runs the given rank
//! program, and assembles per-phase statistics. Collectives are executed
//! through shared memory but *charged* with the standard tree/butterfly cost
//! formulas, so modeled times match what a real MPI implementation of the
//! paper's algorithms would pay.

use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Barrier;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::cost::{ceil_log2, CostModel};
use crate::stats::{Counters, PhaseStats, RunStats};

/// A raw point-to-point message: the sending rank and a word payload.
#[derive(Debug)]
pub struct RawMsg {
    /// Immediate sender (for relayed traffic this is the proxy, not the
    /// originator).
    pub src: usize,
    /// Payload machine words.
    pub words: Vec<u64>,
    /// Simulated arrival time at the receiver (timed runs; 0 otherwise).
    pub arrival: f64,
}

/// Scratch space for shared-memory collectives.
#[derive(Debug)]
struct CollScratch {
    /// Per-rank deposit slot (allgather/allreduce).
    slots: Vec<Vec<u64>>,
    /// `mat[src][dst]` deposit matrix (all-to-all).
    mat: Vec<Vec<Vec<u64>>>,
}

/// State shared by all PEs of one run.
pub(crate) struct Shared {
    p: usize,
    senders: Vec<Sender<RawMsg>>,
    barrier: Barrier,
    coll: Mutex<CollScratch>,
    /// Sparse-exchange termination: envelopes expected per destination.
    pub(crate) expected: Vec<AtomicU64>,
    /// Ranks that finished producing in the current sparse exchange.
    pub(crate) producers_done: AtomicUsize,
    /// Ranks whose inbox is fully drained in the current sparse exchange.
    pub(crate) satisfied: AtomicUsize,
    /// Clock deposit slots for timed runs (f64 bits).
    clock_slots: Vec<AtomicU64>,
}

/// The per-PE communicator handle. One per rank thread; owns that rank's
/// inbox and counters.
pub struct Ctx<'s> {
    rank: usize,
    pub(crate) shared: &'s Shared,
    receiver: Receiver<RawMsg>,
    counters: Counters,
    phases: Vec<PhaseRecord>,
    sent_peer_seen: Vec<bool>,
    recv_peer_seen: Vec<bool>,
    /// Cost model of a timed run (None = untimed; clock stays 0).
    timing: Option<CostModel>,
    clock: f64,
}

struct PhaseRecord {
    name: String,
    counters: Counters,
}

impl<'s> Ctx<'s> {
    /// This PE's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs `p`.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.shared.p
    }

    /// Read access to the running counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Meters `ops` candidate comparisons of local work.
    #[inline]
    pub fn add_work(&mut self, ops: u64) {
        self.counters.work_ops += ops;
        if let Some(cost) = self.timing {
            self.clock += cost.t_op * ops as f64;
            self.counters.sim_clock = self.clock;
        }
    }

    /// Advances the simulated clock by a collective's analytic cost and
    /// records the charge (no-op on the clock in untimed runs).
    fn charge_collective(&mut self, alpha_units: u64, word_units: u64) {
        self.counters.coll_alpha_units += alpha_units;
        self.counters.coll_word_units += word_units;
        if let Some(cost) = self.timing {
            self.clock += cost.alpha * alpha_units as f64 + cost.beta * word_units as f64;
            self.counters.sim_clock = self.clock;
        }
    }

    /// Synchronises simulated clocks to the global maximum (used at
    /// barriers and collectives of timed runs; no-op otherwise).
    pub(crate) fn sync_clocks(&mut self) {
        if self.timing.is_none() {
            return;
        }
        self.shared.clock_slots[self.rank]
            .store(self.clock.to_bits(), std::sync::atomic::Ordering::SeqCst);
        self.barrier_uncharged();
        let max = self
            .shared
            .clock_slots
            .iter()
            .map(|s| f64::from_bits(s.load(std::sync::atomic::Ordering::SeqCst)))
            .fold(0.0, f64::max);
        self.barrier_uncharged();
        self.clock = max;
        self.counters.sim_clock = self.clock;
    }

    /// Records a buffer-occupancy high-water mark (called by the message
    /// queue).
    #[inline]
    pub fn note_buffered(&mut self, words: u64) {
        if words > self.counters.peak_buffered_words {
            self.counters.peak_buffered_words = words;
        }
    }

    /// Charges the modeled cost of the sparse-exchange termination protocol
    /// (used by the message queue; see `crate::queue`). In timed runs this
    /// also synchronises clocks — termination is a consensus.
    pub(crate) fn add_termination_charge(&mut self, alpha_units: u64, word_units: u64) {
        self.sync_clocks();
        self.charge_collective(alpha_units, word_units);
    }

    /// Sends one point-to-point message. Counted as one message of
    /// `words.len()` machine words.
    pub fn send_raw(&mut self, to: usize, words: Vec<u64>) {
        debug_assert!(to < self.shared.p && to != self.rank, "bad destination {to}");
        self.counters.sent_messages += 1;
        self.counters.sent_words += words.len() as u64;
        if !self.sent_peer_seen[to] {
            self.sent_peer_seen[to] = true;
            self.counters.sent_peers += 1;
        }
        let mut arrival = 0.0;
        if let Some(cost) = self.timing {
            // sender is occupied for the startup latency; the payload then
            // arrives after the transmission time
            self.clock += cost.alpha;
            arrival = self.clock + cost.beta * words.len() as f64;
            self.counters.sim_clock = self.clock;
        }
        self.shared.senders[to]
            .send(RawMsg {
                src: self.rank,
                words,
                arrival,
            })
            .expect("receiver hung up");
    }

    /// Non-blocking receive of one message.
    pub fn try_recv_raw(&mut self) -> Option<RawMsg> {
        match self.receiver.try_recv() {
            Ok(m) => {
                self.counters.recv_messages += 1;
                self.counters.recv_words += m.words.len() as u64;
                if !self.recv_peer_seen[m.src] {
                    self.recv_peer_seen[m.src] = true;
                    self.counters.recv_peers += 1;
                }
                if self.timing.is_some() {
                    self.clock = self.clock.max(m.arrival);
                    self.counters.sim_clock = self.clock;
                }
                Some(m)
            }
            Err(_) => None,
        }
    }

    /// Barrier without cost charge (internal synchronisation of the
    /// simulator itself).
    pub(crate) fn barrier_uncharged(&self) {
        self.shared.barrier.wait();
    }

    /// Synchronises all PEs; charged `α⌈log₂ p⌉`.
    pub fn barrier(&mut self) {
        self.sync_clocks();
        self.charge_collective(ceil_log2(self.shared.p), 0);
        self.barrier_uncharged();
    }

    /// All-gather of variable-length word vectors; returns every rank's
    /// contribution indexed by rank. Charged `α⌈log₂p⌉ + β·(total words)`.
    pub fn allgatherv(&mut self, data: Vec<u64>) -> Vec<Vec<u64>> {
        {
            let mut s = self.shared.coll.lock();
            s.slots[self.rank] = data;
        }
        self.barrier_uncharged();
        let out: Vec<Vec<u64>> = {
            let s = self.shared.coll.lock();
            s.slots.clone()
        };
        self.barrier_uncharged();
        let total: u64 = out.iter().map(|v| v.len() as u64).sum();
        self.sync_clocks();
        self.charge_collective(ceil_log2(self.shared.p), total);
        out
    }

    /// Element-wise sum all-reduce of equal-length vectors. Charged
    /// `(α + β·len)·⌈log₂ p⌉`.
    pub fn allreduce_sum(&mut self, data: &[u64]) -> Vec<u64> {
        let parts = self.allgatherv_uncharged(data.to_vec());
        let len = data.len();
        let mut acc = vec![0u64; len];
        for part in &parts {
            assert_eq!(part.len(), len, "allreduce contributions must agree in length");
            for (a, &x) in acc.iter_mut().zip(part) {
                *a += x;
            }
        }
        let log = ceil_log2(self.shared.p);
        self.sync_clocks();
        self.charge_collective(log, log * len as u64);
        acc
    }

    /// Scalar max all-reduce. Charged like a 1-word all-reduce.
    pub fn allreduce_max(&mut self, x: u64) -> u64 {
        let parts = self.allgatherv_uncharged(vec![x]);
        let log = ceil_log2(self.shared.p);
        self.sync_clocks();
        self.charge_collective(log, log);
        parts.iter().map(|v| v[0]).max().unwrap_or(0)
    }

    /// Exclusive prefix sum over ranks of a scalar. Charged like a 1-word
    /// all-reduce.
    pub fn exscan_sum(&mut self, x: u64) -> u64 {
        let parts = self.allgatherv_uncharged(vec![x]);
        let log = ceil_log2(self.shared.p);
        self.sync_clocks();
        self.charge_collective(log, log);
        parts[..self.rank].iter().map(|v| v[0]).sum()
    }

    fn allgatherv_uncharged(&mut self, data: Vec<u64>) -> Vec<Vec<u64>> {
        {
            let mut s = self.shared.coll.lock();
            s.slots[self.rank] = data;
        }
        self.barrier_uncharged();
        let out: Vec<Vec<u64>> = {
            let s = self.shared.coll.lock();
            s.slots.clone()
        };
        self.barrier_uncharged();
        out
    }

    /// Dense irregular all-to-all (`MPI_Alltoallv`): `outgoing[d]` is sent to
    /// rank `d`; returns what every rank sent here, indexed by source rank.
    /// Counted as the constituent point-to-point messages (nonempty, non-self
    /// vectors only), plus the receive-counts pre-exchange a real
    /// `MPI_Alltoallv` needs (an all-to-all of `p` counts, charged as
    /// `α⌈log₂p⌉ + β·p`) — this is the dense overhead a sparse exchange
    /// avoids (§IV-D).
    pub fn alltoallv(&mut self, outgoing: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(outgoing.len(), self.shared.p);
        self.sync_clocks();
        self.charge_collective(ceil_log2(self.shared.p), self.shared.p as u64);
        let mut sent_words_here = 0u64;
        let mut sent_msgs_here = 0u64;
        for (d, v) in outgoing.iter().enumerate() {
            if d != self.rank && !v.is_empty() {
                self.counters.sent_messages += 1;
                self.counters.sent_words += v.len() as u64;
                sent_msgs_here += 1;
                sent_words_here += v.len() as u64;
            }
        }
        {
            let mut s = self.shared.coll.lock();
            s.mat[self.rank] = outgoing;
        }
        self.barrier_uncharged();
        let incoming: Vec<Vec<u64>> = {
            let s = self.shared.coll.lock();
            (0..self.shared.p)
                .map(|src| s.mat[src][self.rank].clone())
                .collect()
        };
        self.barrier_uncharged();
        let mut recv_words_here = 0u64;
        let mut recv_msgs_here = 0u64;
        for (srcr, v) in incoming.iter().enumerate() {
            if srcr != self.rank && !v.is_empty() {
                self.counters.recv_messages += 1;
                self.counters.recv_words += v.len() as u64;
                recv_msgs_here += 1;
                recv_words_here += v.len() as u64;
            }
        }
        if let Some(cost) = self.timing {
            // single-ported: pay the max direction
            let msgs = sent_msgs_here.max(recv_msgs_here) as f64;
            let words = sent_words_here.max(recv_words_here) as f64;
            self.clock += cost.alpha * msgs + cost.beta * words;
            self.counters.sim_clock = self.clock;
        }
        // participants leave the exchange together
        self.sync_clocks();
        incoming
    }

    /// Ends the current phase: synchronises all PEs and records the counter
    /// deltas under `name`. All PEs must call this with the same sequence of
    /// phase names.
    pub fn end_phase(&mut self, name: &str) {
        self.counters.coll_alpha_units += ceil_log2(self.shared.p);
        self.end_phase_uncharged(name);
    }

    fn end_phase_uncharged(&mut self, name: &str) {
        self.sync_clocks();
        self.barrier_uncharged();
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            counters: self.counters,
        });
    }
}

/// The result of a simulated run: the per-rank return values and the full
/// statistics record.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values (indexed by rank).
    pub results: Vec<R>,
    /// Per-phase, per-rank counters.
    pub stats: RunStats,
}

/// Runs `f` as the rank program on `p` simulated PEs.
///
/// `f` is called once per rank with that rank's [`Ctx`]; any un-phased
/// trailing activity is recorded as a final `"rest"` phase.
pub fn run<R, F>(p: usize, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    run_with(p, None, f)
}

/// Like [`run`], but with the overlap-aware simulated clock enabled: every
/// PE carries a causal clock advanced by its local work (`t_op`), its send
/// overheads (`α`) and the arrival times of the messages it receives
/// (`send clock + α + β·ℓ`), synchronised at barriers/collectives. The
/// resulting [`RunStats::makespan`] captures communication/computation
/// overlap, which the per-phase [`RunStats::modeled_time`] upper bound
/// cannot.
pub fn run_timed<R, F>(p: usize, cost: CostModel, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    run_with(p, Some(cost), f)
}

fn run_with<R, F>(p: usize, timing: Option<CostModel>, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    assert!(p > 0, "need at least one PE");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = crossbeam_channel::unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let shared = Shared {
        p,
        senders,
        barrier: Barrier::new(p),
        coll: Mutex::new(CollScratch {
            slots: vec![Vec::new(); p],
            mat: vec![Vec::new(); p],
        }),
        expected: (0..p).map(|_| AtomicU64::new(0)).collect(),
        producers_done: AtomicUsize::new(0),
        satisfied: AtomicUsize::new(0),
        clock_slots: (0..p).map(|_| AtomicU64::new(0)).collect(),
    };

    let mut slots: Vec<Option<(R, Vec<PhaseRecord>)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let shared = &shared;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut ctx = Ctx {
                    rank,
                    shared,
                    receiver,
                    counters: Counters::default(),
                    phases: Vec::new(),
                    sent_peer_seen: vec![false; p],
                    recv_peer_seen: vec![false; p],
                    timing,
                    clock: 0.0,
                };
                let result = f(&mut ctx);
                ctx.end_phase_uncharged("rest");
                (result, ctx.phases)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            slots[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });

    let mut results = Vec::with_capacity(p);
    let mut per_rank_phases: Vec<Vec<PhaseRecord>> = Vec::with_capacity(p);
    for s in slots {
        let (r, ph) = s.unwrap();
        results.push(r);
        per_rank_phases.push(ph);
    }

    // Assemble per-phase deltas; all ranks must agree on the phase sequence.
    let names: Vec<String> = per_rank_phases[0].iter().map(|pr| pr.name.clone()).collect();
    for (r, phs) in per_rank_phases.iter().enumerate() {
        let theirs: Vec<&String> = phs.iter().map(|pr| &pr.name).collect();
        assert_eq!(
            theirs,
            names.iter().collect::<Vec<_>>(),
            "rank {r} recorded a different phase sequence"
        );
    }
    let mut phases = Vec::with_capacity(names.len());
    for (pi, name) in names.iter().enumerate() {
        let per_rank: Vec<Counters> = per_rank_phases
            .iter()
            .map(|phs| {
                let cur = phs[pi].counters;
                if pi == 0 {
                    cur
                } else {
                    cur.delta_since(&phs[pi - 1].counters)
                }
            })
            .collect();
        phases.push(PhaseStats {
            name: name.clone(),
            per_rank,
        });
    }
    // Drop an empty trailing "rest" phase to keep reports clean. Peak and
    // peer fields are running values and do not indicate phase activity.
    let is_inactive = |c: &Counters| {
        c.sent_messages == 0
            && c.sent_words == 0
            && c.recv_messages == 0
            && c.recv_words == 0
            && c.work_ops == 0
            && c.coll_alpha_units == 0
            && c.coll_word_units == 0
    };
    if phases
        .last()
        .is_some_and(|ph| ph.name == "rest" && ph.per_rank.iter().all(is_inactive))
    {
        phases.pop();
    }

    RunOutput {
        results,
        stats: RunStats { p, phases },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |ctx| {
            ctx.add_work(10);
            ctx.rank()
        });
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.stats.total_work(), 10);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send_raw(1, vec![1, 2, 3]);
                0u64
            } else {
                loop {
                    if let Some(m) = ctx.try_recv_raw() {
                        assert_eq!(m.src, 0);
                        return m.words.iter().sum();
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(out.results[1], 6);
        assert_eq!(out.stats.total_messages(), 1);
        assert_eq!(out.stats.total_volume(), 3);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run(4, |ctx| ctx.allreduce_sum(&[ctx.rank() as u64, 1])[0]);
        assert!(out.results.iter().all(|&x| x == 6));
        let out2 = run(4, |ctx| ctx.allreduce_sum(&[ctx.rank() as u64, 1])[1]);
        assert!(out2.results.iter().all(|&x| x == 4));
    }

    #[test]
    fn allreduce_max_and_exscan() {
        let out = run(4, |ctx| {
            let mx = ctx.allreduce_max(ctx.rank() as u64 * 10);
            let scan = ctx.exscan_sum(1);
            (mx, scan)
        });
        for (r, &(mx, scan)) in out.results.iter().enumerate() {
            assert_eq!(mx, 30);
            assert_eq!(scan, r as u64);
        }
    }

    #[test]
    fn allgatherv_collects_everything() {
        let out = run(3, |ctx| {
            let mine = vec![ctx.rank() as u64; ctx.rank() + 1];
            ctx.allgatherv(mine)
        });
        for res in &out.results {
            assert_eq!(res[0], vec![0]);
            assert_eq!(res[1], vec![1, 1]);
            assert_eq!(res[2], vec![2, 2, 2]);
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let p = 4;
        let out = run(p, |ctx| {
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|d| vec![(ctx.rank() * 10 + d) as u64])
                .collect();
            ctx.alltoallv(outgoing)
        });
        for (me, incoming) in out.results.iter().enumerate() {
            for (src, v) in incoming.iter().enumerate() {
                assert_eq!(v, &vec![(src * 10 + me) as u64]);
            }
        }
        // each rank sends p-1 real messages of 1 word
        assert_eq!(out.stats.total_messages(), (p * (p - 1)) as u64);
    }

    #[test]
    fn phases_split_counters() {
        let out = run(2, |ctx| {
            ctx.add_work(5);
            ctx.end_phase("a");
            ctx.add_work(7);
            ctx.end_phase("b");
        });
        assert_eq!(out.stats.phases.len(), 2);
        assert_eq!(out.stats.phases[0].total_work(), 10);
        assert_eq!(out.stats.phases[1].total_work(), 14);
        assert_eq!(out.stats.phase_time("b", &CostModel {
            alpha: 0.0,
            beta: 0.0,
            t_op: 1.0,
        }), 7.0);
    }

    #[test]
    fn mismatched_phases_panic() {
        let result = std::panic::catch_unwind(|| {
            run(2, |ctx| {
                if ctx.rank() == 0 {
                    ctx.end_phase("a");
                } else {
                    ctx.end_phase("z");
                }
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = run(1, |ctx| {
            let ar = ctx.allreduce_sum(&[7, 9]);
            let mx = ctx.allreduce_max(5);
            let sc = ctx.exscan_sum(3);
            let ag = ctx.allgatherv(vec![1, 2, 3]);
            let aa = ctx.alltoallv(vec![vec![4, 5]]);
            (ar, mx, sc, ag, aa)
        });
        let (ar, mx, sc, ag, aa) = &out.results[0];
        assert_eq!(ar, &vec![7, 9]);
        assert_eq!(*mx, 5);
        assert_eq!(*sc, 0);
        assert_eq!(ag, &vec![vec![1, 2, 3]]);
        assert_eq!(aa, &vec![vec![4, 5]]);
        // p = 1: no messages, no log-p latency charges
        assert_eq!(out.stats.total_messages(), 0);
    }

    #[test]
    fn empty_allgatherv_contributions() {
        let out = run(3, |ctx| {
            let data = if ctx.rank() == 1 { vec![9] } else { Vec::new() };
            ctx.allgatherv(data)
        });
        for res in &out.results {
            assert_eq!(res[0], Vec::<u64>::new());
            assert_eq!(res[1], vec![9]);
            assert_eq!(res[2], Vec::<u64>::new());
        }
    }

    #[test]
    fn alltoallv_charges_counts_preexchange() {
        let p = 8;
        let out = run(p, |ctx| {
            ctx.alltoallv(vec![Vec::new(); p]);
        });
        let c = out.stats.phases[0].per_rank[0];
        // even an empty alltoallv pays the counts exchange
        assert!(c.coll_alpha_units >= ceil_log2(p));
        assert!(c.coll_word_units >= p as u64);
    }

    #[test]
    fn collective_charges_recorded() {
        let out = run(4, |ctx| {
            ctx.barrier();
        });
        // α·⌈log₂4⌉ = 2α per rank for the explicit barrier (+2 for phase end)
        let c = out.stats.phases[0].per_rank[0];
        assert!(c.coll_alpha_units >= 2);
        assert_eq!(c.sent_messages, 0);
    }
}

//! Per-PE counters, per-phase aggregation, and modeled-time evaluation.
//!
//! Every quantity the paper's evaluation plots is derived from these
//! counters: total/modeled running time, the *maximum number of outgoing
//! messages over all PEs*, and the *bottleneck communication volume*
//! (max per-PE sent words) of Fig. 5, plus the per-phase break-down of
//! Fig. 7 and the buffer-memory footprints discussed for TriC.

use crate::cost::CostModel;

/// Counters owned by one PE. Message/word counters meter real traffic;
/// `coll_alpha_units`/`coll_word_units` meter the analytic cost of
/// collectives (charged as multiples of α and β); `work_ops` meters local
/// work in intersection candidate comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Point-to-point messages sent (after aggregation, including relays).
    pub sent_messages: u64,
    /// Machine words sent in point-to-point messages (incl. envelope headers).
    pub sent_words: u64,
    /// Point-to-point messages received.
    pub recv_messages: u64,
    /// Machine words received.
    pub recv_words: u64,
    /// Local work in candidate comparisons.
    pub work_ops: u64,
    /// Collective latency charge, in multiples of α.
    pub coll_alpha_units: u64,
    /// Collective bandwidth charge, in machine words (multiples of β).
    pub coll_word_units: u64,
    /// Peak words simultaneously buffered in aggregation queues.
    pub peak_buffered_words: u64,
    /// Distinct PEs this PE has sent point-to-point messages to (running
    /// count over the whole run; phase deltas report the running value).
    pub sent_peers: u64,
    /// Distinct PEs point-to-point messages were received from (running
    /// count, like [`Counters::sent_peers`]).
    pub recv_peers: u64,
    /// Overlap-aware simulated clock (seconds) in *timed* runs
    /// ([`crate::runtime::run_timed`]): a Lamport-style causal clock
    /// advanced by local work, send overheads and message arrivals, so
    /// communication/computation overlap shows up. 0 in untimed runs.
    /// Running value (phase deltas report the value at phase end).
    pub sim_clock: f64,
}

impl Counters {
    /// Counter-wise difference `self − earlier` (peaks take the later value,
    /// which is already a running maximum).
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            sent_messages: self.sent_messages - earlier.sent_messages,
            sent_words: self.sent_words - earlier.sent_words,
            recv_messages: self.recv_messages - earlier.recv_messages,
            recv_words: self.recv_words - earlier.recv_words,
            work_ops: self.work_ops - earlier.work_ops,
            coll_alpha_units: self.coll_alpha_units - earlier.coll_alpha_units,
            coll_word_units: self.coll_word_units - earlier.coll_word_units,
            peak_buffered_words: self.peak_buffered_words,
            sent_peers: self.sent_peers,
            recv_peers: self.recv_peers,
            sim_clock: self.sim_clock,
        }
    }

    /// Accumulates `other` into `self`: flow counters add, peak/peer/clock
    /// counters take the max. This is the snapshot-folding rule used by
    /// long-lived consumers (the query engine) that aggregate many runs'
    /// statistics into one running [`Counters`] record.
    pub fn absorb(&mut self, other: &Counters) {
        self.sent_messages += other.sent_messages;
        self.sent_words += other.sent_words;
        self.recv_messages += other.recv_messages;
        self.recv_words += other.recv_words;
        self.work_ops += other.work_ops;
        self.coll_alpha_units += other.coll_alpha_units;
        self.coll_word_units += other.coll_word_units;
        self.peak_buffered_words = self.peak_buffered_words.max(other.peak_buffered_words);
        self.sent_peers = self.sent_peers.max(other.sent_peers);
        self.recv_peers = self.recv_peers.max(other.recv_peers);
        self.sim_clock = self.sim_clock.max(other.sim_clock);
    }

    /// Modeled execution time of this PE under `cost`, using the
    /// single-ported full-duplex rule: latency and bandwidth are charged on
    /// the max of the send and receive directions.
    pub fn modeled_time(&self, cost: &CostModel) -> f64 {
        let msgs = self.sent_messages.max(self.recv_messages) + self.coll_alpha_units;
        let words = self.sent_words.max(self.recv_words) + self.coll_word_units;
        cost.t_op * self.work_ops as f64 + cost.alpha * msgs as f64 + cost.beta * words as f64
    }
}

/// One barrier-delimited phase: a name and every PE's counter deltas.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name (must agree across PEs; e.g. "preprocessing", "local",
    /// "global").
    pub name: String,
    /// Counter deltas per PE, indexed by rank.
    pub per_rank: Vec<Counters>,
    /// Measured wall-clock seconds each PE spent in the phase, indexed by
    /// rank. Deliberately *not* part of [`Counters`]: counters are the
    /// deterministic modeled record (bit-compared across backends and
    /// schedules), while wall time is a property of the host machine. On
    /// the simulator backend this is simulator overhead; on the threads
    /// backend it is honest parallel execution time.
    pub wall_per_rank: Vec<f64>,
}

impl PhaseStats {
    /// Builds a phase record with no wall-clock measurements (synthetic
    /// stats in tests and report tooling).
    pub fn unmeasured(name: impl Into<String>, per_rank: Vec<Counters>) -> PhaseStats {
        let wall_per_rank = vec![0.0; per_rank.len()];
        PhaseStats {
            name: name.into(),
            per_rank,
            wall_per_rank,
        }
    }

    /// Measured wall time of the phase: the slowest PE (the phase ends at
    /// a barrier). 0 for synthetic stats.
    pub fn max_wall(&self) -> f64 {
        self.wall_per_rank.iter().copied().fold(0.0, f64::max)
    }
    /// Modeled wall time of the phase: the slowest PE under `cost` (the
    /// phase ends at a barrier).
    pub fn modeled_time(&self, cost: &CostModel) -> f64 {
        self.per_rank
            .iter()
            .map(|c| c.modeled_time(cost))
            .fold(0.0, f64::max)
    }

    /// Max over PEs of outgoing messages in this phase.
    pub fn max_sent_messages(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|c| c.sent_messages)
            .max()
            .unwrap_or(0)
    }

    /// Max over PEs of sent words (bottleneck communication volume).
    pub fn bottleneck_volume(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|c| c.sent_words)
            .max()
            .unwrap_or(0)
    }

    /// Total words sent by all PEs.
    pub fn total_volume(&self) -> u64 {
        self.per_rank.iter().map(|c| c.sent_words).sum()
    }

    /// Total local work over all PEs.
    pub fn total_work(&self) -> u64 {
        self.per_rank.iter().map(|c| c.work_ops).sum()
    }

    /// Max over PEs of peak buffered words.
    pub fn max_peak_buffered(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|c| c.peak_buffered_words)
            .max()
            .unwrap_or(0)
    }

    /// Max over PEs of the simulated clock at phase end (timed runs only).
    pub fn max_sim_clock(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|c| c.sim_clock)
            .fold(0.0, f64::max)
    }
}

/// The full execution record of one simulated run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Number of PEs.
    pub p: usize,
    /// Phases in execution order.
    pub phases: Vec<PhaseStats>,
    /// Measured transport contention (queue lock-wait, occupancy
    /// high-water, barrier spin) of a wall-profiled threads run
    /// (`SimOptions::wall_profile`); `None` otherwise. Strictly additive:
    /// the modeled meters above are bit-identical with or without it.
    pub contention: Option<tricount_net::ContentionSummary>,
}

impl RunStats {
    /// Modeled running time: the sum over phases of the slowest PE.
    pub fn modeled_time(&self, cost: &CostModel) -> f64 {
        self.phases.iter().map(|ph| ph.modeled_time(cost)).sum()
    }

    /// Measured wall-clock running time: the sum over phases of the slowest
    /// PE's wall seconds. The honest-parallel counterpart of
    /// [`RunStats::modeled_time`] — compare the two to see how far the
    /// machine model is from this host's reality (threads backend), or what
    /// the simulator's bookkeeping overhead is (sim backend).
    pub fn wall_time(&self) -> f64 {
        self.phases.iter().map(|ph| ph.max_wall()).sum()
    }

    /// Modeled time of one named phase (0 if absent).
    pub fn phase_time(&self, name: &str, cost: &CostModel) -> f64 {
        self.phases
            .iter()
            .filter(|ph| ph.name == name)
            .map(|ph| ph.modeled_time(cost))
            .sum()
    }

    /// Maximum outgoing messages over all PEs, whole run (Fig. 5 middle row).
    pub fn max_sent_messages(&self) -> u64 {
        (0..self.p)
            .map(|r| {
                self.phases
                    .iter()
                    .map(|ph| ph.per_rank[r].sent_messages)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Bottleneck communication volume: max over PEs of total sent words
    /// (Fig. 5 bottom row).
    pub fn bottleneck_volume(&self) -> u64 {
        (0..self.p)
            .map(|r| {
                self.phases
                    .iter()
                    .map(|ph| ph.per_rank[r].sent_words)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Total communication volume over all PEs and phases, in words.
    pub fn total_volume(&self) -> u64 {
        self.phases.iter().map(|ph| ph.total_volume()).sum()
    }

    /// Total messages over all PEs and phases.
    pub fn total_messages(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|ph| ph.per_rank.iter())
            .map(|c| c.sent_messages)
            .sum()
    }

    /// Total local work over all PEs and phases.
    pub fn total_work(&self) -> u64 {
        self.phases.iter().map(|ph| ph.total_work()).sum()
    }

    /// Overlap-aware makespan of a timed run: the largest simulated clock
    /// over all PEs (0 for untimed runs). Unlike [`RunStats::modeled_time`]
    /// (sum of per-phase maxima of independent per-PE costs), this accounts
    /// for communication/computation overlap and message arrival chains.
    pub fn makespan(&self) -> f64 {
        self.phases
            .iter()
            .map(|ph| ph.max_sim_clock())
            .fold(0.0, f64::max)
    }

    /// Max over PEs and phases of peak buffered words (the O(|E_i|) memory
    /// guarantee is asserted against this).
    pub fn max_peak_buffered(&self) -> u64 {
        self.phases
            .iter()
            .map(|ph| ph.max_peak_buffered())
            .max()
            .unwrap_or(0)
    }

    /// One whole-run [`Counters`] snapshot: flow counters summed over all
    /// phases and ranks, peaks/peers/clock as run-wide maxima. The compact
    /// record long-lived consumers fold across runs via
    /// [`Counters::absorb`].
    pub fn totals(&self) -> Counters {
        let mut acc = Counters::default();
        for ph in &self.phases {
            for c in &ph.per_rank {
                acc.absorb(c);
            }
        }
        acc
    }

    /// Like [`RunStats::totals`] but restricted to phases named `name`
    /// (zeroed counters if the phase never ran). Lets callers prove phase-
    /// level properties, e.g. that a resident engine's queries spend no
    /// communication in "preprocessing".
    pub fn phase_totals(&self, name: &str) -> Counters {
        let mut acc = Counters::default();
        for ph in self.phases.iter().filter(|ph| ph.name == name) {
            for c in &ph.per_rank {
                acc.absorb(c);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(sent_m: u64, sent_w: u64, recv_m: u64, recv_w: u64, work: u64) -> Counters {
        Counters {
            sent_messages: sent_m,
            sent_words: sent_w,
            recv_messages: recv_m,
            recv_words: recv_w,
            work_ops: work,
            ..Default::default()
        }
    }

    #[test]
    fn modeled_time_uses_max_direction() {
        let cost = CostModel::comm_only(1.0, 1.0);
        // 2 msgs out, 5 in → 5α; 10 words out, 3 in → 10β
        let t = c(2, 10, 5, 3, 0).modeled_time(&cost);
        assert_eq!(t, 5.0 + 10.0);
    }

    #[test]
    fn phase_time_is_bottleneck_rank() {
        let cost = CostModel::comm_only(0.0, 1.0);
        let ph = PhaseStats::unmeasured(
            "x",
            vec![c(0, 5, 0, 0, 0), c(0, 20, 0, 0, 0), c(0, 1, 0, 0, 0)],
        );
        assert_eq!(ph.modeled_time(&cost), 20.0);
        assert_eq!(ph.bottleneck_volume(), 20);
        assert_eq!(ph.total_volume(), 26);
    }

    #[test]
    fn run_aggregates_across_phases_per_rank() {
        let stats = RunStats {
            p: 2,
            phases: vec![
                PhaseStats::unmeasured("a", vec![c(1, 10, 0, 0, 0), c(3, 2, 0, 0, 0)]),
                PhaseStats::unmeasured("b", vec![c(4, 1, 0, 0, 0), c(1, 5, 0, 0, 0)]),
            ],
            contention: None,
        };
        // rank0: 5 msgs, 11 words; rank1: 4 msgs, 7 words
        assert_eq!(stats.max_sent_messages(), 5);
        assert_eq!(stats.bottleneck_volume(), 11);
        assert_eq!(stats.total_volume(), 18);
        assert_eq!(stats.total_messages(), 9);
    }

    #[test]
    fn delta_since_subtracts_flows_keeps_peak() {
        let early = Counters {
            sent_messages: 2,
            sent_words: 10,
            peak_buffered_words: 7,
            ..Default::default()
        };
        let late = Counters {
            sent_messages: 5,
            sent_words: 25,
            peak_buffered_words: 9,
            ..Default::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.sent_messages, 3);
        assert_eq!(d.sent_words, 15);
        assert_eq!(d.peak_buffered_words, 9);
    }

    #[test]
    fn totals_fold_flows_and_peaks() {
        let mut a = c(1, 10, 2, 20, 5);
        a.peak_buffered_words = 7;
        let mut b = c(3, 30, 4, 40, 6);
        b.peak_buffered_words = 4;
        let stats = RunStats {
            p: 2,
            phases: vec![
                PhaseStats::unmeasured("x", vec![a, b]),
                PhaseStats::unmeasured("y", vec![c(0, 0, 0, 0, 1), c(0, 0, 0, 0, 2)]),
            ],
            contention: None,
        };
        let t = stats.totals();
        assert_eq!(t.sent_messages, 4);
        assert_eq!(t.sent_words, 40);
        assert_eq!(t.recv_words, 60);
        assert_eq!(t.work_ops, 14);
        assert_eq!(t.peak_buffered_words, 7);
        let px = stats.phase_totals("x");
        assert_eq!(px.work_ops, 11);
        assert_eq!(stats.phase_totals("missing"), Counters::default());
    }

    #[test]
    fn work_costs_via_t_op() {
        let cost = CostModel {
            alpha: 0.0,
            beta: 0.0,
            t_op: 2.0,
        };
        assert_eq!(c(9, 9, 9, 9, 3).modeled_time(&cost), 6.0);
    }
}

//! The machine model of paper §II-B, made explicit and parameterisable.
//!
//! The paper assumes full-duplex single-ported communication where sending a
//! message of `ℓ` machine words costs `α + βℓ` (α: startup latency, β: per
//! word transfer time). Local work is metered in *candidate comparisons* of
//! the intersection kernels, each costing `t_op`.
//!
//! The simulated runtime records per-PE message/word/work counters; this
//! module turns those counters into modeled seconds. Two presets bracket the
//! regimes the paper discusses:
//!
//! * [`CostModel::supermuc`] — a fast HPC interconnect (OmniPath-class).
//!   Under it local work dominates, reproducing the paper's finding that
//!   DITRIC can beat CETRIC on fast networks (§V-D).
//! * [`CostModel::cloud`] — a slow, high-latency network, the environment in
//!   which the paper predicts the contraction of CETRIC pays off (§V-E).

/// Parameters of the α-β-work machine model. All values in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Message startup latency (seconds per message).
    pub alpha: f64,
    /// Per-machine-word (8 byte) transfer time (seconds per word).
    pub beta: f64,
    /// Cost of one intersection candidate comparison (seconds per op).
    pub t_op: f64,
}

impl CostModel {
    /// OmniPath-class supercomputer network: α ≈ 2 µs, 100 Gbit/s
    /// (β ≈ 0.64 ns/word), ~1 ns per local comparison.
    pub fn supermuc() -> Self {
        CostModel {
            alpha: 2.0e-6,
            beta: 0.64e-9,
            t_op: 1.0e-9,
        }
    }

    /// Cloud-datacenter-class network: α ≈ 50 µs, ~10 Gbit/s
    /// (β ≈ 6.4 ns/word), same compute speed.
    pub fn cloud() -> Self {
        CostModel {
            alpha: 50.0e-6,
            beta: 6.4e-9,
            t_op: 1.0e-9,
        }
    }

    /// A model that prices only communication (useful for isolating
    /// communication-structure effects in tests).
    pub fn comm_only(alpha: f64, beta: f64) -> Self {
        CostModel {
            alpha,
            beta,
            t_op: 0.0,
        }
    }

    /// A model built from *measured* parameters of the host the threads
    /// transport runs on. Feed it the α/β estimates emitted by the
    /// `tricount-pingpong` probe (`alpha_seconds`,
    /// `beta_seconds_per_word`) — and, optionally, a measured per-comparison
    /// cost — so modeled times and wall clock are finally in the same
    /// currency. Negative inputs (a degenerate least-squares fit on a noisy
    /// host) are clamped to zero.
    pub fn calibrated(alpha: f64, beta: f64, t_op: f64) -> Self {
        CostModel {
            alpha: alpha.max(0.0),
            beta: beta.max(0.0),
            t_op: t_op.max(0.0),
        }
    }

    /// Cost of a single point-to-point message of `words` machine words.
    #[inline]
    pub fn message(&self, words: u64) -> f64 {
        self.alpha + self.beta * words as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::supermuc()
    }
}

/// `⌈log₂ p⌉` (0 for p ≤ 1) — the round count of tree/butterfly collectives.
#[inline]
pub fn ceil_log2(p: usize) -> u64 {
    if p <= 1 {
        0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn message_cost_is_affine() {
        let m = CostModel::comm_only(1.0, 0.5);
        assert_eq!(m.message(0), 1.0);
        assert_eq!(m.message(4), 3.0);
    }

    #[test]
    fn calibrated_clamps_degenerate_fits() {
        let m = CostModel::calibrated(-1.0e-9, 2.0e-9, -0.5e-9);
        assert_eq!(m.alpha, 0.0);
        assert_eq!(m.beta, 2.0e-9);
        assert_eq!(m.t_op, 0.0);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let fast = CostModel::supermuc();
        let slow = CostModel::cloud();
        assert!(fast.alpha < slow.alpha);
        assert!(fast.beta < slow.beta);
    }
}

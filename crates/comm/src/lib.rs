//! A simulated distributed-memory machine for reproducing the communication
//! behaviour of Sanders & Uhl's distributed triangle counting algorithms
//! (IPDPS 2023) on a single host.
//!
//! The paper's machine model (§II-B) is `p` PEs with full-duplex,
//! single-ported communication where a message of `ℓ` words costs `α + βℓ`.
//! This crate executes *real* message-passing programs — one thread per PE,
//! real payloads over channels, results checked against ground truth — while
//! metering every message, word, and unit of local work, and pricing the
//! trace with exactly that model ([`CostModel`]).
//!
//! Components:
//! * [`runtime::run`] — spawn `p` PEs, run a rank program, collect
//!   [`RunStats`].
//! * [`Ctx`] — the communicator: point-to-point sends, polling receives,
//!   barrier / all-reduce / all-gather / dense all-to-all collectives, work
//!   metering, phase boundaries.
//! * [`MessageQueue`] — the paper's dynamically buffered message queue with
//!   flush threshold δ (§IV-A), asynchronous sparse all-to-all with
//!   termination, and grid-based indirect delivery (§IV-B).
//! * [`Grid`] — the 2D proxy arrangement, including the ragged-last-row
//!   transposition.
//! * [`CostModel`] / [`RunStats`] — turning counter traces into the modeled
//!   times, message maxima, and bottleneck volumes the paper plots.

//! * [`trace::Trace`] — optional per-PE event recording (`trace` feature)
//!   plus [`runtime::run_sim`]/[`runtime::run_guarded`]: schedule
//!   perturbation, deadlock diagnosis, and the raw material for the
//!   `tricount-verify` conformance linter.

#![warn(missing_docs)]

pub mod cost;
pub mod grid;
pub mod queue;
pub mod runtime;
pub mod stats;
pub mod trace;

pub use cost::{ceil_log2, CostModel};
pub use grid::Grid;
#[cfg(feature = "fault-injection")]
pub use queue::Fault;
pub use queue::{Envelope, MessageQueue, QueueConfig, Routing, HEADER_WORDS};
pub use runtime::{
    run, run_guarded, run_sim, run_timed, Ctx, DeadlockReport, DeliveryPick, PeSnapshot, RunOutput,
    SimOptions, SimOutput, TransportKind,
};
pub use stats::{Counters, PhaseStats, RunStats};
pub use trace::{hash_words, CollKind, SpanKind, SpanRecord, SpanStamp, Trace, TraceEvent};
pub use tricount_net::{
    ContentionMeters, ContentionSummary, PeWallLog, WallEvent, WallEventKind, WallProfile,
};

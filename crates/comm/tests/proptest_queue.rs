//! Property tests of the buffered message queue and sparse all-to-all: for
//! arbitrary PE counts, post schedules, flush thresholds and routing
//! disciplines, every posted envelope must be delivered to its destination
//! exactly once (as a multiset), and the exchange must terminate.

use std::time::Duration;

use proptest::prelude::*;
use tricount_comm::{
    run, run_guarded, MessageQueue, QueueConfig, Routing, SimOptions, HEADER_WORDS,
};

/// A post schedule: per source rank, a list of (dest, payload) envelopes.
type Schedule = Vec<Vec<(usize, Vec<u64>)>>;

fn arb_schedule() -> impl Strategy<Value = (usize, Schedule)> {
    (2usize..7).prop_flat_map(|p| {
        let posts = proptest::collection::vec(
            proptest::collection::vec(
                ((0usize..p), proptest::collection::vec(0u64..1000, 0..6)),
                0..25,
            ),
            p,
        );
        (Just(p), posts).prop_map(|(p, mut sched)| {
            // a rank cannot post to itself: redirect those to (rank+1) % p
            for (src, posts) in sched.iter_mut().enumerate() {
                for (dest, _) in posts.iter_mut() {
                    if *dest == src {
                        *dest = (*dest + 1) % p;
                    }
                }
            }
            (p, sched)
        })
    })
}

fn arb_config() -> impl Strategy<Value = QueueConfig> {
    (
        prop_oneof![Just(None), Just(Some(0usize)), (1usize..200).prop_map(Some)],
        prop_oneof![Just(Routing::Direct), Just(Routing::Grid)],
    )
        .prop_map(|(delta, routing)| QueueConfig { delta, routing })
}

fn expected_inbox(p: usize, sched: &Schedule, me: usize) -> Vec<Vec<u64>> {
    let mut inbox: Vec<Vec<u64>> = (0..p)
        .flat_map(|src| {
            sched[src]
                .iter()
                .filter(|(d, _)| *d == me)
                .map(|(_, payload)| payload.clone())
        })
        .collect();
    inbox.sort();
    inbox
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_envelope_delivered_exactly_once((p, sched) in arb_schedule(), cfg in arb_config()) {
        let sched_ref = &sched;
        let out = run(p, move |ctx| {
            let mut q = MessageQueue::new(ctx, cfg);
            let mut inbox: Vec<Vec<u64>> = Vec::new();
            let me = ctx.rank();
            for (dest, payload) in &sched_ref[me] {
                q.post(ctx, *dest, payload);
                // interleave polling like the real algorithms
                q.poll(ctx, &mut |_c, env| inbox.push(env.payload.to_vec()));
            }
            q.finish(ctx, &mut |_c, env| inbox.push(env.payload.to_vec()));
            inbox.sort();
            inbox
        });
        for (me, inbox) in out.results.iter().enumerate() {
            prop_assert_eq!(inbox, &expected_inbox(p, &sched, me), "rank {}", me);
        }
    }

    #[test]
    fn consecutive_exchanges_are_isolated((p, sched) in arb_schedule(), cfg in arb_config()) {
        // run the same schedule twice through one queue: each round must
        // deliver exactly its own envelopes
        let sched_ref = &sched;
        let out = run(p, move |ctx| {
            let me = ctx.rank();
            let mut q = MessageQueue::new(ctx, cfg);
            let mut rounds: Vec<Vec<Vec<u64>>> = Vec::new();
            for _ in 0..2 {
                let mut inbox: Vec<Vec<u64>> = Vec::new();
                for (dest, payload) in &sched_ref[me] {
                    q.post(ctx, *dest, payload);
                }
                q.finish(ctx, &mut |_c, env| inbox.push(env.payload.to_vec()));
                inbox.sort();
                rounds.push(inbox);
            }
            rounds
        });
        for (me, rounds) in out.results.iter().enumerate() {
            let expect = expected_inbox(p, &sched, me);
            prop_assert_eq!(&rounds[0], &expect, "round 1, rank {}", me);
            prop_assert_eq!(&rounds[1], &expect, "round 2, rank {}", me);
        }
    }

    #[test]
    fn peak_buffer_bounded_by_delta_plus_one_record(
        (p, sched) in arb_schedule(),
        delta in 1usize..128,
    ) {
        let sched_ref = &sched;
        let out = run(p, move |ctx| {
            let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(delta));
            for (dest, payload) in &sched_ref[ctx.rank()] {
                q.post(ctx, *dest, payload);
            }
            q.finish(ctx, &mut |_c, _e| {});
            ctx.counters().peak_buffered_words
        });
        // a post may overshoot δ by at most one record (header 2 + payload ≤ 5);
        // relays buffered while still producing can add one more in-flight
        // message worth of records per poll
        let max_record = 2 + 5;
        let sum_in_flight: usize = sched.iter().map(|s| s.len() * max_record).sum();
        for &peak in &out.results {
            prop_assert!(
                peak <= (delta + max_record + sum_in_flight) as u64,
                "peak {} way beyond delta {}", peak, delta
            );
        }
    }

    #[test]
    fn exchange_terminates_and_respects_memory_lemma(
        (p, sched) in arb_schedule(),
        delta in 1usize..64,
        routing in prop_oneof![Just(Routing::Direct), Just(Routing::Grid)],
    ) {
        // The §IV-A memory lemma, as the conformance linter states it: with
        // `delta: Some(d)` the buffered volume never exceeds d plus one
        // maximal record under direct routing, and 2d plus two maximal
        // records under grid routing (a poll may append one whole incoming
        // relay aggregate before flushing). And the exchange must terminate
        // — a stall becomes a deadlock report, not a hung suite.
        let cfg = QueueConfig { delta: Some(delta), routing };
        let body_sched = sched.clone();
        let out = run_guarded(
            p,
            &SimOptions::default(),
            Duration::from_secs(30),
            move |ctx| {
                let mut q = MessageQueue::new(ctx, cfg);
                let mut got = 0u64;
                let me = ctx.rank();
                for (dest, payload) in &body_sched[me] {
                    q.post(ctx, *dest, payload);
                    q.poll(ctx, &mut |_c, _e| got += 1);
                }
                q.finish(ctx, &mut |_c, _e| got += 1);
                (got, ctx.counters().peak_buffered_words)
            },
        )
        .unwrap_or_else(|report| panic!("exchange failed to terminate: {report}"));
        let max_record: u64 = sched
            .iter()
            .flatten()
            .map(|(_, payload)| HEADER_WORDS + payload.len() as u64)
            .max()
            .unwrap_or(0);
        let bound = match routing {
            Routing::Direct => delta as u64 + max_record,
            Routing::Grid => 2 * delta as u64 + 2 * max_record,
        };
        for (me, &(got, peak)) in out.output.results.iter().enumerate() {
            prop_assert_eq!(
                got as usize,
                expected_inbox(p, &sched, me).len(),
                "rank {} delivery count", me
            );
            prop_assert!(
                peak <= bound,
                "rank {} peak {} exceeds the memory bound {} (delta {}, routing {:?})",
                me, peak, bound, delta, routing
            );
        }
    }
}

//! Golden checksums pinning the generators bit-for-bit: the reproducibility
//! contract of the KaGen substitute (DESIGN.md: "generated graphs are
//! bit-stable across toolchain upgrades"). If any of these change, every
//! recorded experiment changes with them — bump deliberately, never
//! accidentally.

use tricount_gen::{Dataset, Family};
use tricount_graph::Csr;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn checksum(g: &Csr) -> u64 {
    let mut acc = g.num_vertices().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ g.num_edges();
    for (u, v) in g.edges() {
        acc ^= mix(u.wrapping_mul(1_000_003).wrapping_add(v));
    }
    acc
}

#[test]
fn family_checksums_are_stable() {
    let goldens = [
        (Family::Rgg2d, 0x583a0d80049ba70bu64),
        (Family::Rhg, 0x51967adec80361c7),
        (Family::Gnm, 0x64e8bb4e4f6b2e9c),
        (Family::Rmat, 0x104ab9e7107c3c30),
    ];
    for (fam, want) in goldens {
        let got = checksum(&fam.generate(512, 123));
        assert_eq!(got, want, "{fam:?} changed: 0x{got:016x}");
    }
}

#[test]
fn dataset_checksums_are_stable() {
    let goldens = [
        (Dataset::LiveJournal, 0x3d9456449d42755eu64),
        (Dataset::Orkut, 0x0c449f4e3f334c42),
        (Dataset::Twitter, 0xc214fe1496ced059),
        (Dataset::Friendster, 0xbfdcbb0729646b29),
        (Dataset::Uk2007, 0xc041c83e35b9ae5b),
        (Dataset::Webbase2001, 0x50c6b53e858dfcfa),
        (Dataset::RoadEurope, 0xc7a5b95ca3b5a6c9),
        (Dataset::RoadUsa, 0xea89099a1893bf36),
    ];
    for (ds, want) in goldens {
        let got = checksum(&ds.generate(512, 123));
        assert_eq!(got, want, "{ds:?} changed: 0x{got:016x}");
    }
}

//! Road-network-like graphs: the proxy family for the paper's `europe` and
//! `usa` DIMACS instances (§V-C). Road networks have low, nearly uniform
//! degree, high diameter, tiny cuts under contiguous partitioning, and very
//! few triangles — the regime where the paper observes TriC's single-batch
//! communication winning at small `p`.
//!
//! The model: a `w × h` grid of intersections with row-major ids (so 1D
//! partitions are horizontal strips with `O(w)` cut edges), where each
//! grid edge exists with probability `p_keep` (missing roads), plus sparse
//! random diagonal shortcuts that close the occasional triangle, matching
//! the low-but-nonzero triangle density of real road networks.

use tricount_graph::{Csr, EdgeList};

use crate::rng::Rng;

/// Parameters of the road-like model.
#[derive(Debug, Clone, Copy)]
pub struct RoadParams {
    /// Grid width.
    pub width: u64,
    /// Grid height.
    pub height: u64,
    /// Probability of keeping each grid edge.
    pub p_keep: f64,
    /// Probability of adding each diagonal shortcut.
    pub p_diag: f64,
}

impl RoadParams {
    /// A square-ish road network with `≈ n` vertices and realistic defaults.
    pub fn with_vertices(n: u64) -> Self {
        let side = (n as f64).sqrt().ceil() as u64;
        RoadParams {
            width: side,
            height: side.max(1),
            p_keep: 0.92,
            p_diag: 0.03,
        }
    }
}

/// Generates a road-like graph with `width·height` vertices.
pub fn road(params: &RoadParams, seed: u64) -> Csr {
    let (w, h) = (params.width, params.height);
    let n = w * h;
    let mut rng = Rng::new(seed ^ 0x524f_4144); // "ROAD"
    let id = |x: u64, y: u64| y * w + x;
    let mut el = EdgeList::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w && rng.next_bool(params.p_keep) {
                el.push(id(x, y), id(x + 1, y));
            }
            if y + 1 < h && rng.next_bool(params.p_keep) {
                el.push(id(x, y), id(x, y + 1));
            }
            if x + 1 < w && y + 1 < h && rng.next_bool(params.p_diag) {
                el.push(id(x, y), id(x + 1, y + 1));
            }
            if x > 0 && y + 1 < h && rng.next_bool(params.p_diag) {
                el.push(id(x, y), id(x - 1, y + 1));
            }
        }
    }
    el.canonicalize();
    Csr::from_edges(n, &el)
}

/// Road-like graph with `≈ n` vertices and default densities.
pub fn road_default(n: u64, seed: u64) -> Csr {
    road(&RoadParams::with_vertices(n), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(road_default(1000, 3), road_default(1000, 3));
        assert_ne!(road_default(1000, 3), road_default(1000, 4));
    }

    #[test]
    fn degrees_are_low_and_uniform() {
        let g = road_default(10_000, 1);
        let max = *g.degrees().iter().max().unwrap();
        assert!(max <= 8, "road max degree {max}");
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((1.0..4.5).contains(&avg), "avg {avg}");
    }

    #[test]
    fn row_major_ids_give_tiny_strip_cuts() {
        let params = RoadParams {
            width: 100,
            height: 100,
            p_keep: 1.0,
            p_diag: 0.0,
        };
        let g = road(&params, 0);
        // a horizontal strip boundary crosses exactly `width` edges
        let crossing = g.edges().filter(|&(u, v)| u < 5000 && v >= 5000).count();
        assert_eq!(crossing, 100);
    }

    #[test]
    fn diagonals_create_some_triangles() {
        let params = RoadParams {
            width: 60,
            height: 60,
            p_keep: 1.0,
            p_diag: 0.5,
        };
        let g = road(&params, 2);
        // count triangles naively on this small instance
        let mut t = 0u64;
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if u <= v {
                    continue;
                }
                for &x in g.neighbors(u) {
                    if x > u && g.has_edge(v, x) {
                        t += 1;
                    }
                }
            }
        }
        assert!(t > 0, "diagonals must close triangles");
    }
}

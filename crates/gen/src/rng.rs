//! In-tree deterministic pseudo-random number generation.
//!
//! The generators of this crate must be bit-stable across toolchain and
//! dependency upgrades (KaGen-style reproducibility: the same `(family,
//! parameters, seed)` always yields the same graph, which is what makes the
//! weak-scaling experiments rerunnable). We therefore implement the small
//! amount of PRNG machinery needed here instead of depending on `rand`:
//! SplitMix64 for seeding/splitting and xoshiro256\*\* as the workhorse
//! stream.

/// SplitMix64 step: the standard 64-bit finalizer-based generator, used to
/// derive independent seeds (e.g. one substream per vertex or per chunk).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256\*\* stream seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent substream for `(seed, stream)`; used to give
    /// every vertex/chunk its own deterministic stream regardless of
    /// generation order.
    pub fn substream(seed: u64, stream: u64) -> Self {
        let mut sm = seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let _ = splitmix64(&mut sm);
        Self::new(splitmix64(&mut sm))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift; slight
    /// modulo bias is irrelevant at the bounds used here but we reject
    /// anyway for exactness).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // rejection sampling on the top bits
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn substreams_are_independent_of_order() {
        let mut s5 = Rng::substream(7, 5);
        let mut s9 = Rng::substream(7, 9);
        let a5 = s5.next_u64();
        let a9 = s9.next_u64();
        // regenerate in the other order
        let mut t9 = Rng::substream(7, 9);
        let mut t5 = Rng::substream(7, 5);
        assert_eq!(t9.next_u64(), a9);
        assert_eq!(t5.next_u64(), a5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_hits_everything() {
        let mut r = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.next_below(10) as usize;
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

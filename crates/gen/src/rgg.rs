//! 2D random geometric graphs (paper §V-C): `n` points uniform in the unit
//! square, an edge whenever the Euclidean distance is below a radius `r`.
//! The radius is chosen so that the expected number of edges is `16n`
//! (Graph 500's edge factor), as in the paper.
//!
//! Vertex ids are assigned in row-major *cell* order, so a contiguous 1D
//! partition corresponds to horizontal strips of the unit square — the
//! geometric locality that makes RGG the friendliest family for CETRIC's
//! contraction (small cut). KaGen's communication-free generator produces
//! the same id-locality; sorting by cell here is the sequential equivalent.

use tricount_graph::{Csr, EdgeList};

use crate::rng::Rng;

/// Radius giving expected average degree `target_avg_deg` for `n` points in
/// the unit square (`E[deg] ≈ n·π·r²`, ignoring boundary effects).
pub fn radius_for_avg_degree(n: u64, target_avg_deg: f64) -> f64 {
    (target_avg_deg / (std::f64::consts::PI * n as f64)).sqrt()
}

/// Generates an RGG2D with `n` vertices and radius `r`.
pub fn rgg2d(n: u64, r: f64, seed: u64) -> Csr {
    assert!(r > 0.0 && r < 1.0);
    let mut rng = Rng::new(seed ^ 0x5247_4700); // "RGG"
    let mut pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();

    // grid of cells with side ≥ r → neighbors confined to 3×3 cells
    let cells_per_side = ((1.0 / r).floor() as usize).clamp(1, 1 << 12);
    let cell = 1.0 / cells_per_side as f64;
    let cell_of = |x: f64, y: f64| {
        let cx = ((x / cell) as usize).min(cells_per_side - 1);
        let cy = ((y / cell) as usize).min(cells_per_side - 1);
        (cy, cx)
    };
    // id assignment: sort points by (cell row, cell col, y, x) → row-major
    // locality
    pts.sort_by(|a, b| {
        let ca = cell_of(a.0, a.1);
        let cb = cell_of(b.0, b.1);
        (ca, a.1, a.0).partial_cmp(&(cb, b.1, b.0)).unwrap()
    });

    // bucket points by cell
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cy, cx) = cell_of(x, y);
        buckets[cy * cells_per_side + cx].push(i as u32);
    }

    let r2 = r * r;
    let mut el = EdgeList::new();
    for cy in 0..cells_per_side {
        for cx in 0..cells_per_side {
            let here = &buckets[cy * cells_per_side + cx];
            // neighbor cells at offsets covering each unordered pair once:
            // same cell (i<j), E, S, SW, SE
            for &i in here {
                let (xi, yi) = pts[i as usize];
                let mut consider = |j: u32| {
                    if i < j {
                        let (xj, yj) = pts[j as usize];
                        let (dx, dy) = (xi - xj, yi - yj);
                        if dx * dx + dy * dy <= r2 {
                            el.push(i as u64, j as u64);
                        }
                    }
                };
                for &j in here {
                    consider(j);
                }
                for (oy, ox) in [(0isize, 1isize), (1, -1), (1, 0), (1, 1)] {
                    let ny = cy as isize + oy;
                    let nx = cx as isize + ox;
                    if ny < 0
                        || nx < 0
                        || ny >= cells_per_side as isize
                        || nx >= cells_per_side as isize
                    {
                        continue;
                    }
                    for &j in &buckets[ny as usize * cells_per_side + nx as usize] {
                        // cross-cell pairs are unordered by construction;
                        // take them all (guard only the same-cell case)
                        let (xj, yj) = pts[j as usize];
                        let (dx, dy) = (xi - xj, yi - yj);
                        if dx * dx + dy * dy <= r2 {
                            el.push(i as u64, j as u64);
                        }
                    }
                }
            }
        }
    }
    el.canonicalize();
    Csr::from_edges(n, &el)
}

/// RGG2D with the paper's default density (expected `16n` edges, i.e.
/// average degree 32).
pub fn rgg2d_default(n: u64, seed: u64) -> Csr {
    rgg2d(n, radius_for_avg_degree(n, 32.0), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(rgg2d_default(500, 9), rgg2d_default(500, 9));
    }

    #[test]
    fn matches_brute_force_on_small_instance() {
        let n = 200u64;
        let r = 0.08;
        let g = rgg2d(n, r, 4);
        // rebuild points exactly as the generator does
        let mut rng = Rng::new(4 ^ 0x5247_4700);
        let mut pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        let cells_per_side = ((1.0 / r).floor() as usize).clamp(1, 1 << 12);
        let cell = 1.0 / cells_per_side as f64;
        let cell_of = |x: f64, y: f64| {
            let cx = ((x / cell) as usize).min(cells_per_side - 1);
            let cy = ((y / cell) as usize).min(cells_per_side - 1);
            (cy, cx)
        };
        pts.sort_by(|a, b| {
            let ca = cell_of(a.0, a.1);
            let cb = cell_of(b.0, b.1);
            (ca, a.1, a.0).partial_cmp(&(cb, b.1, b.0)).unwrap()
        });
        let mut expect = 0u64;
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if dx * dx + dy * dy <= r * r {
                    expect += 1;
                }
            }
        }
        assert_eq!(g.num_edges(), expect);
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn density_near_target() {
        let n = 4000u64;
        let g = rgg2d_default(n, 2);
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        // boundary effects reduce the degree slightly; stay within ±40%
        assert!((19.0..45.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn ids_have_spatial_locality() {
        // with row-major cell ids, most edges connect nearby ids: the mean
        // id distance across edges must be far below the random-graph
        // expectation (≈ n/3)
        let n = 2000u64;
        let g = rgg2d_default(n, 6);
        let (sum, cnt) = g
            .edges()
            .fold((0u64, 0u64), |(s, c), (u, v)| (s + (v - u), c + 1));
        let mean = sum as f64 / cnt as f64;
        assert!(mean < n as f64 / 8.0, "mean id distance {mean}");
    }
}

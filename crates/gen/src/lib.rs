//! Deterministic synthetic graph generators — the reproduction's stand-in
//! for KaGen (Funke et al., the generator suite the paper uses for its weak
//! scaling experiments, §V-C).
//!
//! Families:
//! * [`gnm()`] — Erdős–Rényi `G(n, m)` (no locality, uniform degrees).
//! * [`rgg2d()`] — 2D random geometric graphs (strong locality).
//! * [`rhg()`] — random hyperbolic graphs (power law γ, clustering *and*
//!   locality).
//! * [`rmat()`] — Graph 500 R-MAT (extreme skew, hubs at low ids).
//! * [`road()`] — planar road-like grids (low uniform degree, tiny cuts).
//! * [`Dataset`] — scaled-down proxies for the eight real-world instances of
//!   the paper's Table I, with the paper's published statistics attached.
//!
//! All generators are seeded and bit-deterministic (in-tree xoshiro/SplitMix
//! RNG), so every experiment in this repository is exactly rerunnable.

#![warn(missing_docs)]

pub mod datasets;
pub mod distributed;
pub mod gnm;
pub mod rgg;
pub mod rhg;
pub mod rmat;
pub mod rng;
pub mod road;

pub use datasets::{Dataset, PaperStats};
pub use distributed::{gnm_local, rgg2d_distributed, rmat_local, RggLayout};
pub use gnm::gnm;
pub use rgg::{radius_for_avg_degree, rgg2d, rgg2d_default};
pub use rhg::{rhg, rhg_default, RhgParams};
pub use rmat::{rmat, rmat_default, rmat_hub_heavy, RmatParams};
pub use rng::Rng;
pub use road::{road, road_default, RoadParams};

use tricount_graph::Csr;

/// The synthetic families used in the weak-scaling experiments (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// 2D random geometric graph.
    Rgg2d,
    /// Random hyperbolic graph (γ = 2.8).
    Rhg,
    /// Erdős–Rényi G(n, m).
    Gnm,
    /// Graph 500 R-MAT.
    Rmat,
}

impl Family {
    /// All weak-scaling families in the paper's order.
    pub fn all() -> [Family; 4] {
        [Family::Rgg2d, Family::Rhg, Family::Gnm, Family::Rmat]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Rgg2d => "RGG2D",
            Family::Rhg => "RHG",
            Family::Gnm => "GNM",
            Family::Rmat => "RMAT",
        }
    }

    /// Generates an instance with `n` vertices and the paper's default
    /// density for the family (expected edge factor 16).
    pub fn generate(self, n: u64, seed: u64) -> Csr {
        match self {
            Family::Rgg2d => rgg2d_default(n, seed),
            Family::Rhg => rhg_default(n, seed),
            Family::Gnm => gnm(n, 16 * n, seed),
            Family::Rmat => rmat_default(n.next_power_of_two().trailing_zeros(), seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate() {
        for fam in Family::all() {
            let g = fam.generate(256, 3);
            assert!(g.num_edges() > 0, "{fam:?}");
            g.validate_symmetric().unwrap();
        }
    }
}

//! Erdős–Rényi `G(n, m)` graphs: `m` distinct edges chosen uniformly from
//! all `\binom{n}{2}` possibilities (paper §V-C). These graphs have *no
//! locality* and an almost uniform degree distribution — the family on which
//! the paper observes that CETRIC's contraction cannot pay off.

use tricount_graph::hash::FxHashSet;
use tricount_graph::{Csr, EdgeList};

use crate::rng::Rng;

/// Generates `G(n, m)` with the given seed. Panics if `m` exceeds the number
/// of possible edges.
pub fn gnm(n: u64, m: u64, seed: u64) -> Csr {
    let possible = n * n.saturating_sub(1) / 2;
    assert!(m <= possible, "G(n,m): m={m} > {possible} possible edges");
    let mut rng = Rng::new(seed ^ 0x474e_4d00); // "GNM"
    let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
    seen.reserve(m as usize);
    let mut el = EdgeList::new();
    while (seen.len() as u64) < m {
        let u = rng.next_below(n);
        let v = rng.next_below(n);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if seen.insert(e) {
            el.push(e.0, e.1);
        }
    }
    el.canonicalize();
    Csr::from_edges(n, &el)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = gnm(100, 500, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn deterministic() {
        assert_eq!(gnm(64, 256, 7), gnm(64, 256, 7));
    }

    #[test]
    fn seeds_change_graph() {
        assert_ne!(gnm(64, 256, 7), gnm(64, 256, 8));
    }

    #[test]
    fn dense_extreme_is_complete() {
        let n = 10u64;
        let g = gnm(n, n * (n - 1) / 2, 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), n - 1);
        }
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let n = 1000u64;
        let g = gnm(n, 16 * n, 5);
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        let max = g.degrees().into_iter().max().unwrap() as f64;
        // Binomial tails: max degree stays within a small factor of the mean.
        assert!(max < 3.0 * avg, "max {max} avg {avg}");
    }
}

//! R-MAT graphs (paper §V-C): the recursive-matrix model of the Graph 500
//! benchmark. The adjacency matrix is subdivided into four quadrants with
//! probabilities `(a, b, c, d)`; each edge descends `scale` levels. We use
//! the Graph 500 defaults `(0.57, 0.19, 0.19, 0.05)`, which produce the
//! heavily skewed degree distribution (hubs at low ids) on which the paper
//! reports the worst scaling behaviour of all synthetic families.

use tricount_graph::hash::FxHashSet;
use tricount_graph::{Csr, EdgeList};

use crate::rng::Rng;

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// `log₂` of the number of vertices.
    pub scale: u32,
    /// Number of (attempted) edges; duplicates and self loops are dropped,
    /// so the simple graph has somewhat fewer.
    pub edges: u64,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// Graph 500 defaults with edge factor 16.
    pub fn graph500(scale: u32) -> Self {
        RmatParams {
            scale,
            edges: 16 << scale,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// A hub-heavy variant with the upper-left quadrant probability pushed
    /// well past the Graph 500 default (`a = 0.7`): mass concentrates on
    /// the low-id rows, so a few vertices collect a large fraction of all
    /// endpoints. This is the adversarial skew the adaptive intersection
    /// kernels (galloping / hub bitmaps) are built for — the kernel
    /// ablation benches run on exactly this configuration.
    pub fn hub_heavy(scale: u32) -> Self {
        RmatParams {
            scale,
            edges: 16 << scale,
            a: 0.70,
            b: 0.14,
            c: 0.14,
        }
    }
}

/// Generates an R-MAT graph (undirected simple graph after symmetrisation
/// and deduplication).
pub fn rmat(params: &RmatParams, seed: u64) -> Csr {
    let n = 1u64 << params.scale;
    let mut rng = Rng::new(seed ^ 0x524d_4154); // "RMAT"
    let (pa, pb, pc) = (params.a, params.b, params.c);
    assert!(pa + pb + pc <= 1.0 + 1e-9);
    let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
    let mut el = EdgeList::new();
    for _ in 0..params.edges {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..params.scale {
            let x = rng.next_f64();
            let (du, dv) = if x < pa {
                (0, 0)
            } else if x < pa + pb {
                (0, 1)
            } else if x < pa + pb + pc {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if seen.insert(e) {
            el.push(e.0, e.1);
        }
    }
    el.canonicalize();
    Csr::from_edges(n, &el)
}

/// R-MAT with Graph 500 defaults at the given scale.
pub fn rmat_default(scale: u32, seed: u64) -> Csr {
    rmat(&RmatParams::graph500(scale), seed)
}

/// R-MAT with the [`RmatParams::hub_heavy`] quadrant probabilities at the
/// given scale.
pub fn rmat_hub_heavy(scale: u32, seed: u64) -> Csr {
    rmat(&RmatParams::hub_heavy(scale), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let g = rmat_default(10, 5);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 0);
        g.validate_symmetric().unwrap();
        assert_eq!(g, rmat_default(10, 5));
        assert_ne!(g, rmat_default(10, 6));
    }

    #[test]
    fn skewed_degrees_with_hubs_at_low_ids() {
        let g = rmat_default(12, 1);
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap();
        let n = g.num_vertices() as usize;
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(max as f64 > 10.0 * avg, "max {max} avg {avg}");
        // hubs concentrate in the low-id quarter
        let argmax = degs.iter().enumerate().max_by_key(|(_, &d)| d).unwrap().0;
        assert!(argmax < n / 4, "hub at id {argmax}");
    }

    #[test]
    fn duplicate_suppression_keeps_simple_graph() {
        let params = RmatParams {
            scale: 6,
            edges: 4096, // heavy oversampling of a 64-vertex graph
            a: 0.57,
            b: 0.19,
            c: 0.19,
        };
        let g = rmat(&params, 3);
        g.validate_symmetric().unwrap();
        assert!(g.num_edges() <= 64 * 63 / 2);
    }

    #[test]
    fn hub_heavy_is_more_skewed_than_graph500() {
        let base = rmat_default(11, 9);
        let heavy = rmat_hub_heavy(11, 9);
        heavy.validate_symmetric().unwrap();
        assert_eq!(heavy, rmat_hub_heavy(11, 9));
        let skew = |g: &Csr| {
            let degs = g.degrees();
            let max = *degs.iter().max().unwrap() as f64;
            max / (2.0 * g.num_edges() as f64 / g.num_vertices() as f64)
        };
        assert!(
            skew(&heavy) > 1.5 * skew(&base),
            "hub-heavy skew {} vs graph500 {}",
            skew(&heavy),
            skew(&base)
        );
    }

    #[test]
    fn uniform_probabilities_resemble_gnm() {
        let params = RmatParams {
            scale: 10,
            edges: 8 << 10,
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(&params, 7);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        let max = *g.degrees().iter().max().unwrap() as f64;
        assert!(max < 4.0 * avg, "uniform R-MAT should not have hubs");
    }
}

//! Scaled-down proxies for the paper's real-world instances (Table I).
//!
//! The originals (up to 3.3 G edges / 50 GB) are neither redistributable nor
//! tractable on this host, so every instance is substituted by a synthetic
//! family whose *character* — degree skew, clustering, id-locality, cut
//! size — matches the role the instance plays in the paper's evaluation:
//! social networks → R-MAT (hubs, skew), web graphs → RHG (power law *and*
//! strong locality/clustering), road networks → the planar road-like model.
//! The paper's published statistics are kept alongside so harnesses can
//! print paper-vs-proxy tables (see `EXPERIMENTS.md`).

use tricount_graph::Csr;

use crate::rhg::{rhg, RhgParams};
use crate::rmat::{rmat, RmatParams};
use crate::road::road_default;

/// The eight real-world instances of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// SNAP soc-LiveJournal (social).
    LiveJournal,
    /// SNAP com-Orkut (social, dense).
    Orkut,
    /// Kwak et al. Twitter follower graph (social, extreme skew).
    Twitter,
    /// KONECT Friendster (social, huge but triangle-sparse).
    Friendster,
    /// LAW uk-2007-05 web crawl (web, extreme clustering).
    Uk2007,
    /// LAW webbase-2001 (web, sparse).
    Webbase2001,
    /// DIMACS Europe road network.
    RoadEurope,
    /// DIMACS USA road network.
    RoadUsa,
}

/// The statistics the paper reports for an instance in Table I.
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// Instance name as printed in the paper.
    pub name: &'static str,
    /// Family as grouped in Table I.
    pub family: &'static str,
    /// Vertices.
    pub n: u64,
    /// Undirected edges.
    pub m: u64,
    /// Wedges.
    pub wedges: u64,
    /// Triangles.
    pub triangles: u64,
}

const M: u64 = 1_000_000;

impl Dataset {
    /// All datasets in Table I order.
    pub fn all() -> [Dataset; 8] {
        [
            Dataset::LiveJournal,
            Dataset::Orkut,
            Dataset::Twitter,
            Dataset::Friendster,
            Dataset::Uk2007,
            Dataset::Webbase2001,
            Dataset::RoadEurope,
            Dataset::RoadUsa,
        ]
    }

    /// The paper's published statistics (Table I).
    pub fn paper_stats(self) -> PaperStats {
        match self {
            Dataset::LiveJournal => PaperStats {
                name: "live-journal",
                family: "social",
                n: 5 * M,
                m: 43 * M,
                wedges: 681 * M,
                triangles: 286 * M,
            },
            Dataset::Orkut => PaperStats {
                name: "orkut",
                family: "social",
                n: 3 * M,
                m: 117 * M,
                wedges: 4_040 * M,
                triangles: 628 * M,
            },
            Dataset::Twitter => PaperStats {
                name: "twitter",
                family: "social",
                n: 42 * M,
                m: 1_203 * M,
                wedges: 150_508 * M,
                triangles: 34_825 * M,
            },
            Dataset::Friendster => PaperStats {
                name: "friendster",
                family: "social",
                n: 68 * M,
                m: 1_812 * M,
                wedges: 82_286 * M,
                triangles: 4_177 * M,
            },
            Dataset::Uk2007 => PaperStats {
                name: "uk-2007-05",
                family: "web",
                n: 106 * M,
                m: 3_302 * M,
                wedges: 389_061 * M,
                triangles: 286_701 * M,
            },
            Dataset::Webbase2001 => PaperStats {
                name: "webbase-2001",
                family: "web",
                n: 118 * M,
                m: 855 * M,
                wedges: 15_393 * M,
                triangles: 12_262 * M,
            },
            Dataset::RoadEurope => PaperStats {
                name: "europe",
                family: "road",
                n: 18 * M,
                m: 22 * M,
                wedges: 8 * M,
                triangles: 697_519,
            },
            Dataset::RoadUsa => PaperStats {
                name: "usa",
                family: "road",
                n: 24 * M,
                m: 29 * M,
                wedges: 11 * M,
                triangles: 438_804,
            },
        }
    }

    /// Generates the proxy instance with roughly `n` vertices.
    ///
    /// Per-instance proxy choices:
    /// * live-journal — R-MAT, edge factor 9 (paper avg degree ≈ 17).
    /// * orkut — R-MAT, edge factor 39, milder skew (dense social).
    /// * twitter — R-MAT, edge factor 29, *stronger* skew (a = 0.65): the
    ///   instance dominated by celebrity hubs and wedge explosion.
    /// * friendster — R-MAT, edge factor 27, weak skew: huge but relatively
    ///   triangle-poor.
    /// * uk-2007-05 — RHG γ = 2.2, avg degree 62: heavy clustering + strong
    ///   id locality, like a host-sorted crawl.
    /// * webbase-2001 — RHG γ = 2.6, avg degree 15: sparse web graph, still
    ///   local — the instance where the paper sees CETRIC's contraction pay
    ///   off up to 2¹¹ PEs.
    /// * europe / usa — road-like grids (avg degree ≈ 2.4).
    pub fn generate(self, n: u64, seed: u64) -> Csr {
        let scale = n.next_power_of_two().trailing_zeros();
        let seed = seed ^ (self as u64) << 32;
        match self {
            Dataset::LiveJournal => rmat(
                &RmatParams {
                    scale,
                    edges: 9 << scale,
                    a: 0.57,
                    b: 0.19,
                    c: 0.19,
                },
                seed,
            ),
            Dataset::Orkut => rmat(
                &RmatParams {
                    scale,
                    edges: 39 << scale,
                    a: 0.45,
                    b: 0.22,
                    c: 0.22,
                },
                seed,
            ),
            Dataset::Twitter => rmat(
                &RmatParams {
                    scale,
                    edges: 29 << scale,
                    a: 0.65,
                    b: 0.15,
                    c: 0.15,
                },
                seed,
            ),
            Dataset::Friendster => rmat(
                &RmatParams {
                    scale,
                    edges: 27 << scale,
                    a: 0.45,
                    b: 0.25,
                    c: 0.25,
                },
                seed,
            ),
            Dataset::Uk2007 => rhg(
                &RhgParams {
                    n,
                    gamma: 2.2,
                    avg_deg: 62.0,
                },
                seed,
            ),
            Dataset::Webbase2001 => rhg(
                &RhgParams {
                    n,
                    gamma: 2.6,
                    avg_deg: 15.0,
                },
                seed,
            ),
            Dataset::RoadEurope => road_default(n, seed),
            Dataset::RoadUsa => road_default(n, seed ^ 0x55_53_41),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_proxies_generate_valid_graphs() {
        for ds in Dataset::all() {
            let g = ds.generate(512, 1);
            assert!(g.num_vertices() > 0, "{ds:?}");
            assert!(g.num_edges() > 0, "{ds:?}");
            g.validate_symmetric()
                .unwrap_or_else(|e| panic!("{ds:?}: {e}"));
        }
    }

    #[test]
    fn proxies_are_deterministic() {
        for ds in Dataset::all() {
            assert_eq!(ds.generate(256, 9), ds.generate(256, 9), "{ds:?}");
        }
    }

    #[test]
    fn family_characters_hold() {
        // social proxy: skewed; road proxy: uniform-low; web proxy: dense
        // neighborhoods relative to road
        let tw = Dataset::Twitter.generate(2048, 1);
        let road = Dataset::RoadEurope.generate(2048, 1);
        let max_tw = *tw.degrees().iter().max().unwrap() as f64;
        let avg_tw = 2.0 * tw.num_edges() as f64 / tw.num_vertices() as f64;
        assert!(max_tw > 10.0 * avg_tw, "twitter proxy must be skewed");
        let max_road = *road.degrees().iter().max().unwrap();
        assert!(max_road <= 8, "road proxy must be low degree");
    }

    #[test]
    fn paper_stats_table_is_complete() {
        for ds in Dataset::all() {
            let s = ds.paper_stats();
            assert!(s.n > 0 && s.m > 0 && s.wedges > 0 && s.triangles > 0);
            assert!(!s.name.is_empty());
        }
    }
}

//! Random hyperbolic graphs (threshold model), the paper's RHG family
//! (§V-C): `n` points on a hyperbolic disk of radius `R`, radial density
//! `α·sinh(αr)/(cosh(αR)−1)` with `α = (γ−1)/2`, an edge whenever the
//! hyperbolic distance is at most `R`. The result has a power-law degree
//! distribution with exponent `γ` (the paper uses `γ = 2.8`) and strong
//! clustering — the family where the degree-exchange skew shows up.
//!
//! Generation uses the standard band technique (à la von Looz et al., which
//! KaGen builds on): the disk is cut into `O(log n)` radial bands; points
//! are sorted by angle within each band; for a query point only the angular
//! window that can possibly be within distance `R` of it (computed against
//! the band's inner radius) is examined.
//!
//! Ids are assigned by ascending angle, giving contiguous partitions angular
//! locality.

use tricount_graph::{Csr, EdgeList};

use crate::rng::Rng;

const TAU: f64 = std::f64::consts::TAU;

/// Parameters of the threshold RHG model.
#[derive(Debug, Clone, Copy)]
pub struct RhgParams {
    /// Number of vertices.
    pub n: u64,
    /// Power-law exponent `γ > 2`.
    pub gamma: f64,
    /// Target average degree.
    pub avg_deg: f64,
}

/// Disk radius yielding the target average degree, from the first-order
/// expectation `k̄ ≈ ξ·n·e^{−R/2}` with `ξ = 2α²/(π(α−1/2)²)`
/// (Gugelmann et al.). Exact calibration is not required — tests assert the
/// realised degree lands within a small factor.
pub fn radius_for(params: &RhgParams) -> f64 {
    let alpha = (params.gamma - 1.0) / 2.0;
    assert!(alpha > 0.5, "gamma must exceed 2");
    let xi = 2.0 * alpha * alpha / (std::f64::consts::PI * (alpha - 0.5).powi(2));
    2.0 * (xi * params.n as f64 / params.avg_deg).ln()
}

/// Generates a threshold RHG.
pub fn rhg(params: &RhgParams, seed: u64) -> Csr {
    let n = params.n;
    let alpha = (params.gamma - 1.0) / 2.0;
    let r_disk = radius_for(params);
    let cosh_r = r_disk.cosh();
    let mut rng = Rng::new(seed ^ 0x5248_4700); // "RHG"

    // sample polar coordinates; radial inverse CDF of α·sinh(αr)/(cosh(αR)−1)
    let mut pts: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let u = rng.next_f64();
            let r = ((1.0 + u * (alpha * r_disk).cosh() - u).max(1.0)).acosh() / alpha;
            let theta = rng.next_f64() * TAU;
            (theta, r)
        })
        .collect();
    // ids by ascending angle → angular locality for contiguous partitions
    pts.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // radial bands: geometric boundaries from 0 to R
    let num_bands = ((n as f64).log2().ceil() as usize).max(1);
    let mut boundaries = Vec::with_capacity(num_bands + 1);
    for b in 0..=num_bands {
        boundaries.push(r_disk * b as f64 / num_bands as f64);
    }
    // band membership, each band sorted by angle (points are already sorted
    // globally by angle, so per-band order is inherited)
    let band_of = |r: f64| {
        let mut b = ((r / r_disk) * num_bands as f64) as usize;
        if b >= num_bands {
            b = num_bands - 1;
        }
        b
    };
    let mut bands: Vec<Vec<u32>> = vec![Vec::new(); num_bands];
    for (i, &(_, r)) in pts.iter().enumerate() {
        bands[band_of(r)].push(i as u32);
    }

    // hyperbolic distance test: d(p,q) ≤ R ⇔
    //   cosh r_p cosh r_q − sinh r_p sinh r_q cos Δθ ≤ cosh R
    let connected = |p: (f64, f64), q: (f64, f64)| {
        let (tp, rp) = p;
        let (tq, rq) = q;
        let mut dt = (tp - tq).abs();
        if dt > TAU / 2.0 {
            dt = TAU - dt;
        }
        rp.cosh() * rq.cosh() - rp.sinh() * rq.sinh() * dt.cos() <= cosh_r
    };
    // max Δθ at which a point at radius r_p can connect to any point at
    // radius ≥ band_lo: cos Δθ ≥ (cosh r_p cosh b − cosh R)/(sinh r_p sinh b)
    let max_dtheta = |rp: f64, band_lo: f64| -> f64 {
        if band_lo <= 0.0 || rp <= 0.0 {
            return TAU; // everything is a candidate
        }
        let c = (rp.cosh() * band_lo.cosh() - cosh_r) / (rp.sinh() * band_lo.sinh());
        if c <= -1.0 {
            TAU
        } else if c >= 1.0 {
            0.0
        } else {
            c.acos()
        }
    };

    let mut el = EdgeList::new();
    for (i, &p) in pts.iter().enumerate() {
        let (theta_p, r_p) = p;
        let own_band = band_of(r_p);
        // only bands ≥ own band: pairs across bands are handled from the
        // point in the lower band; ties within a band use i < j.
        for (b, band) in bands.iter().enumerate().skip(own_band) {
            let window = max_dtheta(r_p, boundaries[b]);
            // find candidates with |Δθ| ≤ window via binary search on angle
            let lo_angle = theta_p - window;
            let hi_angle = theta_p + window;
            let mut scan = |from: f64, to: f64| {
                let start = band.partition_point(|&j| pts[j as usize].0 < from);
                for &j in &band[start..] {
                    let q = pts[j as usize];
                    if q.0 > to {
                        break;
                    }
                    let j_band = b;
                    let cross = j_band > own_band;
                    if (cross || (j as usize) > i) && connected(p, q) {
                        el.push(i as u64, j as u64);
                    }
                }
            };
            if window >= TAU / 2.0 {
                scan(f64::NEG_INFINITY, f64::INFINITY);
            } else {
                scan(lo_angle, hi_angle);
                // wrap-around windows
                if lo_angle < 0.0 {
                    scan(lo_angle + TAU, f64::INFINITY);
                }
                if hi_angle > TAU {
                    scan(f64::NEG_INFINITY, hi_angle - TAU);
                }
            }
        }
    }
    el.canonicalize();
    Csr::from_edges(n, &el)
}

/// RHG with the paper's parameters: `γ = 2.8`, average degree 32 (expected
/// `16n` edges).
pub fn rhg_default(n: u64, seed: u64) -> Csr {
    rhg(
        &RhgParams {
            n,
            gamma: 2.8,
            avg_deg: 32.0,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(params: &RhgParams, seed: u64) -> Csr {
        // regenerate points exactly and connect by the raw predicate
        let n = params.n;
        let alpha = (params.gamma - 1.0) / 2.0;
        let r_disk = radius_for(params);
        let cosh_r = r_disk.cosh();
        let mut rng = Rng::new(seed ^ 0x5248_4700);
        let mut pts: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let u = rng.next_f64();
                let r = ((1.0 + u * (alpha * r_disk).cosh() - u).max(1.0)).acosh() / alpha;
                let theta = rng.next_f64() * TAU;
                (theta, r)
            })
            .collect();
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut el = EdgeList::new();
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let (tp, rp) = pts[i];
                let (tq, rq) = pts[j];
                let mut dt = (tp - tq).abs();
                if dt > TAU / 2.0 {
                    dt = TAU - dt;
                }
                if rp.cosh() * rq.cosh() - rp.sinh() * rq.sinh() * dt.cos() <= cosh_r {
                    el.push(i as u64, j as u64);
                }
            }
        }
        el.canonicalize();
        Csr::from_edges(n, &el)
    }

    #[test]
    fn band_generation_matches_brute_force() {
        let params = RhgParams {
            n: 300,
            gamma: 2.8,
            avg_deg: 8.0,
        };
        let fast = rhg(&params, 13);
        let slow = brute_force(&params, 13);
        assert_eq!(fast, slow);
    }

    #[test]
    fn deterministic() {
        assert_eq!(rhg_default(400, 3), rhg_default(400, 3));
    }

    #[test]
    fn average_degree_in_range() {
        let n = 4000u64;
        let g = rhg_default(n, 1);
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        // first-order calibration: within a factor ~2 of the target 32
        assert!((12.0..80.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let n = 4000u64;
        let g = rhg_default(n, 2);
        let mut degs = g.degrees();
        degs.sort_unstable();
        let max = *degs.last().unwrap() as f64;
        let median = degs[degs.len() / 2] as f64;
        // power-law: hub degree far above the median
        assert!(max > 8.0 * median.max(1.0), "max {max} median {median}");
    }

    #[test]
    fn angular_locality_of_ids() {
        let n = 2000u64;
        let g = rhg_default(n, 4);
        let (sum, cnt) = g.edges().fold((0u64, 0u64), |(s, c), (u, v)| {
            // circular id distance
            let d = (v - u).min(n - (v - u));
            (s + d, c + 1)
        });
        let mean = sum as f64 / cnt as f64;
        // random ids would average n/4 in circular distance
        assert!(mean < n as f64 / 8.0, "mean circular id distance {mean}");
    }
}

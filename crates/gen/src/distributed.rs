//! Communication-free distributed graph generation — the defining property
//! of KaGen (Funke et al.), which the paper relies on for its weak-scaling
//! experiments ("without the need to load them from the file system").
//!
//! Every PE deterministically (re)computes exactly the part of the graph it
//! owns, with **zero communication**:
//!
//! * [`gnm_local`] / [`rmat_local`] — *recomputation-based*: the edge stream
//!   is a pure function of the seed, so each PE replays it and keeps the
//!   edges incident to its own vertex range. Work is O(m) per PE (KaGen
//!   avoids this with divide-and-conquer stream splitting; at simulation
//!   scale replaying is simpler and bit-identical to the central
//!   generators — asserted by tests).
//! * [`rgg2d_distributed`] — *genuinely scalable*: the unit square is cut
//!   into cells with side ≥ r, each cell's points come from an independent
//!   substream (Poissonized occupancy, standard for distributed RGG
//!   generation), ids are cell-major, and a PE generates only its own cells
//!   plus a one-cell halo. Per-PE work is proportional to its own subgraph.
//!   The result is partition-count-independent: the same seed yields the
//!   same global graph for every `p` (asserted by tests).

use tricount_graph::dist::LocalGraph;
use tricount_graph::{Partition, VertexId};

use crate::rng::Rng;
use crate::{gnm, rmat, RmatParams};

/// Recomputation-based local generation: builds PE `rank`'s [`LocalGraph`]
/// of `G(n, m)` without communication by replaying the central generator.
pub fn gnm_local(n: u64, m: u64, seed: u64, part: &Partition, rank: usize) -> LocalGraph {
    let g = gnm(n, m, seed);
    LocalGraph::from_global(&g, part, rank)
}

/// Recomputation-based local generation for R-MAT.
pub fn rmat_local(params: &RmatParams, seed: u64, part: &Partition, rank: usize) -> LocalGraph {
    let g = rmat(params, seed);
    LocalGraph::from_global(&g, part, rank)
}

/// Deterministic cell geometry of the distributed RGG.
#[derive(Debug, Clone)]
pub struct RggLayout {
    /// Cells per side of the unit square.
    pub cells_per_side: usize,
    /// Connection radius.
    pub radius: f64,
    /// Point count of every cell (row-major), identical on every PE.
    pub cell_counts: Vec<u32>,
    /// Exclusive prefix sums of `cell_counts` (id of each cell's first
    /// point), plus the total as last element.
    pub cell_offsets: Vec<u64>,
    lambda: f64,
}

impl RggLayout {
    /// Computes the layout for an expected `n` points at average degree
    /// `avg_deg`. Costs O(#cells); no point coordinates are generated.
    pub fn new(n: u64, avg_deg: f64, seed: u64) -> Self {
        let radius = crate::rgg::radius_for_avg_degree(n, avg_deg);
        let cells_per_side = ((1.0 / radius).floor() as usize).clamp(1, 1 << 12);
        let num_cells = cells_per_side * cells_per_side;
        let lambda = n as f64 / num_cells as f64;
        let mut cell_counts = Vec::with_capacity(num_cells);
        let mut cell_offsets = Vec::with_capacity(num_cells + 1);
        let mut acc = 0u64;
        for cell in 0..num_cells {
            let mut rng = Rng::substream(seed ^ 0x5247_47AA, cell as u64);
            let count = poisson(&mut rng, lambda);
            cell_counts.push(count);
            cell_offsets.push(acc);
            acc += count as u64;
        }
        cell_offsets.push(acc);
        RggLayout {
            cells_per_side,
            radius,
            cell_counts,
            cell_offsets,
            lambda,
        }
    }

    /// Total number of generated points (Poissonized: ≈ n in expectation).
    pub fn num_vertices(&self) -> u64 {
        *self.cell_offsets.last().unwrap()
    }

    /// The (deterministic) coordinates of cell `cell`'s points.
    pub fn points_of(&self, cell: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = Rng::substream(seed ^ 0x5247_47AA, cell as u64);
        let count = poisson(&mut rng, self.lambda());
        debug_assert_eq!(count, self.cell_counts[cell]);
        let cps = self.cells_per_side as f64;
        let (cy, cx) = (cell / self.cells_per_side, cell % self.cells_per_side);
        (0..count)
            .map(|_| {
                let x = (cx as f64 + rng.next_f64()) / cps;
                let y = (cy as f64 + rng.next_f64()) / cps;
                (x, y)
            })
            .collect()
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Splits the cells into `p` contiguous row-major blocks with roughly
    /// equal point counts; returns the vertex-id partition (block boundaries
    /// are cell boundaries, so every PE owns whole cells).
    pub fn partition(&self, p: usize) -> (Partition, Vec<usize>) {
        let total = self.num_vertices();
        let num_cells = self.cell_counts.len();
        let mut bounds = vec![0u64];
        let mut cell_bounds = vec![0usize];
        let mut cell = 0usize;
        for i in 1..p {
            let target = total * i as u64 / p as u64;
            while cell < num_cells && self.cell_offsets[cell] < target {
                cell += 1;
            }
            cell_bounds.push(cell);
            bounds.push(self.cell_offsets[cell]);
        }
        cell_bounds.push(num_cells);
        bounds.push(total);
        (Partition::from_bounds(bounds), cell_bounds)
    }
}

/// Knuth's Poisson sampler (fine for the per-cell λ of ~5–40 used here).
fn poisson(rng: &mut Rng, lambda: f64) -> u32 {
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut prod = 1.0;
    loop {
        prod *= rng.next_f64();
        if prod <= l {
            return k;
        }
        k += 1;
    }
}

/// Generates PE `rank`'s local RGG2D subgraph without communication: its own
/// cells plus a one-cell halo. Returns the global partition (identical on
/// every PE) and the local graph.
pub fn rgg2d_distributed(
    layout: &RggLayout,
    p: usize,
    rank: usize,
    seed: u64,
) -> (Partition, LocalGraph) {
    let (part, cell_bounds) = layout.partition(p);
    let cps = layout.cells_per_side;
    let own_cells = cell_bounds[rank]..cell_bounds[rank + 1];
    let r2 = layout.radius * layout.radius;

    // cells to materialise: own cells + all 8-neighborhoods
    let mut needed: Vec<usize> = Vec::new();
    for cell in own_cells.clone() {
        let (cy, cx) = (cell / cps, cell % cps);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let (ny, nx) = (cy as i64 + dy, cx as i64 + dx);
                if ny >= 0 && nx >= 0 && (ny as usize) < cps && (nx as usize) < cps {
                    needed.push(ny as usize * cps + nx as usize);
                }
            }
        }
    }
    needed.sort_unstable();
    needed.dedup();

    // materialise points of needed cells, keyed by global vertex id
    let mut ids: Vec<VertexId> = Vec::new();
    let mut pts: Vec<(f64, f64)> = Vec::new();
    let mut cell_of_point: Vec<usize> = Vec::new();
    for &cell in &needed {
        let cell_pts = layout.points_of(cell, seed);
        let base = layout.cell_offsets[cell];
        for (i, pt) in cell_pts.into_iter().enumerate() {
            ids.push(base + i as u64);
            pts.push(pt);
            cell_of_point.push(cell);
        }
    }

    // neighborhoods of owned points: scan the 3×3 halo points
    let owned_range = part.range(rank);
    let mut neighborhoods: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
    for (i, &v) in ids.iter().enumerate() {
        if !owned_range.contains(&v) {
            continue;
        }
        let (x, y) = pts[i];
        let mut ns: Vec<VertexId> = Vec::new();
        for (j, &u) in ids.iter().enumerate() {
            if i == j {
                continue;
            }
            // only points in cells adjacent to v's cell can connect
            let (cy, cx) = (cell_of_point[i] / cps, cell_of_point[i] % cps);
            let (oy, ox) = (cell_of_point[j] / cps, cell_of_point[j] % cps);
            if cy.abs_diff(oy) > 1 || cx.abs_diff(ox) > 1 {
                continue;
            }
            let (dx, dy) = (x - pts[j].0, y - pts[j].1);
            if dx * dx + dy * dy <= r2 {
                ns.push(u);
            }
        }
        ns.sort_unstable();
        neighborhoods.push((v, ns));
    }
    (
        part.clone(),
        LocalGraph::from_neighborhoods(part, rank, neighborhoods),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricount_graph::{Csr, EdgeList};

    fn assemble(layout: &RggLayout, p: usize, seed: u64) -> Csr {
        let mut el = EdgeList::new();
        let mut n = 0;
        for rank in 0..p {
            let (part, lg) = rgg2d_distributed(layout, p, rank, seed);
            n = part.num_vertices();
            for v in lg.owned_vertices() {
                for &u in lg.neighbors(v) {
                    el.push(v, u);
                }
            }
        }
        el.canonicalize();
        Csr::from_edges(n, &el)
    }

    #[test]
    fn recomputed_locals_match_central_generation() {
        let n = 256u64;
        let part = Partition::balanced_vertices(n, 4);
        let g = gnm(n, 2048, 7);
        for rank in 0..4 {
            let local = gnm_local(n, 2048, 7, &part, rank);
            let reference = LocalGraph::from_global(&g, &part, rank);
            for v in local.owned_vertices() {
                assert_eq!(local.neighbors(v), reference.neighbors(v));
            }
        }
        let params = RmatParams::graph500(8);
        let g = rmat(&params, 7);
        let part = Partition::balanced_vertices(g.num_vertices(), 3);
        for rank in 0..3 {
            let local = rmat_local(&params, 7, &part, rank);
            for v in local.owned_vertices() {
                assert_eq!(local.neighbors(v), g.neighbors(v));
            }
        }
    }

    #[test]
    fn rgg_layout_is_deterministic_and_near_n() {
        let a = RggLayout::new(2000, 16.0, 5);
        let b = RggLayout::new(2000, 16.0, 5);
        assert_eq!(a.cell_counts, b.cell_counts);
        let n = a.num_vertices() as f64;
        assert!((1400.0..2600.0).contains(&n), "poissonized n = {n}");
    }

    #[test]
    fn rgg_distributed_is_partition_independent() {
        let layout = RggLayout::new(800, 12.0, 11);
        let g1 = assemble(&layout, 1, 11);
        let g4 = assemble(&layout, 4, 11);
        let g7 = assemble(&layout, 7, 11);
        assert_eq!(g1, g4);
        assert_eq!(g1, g7);
        g1.validate_symmetric().unwrap();
        assert!(g1.num_edges() > 0);
    }

    #[test]
    fn rgg_distributed_locals_are_mutually_consistent() {
        // every cut edge seen from one side must be seen from the other
        let layout = RggLayout::new(600, 10.0, 3);
        let p = 5;
        let locals: Vec<_> = (0..p)
            .map(|r| rgg2d_distributed(&layout, p, r, 3).1)
            .collect();
        let part = locals[0].partition().clone();
        for lg in &locals {
            for (v, gst) in lg.cut_edges() {
                let owner = part.rank_of(gst);
                assert!(
                    locals[owner].neighbors(gst).contains(&v),
                    "cut edge ({v},{gst}) missing on owner {owner}"
                );
            }
        }
    }

    #[test]
    fn rgg_distributed_counts_triangles_correctly() {
        // end-to-end: distributed generation feeding the distributed counter
        let layout = RggLayout::new(700, 14.0, 9);
        let p = 4;
        let central = assemble(&layout, p, 9);
        let truth = {
            let mut t = 0u64;
            for v in central.vertices() {
                for &u in central.neighbors(v) {
                    if u <= v {
                        continue;
                    }
                    for &w in central.neighbors(u) {
                        if w > u && central.has_edge(v, w) {
                            t += 1;
                        }
                    }
                }
            }
            t
        };
        assert!(truth > 0, "test instance should contain triangles");
        // verify the per-rank locals agree with the assembled graph
        for rank in 0..p {
            let (_, lg) = rgg2d_distributed(&layout, p, rank, 9);
            for v in lg.owned_vertices() {
                assert_eq!(lg.neighbors(v), central.neighbors(v), "vertex {v}");
            }
        }
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = Rng::new(3);
        let lambda = 8.0;
        let trials = 5000;
        let sum: u64 = (0..trials).map(|_| poisson(&mut rng, lambda) as u64).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - lambda).abs() < 0.3, "poisson mean {mean}");
    }
}

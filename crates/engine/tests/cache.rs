//! Engine-level acceptance for the remote-adjacency cache: warm-graph
//! words-saved (the ≥ 90 % bar from the roadmap), a mutation test proving
//! the coherence protocol is load-bearing (disable it and cached answers
//! go stale), a proptest interleaving random update batches with cached
//! queries at 1, 4 and 9 PEs, and the stats / Prometheus / span surface.

use proptest::prelude::*;
use tricount_core::config::Algorithm;
use tricount_delta::{apply_to_csr, UpdateBatch};
use tricount_engine::{Engine, EngineConfig, Query, QueryAnswer};
use tricount_graph::intersect::merge_count;
use tricount_graph::partition::Partition;
use tricount_graph::Csr;

const BUDGET: u64 = 1 << 22;

fn cached_engine(g: &Csr, p: usize) -> Engine {
    Engine::build(g, EngineConfig::new(p).with_cache_budget(BUDGET))
}

fn global(alg: Algorithm) -> Query {
    Query::GlobalTriangles { algorithm: alg }
}

fn triangles(e: &mut Engine, q: Query) -> u64 {
    match e.query(q).expect("query executes") {
        QueryAnswer::Count(t) => t,
        other => panic!("expected Count, got {other:?}"),
    }
}

fn support(e: &mut Engine, edges: Vec<(u64, u64)>) -> Vec<u64> {
    match e
        .query(Query::EdgeSupport { edges })
        .expect("query executes")
    {
        QueryAnswer::Support(pairs) => pairs.into_iter().map(|(_, s)| s).collect(),
        other => panic!("expected Support, got {other:?}"),
    }
}

/// Warm-graph repeated-query workload: the second run of the same global
/// query over an unchanged graph resolves every remote adjacency from the
/// cache — at least 90 % of the adjacency words the cold run shipped are
/// saved (here: all of them), and the stats / Prometheus / span surfaces
/// reflect it.
#[test]
fn warm_repeat_saves_at_least_ninety_percent_of_adjacency_words() {
    let g = tricount_gen::rgg2d_default(256, 5);
    let mut e = cached_engine(&g, 4);
    let t1 = triangles(&mut e, global(Algorithm::Cetric));
    let cold = e.stats();
    assert!(cold.adj_cache_enabled);
    let cold_shipped = cold.query_adjacency.words_shipped;
    assert!(cold_shipped > 0, "cold run ships remote adjacency words");
    assert_eq!(cold.query_adjacency.hits, 0, "nothing to hit yet");
    assert!(
        cold.query_adjacency.staged > 0,
        "cold run populates the cache"
    );
    assert!(cold.adj_cache_entries > 0);
    assert!(cold.adj_cache_resident_words > 0);

    // Invalidate the epoch-keyed *result* cache without touching the
    // adjacency cache, so the same query re-executes against a warm cache.
    e.advance_epoch();
    let t2 = triangles(&mut e, global(Algorithm::Cetric));
    assert_eq!(t1, t2, "cached run is bit-identical");

    let warm = e.stats();
    let saved = warm.query_adjacency.words_saved - cold.query_adjacency.words_saved;
    let shipped = warm.query_adjacency.words_shipped - cold_shipped;
    assert_eq!(
        warm.query_adjacency.misses, cold.query_adjacency.misses,
        "warm run misses nothing"
    );
    assert!(warm.query_adjacency.hits > 0, "warm run hits the cache");
    assert!(saved > 0);
    assert!(
        saved * 10 >= 9 * (saved + shipped),
        "warm run saves >= 90% of adjacency words (saved {saved}, shipped {shipped})"
    );
    assert!(warm.adj_cache_hit_rate() > 0.0);

    // Observability: commit spans and Prometheus counters are live.
    assert!(
        warm.spans.iter().any(|s| s.label == "cache_commit"),
        "cache-enabled ticks record a cache_commit span"
    );
    let text = e.prometheus();
    for needle in [
        "tricount_cache_lookups_total",
        "tricount_cache_hits_total",
        "tricount_cache_words_saved_total",
        "tricount_cache_entries",
        "tricount_cache_resident_words",
    ] {
        assert!(text.contains(needle), "prometheus exposes {needle}");
    }
}

/// With the cache disabled the engine still meters adjacency
/// request/response words separately from collectives (the comm-split in
/// the stats JSON), but holds no cache state and records no spans.
#[test]
fn disabled_cache_meters_adjacency_words_without_state() {
    let g = tricount_gen::rgg2d_default(256, 5);
    let mut e = Engine::build(&g, EngineConfig::new(4));
    let _ = triangles(&mut e, global(Algorithm::Cetric));
    let s = e.stats();
    assert!(!s.adj_cache_enabled);
    assert!(
        s.query_adjacency.words_shipped > 0,
        "adjacency words are metered even without a cache"
    );
    assert_eq!(s.query_adjacency.hits, 0);
    assert_eq!(s.query_adjacency.staged, 0);
    assert_eq!(s.adj_cache_entries, 0);
    assert_eq!(s.adj_cache_resident_words, 0);
    assert!(!s.spans.iter().any(|sp| sp.label == "cache_commit"));
    let json = s.to_json();
    assert!(json.contains("\"adj_cache_enabled\":false"));
    assert!(json.contains("\"adjacency_words_shipped\""));
}

/// Finds a mutation fixture in `g` partitioned over `p` ranks: a query
/// edge `(a, b)` whose endpoints live on different ranks plus a vertex
/// `x ∈ N(b) \ (N(a) ∪ {a})`, so inserting `(a, x)` raises the support of
/// `(a, b)` by exactly one — visible only if the cached copy of `N(a)` at
/// `b`'s owner is patched.
fn stale_fixture(g: &Csr, p: usize) -> (u64, u64, u64) {
    let part = Partition::balanced_vertices(g.num_vertices(), p);
    for a in 0..g.num_vertices() {
        let na = g.neighbors(a);
        for b in 0..g.num_vertices() {
            if part.rank_of(a) == part.rank_of(b) || a == b {
                continue;
            }
            for &x in g.neighbors(b) {
                if x != a && x != b && !na.contains(&x) {
                    return (a, b, x);
                }
            }
        }
    }
    panic!("no stale-coherence fixture in this graph");
}

/// Mutation test: knock out the coherence protocol
/// (`cache.coherence = false`) and the cached support answer goes stale
/// after an update — exactly the divergence the equivalence harness is
/// built to catch. With coherence on, the same sequence stays bit-equal
/// to a freshly built engine and to the sequential intersection.
#[test]
fn disabling_coherence_is_caught_as_stale_answer_divergence() {
    let g = tricount_gen::rgg2d_default(200, 11);
    let p = 4;
    let (a, b, x) = stale_fixture(&g, p);
    let s0 = merge_count(g.neighbors(a), g.neighbors(b)).0;

    let mut batch = UpdateBatch::new();
    batch.insert(a, x);
    let edited = apply_to_csr(&g, &batch.canonicalize());
    let truth = merge_count(edited.neighbors(a), edited.neighbors(b)).0;
    assert_eq!(truth, s0 + 1, "fixture: x becomes a common neighbor");

    // Coherent engine: the warm cached entry is patched in update_route
    // and the re-query matches the fresh rebuild.
    let mut coherent = cached_engine(&g, p);
    assert_eq!(support(&mut coherent, vec![(a, b)]), vec![s0]);
    coherent.apply_updates(&batch).expect("valid batch");
    assert_eq!(
        support(&mut coherent, vec![(a, b)]),
        vec![truth],
        "coherence keeps the cached N(a) fresh"
    );
    let stats = coherent.stats();
    assert!(
        stats.update_adjacency.patches > 0 || stats.update_adjacency.invalidations > 0,
        "the update route exercised the coherence path"
    );
    assert_eq!(
        Engine::build(&edited, EngineConfig::new(p)).resident_triangles(),
        coherent.resident_triangles(),
        "coherent engine tracks the rebuilt count"
    );

    // Mutated engine: same sequence, coherence disabled. The warm entry
    // for N(a) at b's owner survives the update un-patched, so the
    // re-query returns the stale pre-insert support — the divergence the
    // verify harness flags.
    let mut cfg = EngineConfig::new(p).with_cache_budget(BUDGET);
    cfg.dist.cache.coherence = false;
    let mut mutated = Engine::build(&g, cfg);
    assert_eq!(support(&mut mutated, vec![(a, b)]), vec![s0]);
    mutated.apply_updates(&batch).expect("valid batch");
    let stale = support(&mut mutated, vec![(a, b)]);
    assert_eq!(
        stale,
        vec![s0],
        "without coherence the cached list is stale"
    );
    assert_ne!(stale, vec![truth], "stale-count divergence is observable");
    let stats = mutated.stats();
    assert_eq!(stats.update_adjacency.patches, 0);
    assert_eq!(stats.update_adjacency.invalidations, 0);
}

/// Clamps `batch` into the vertex range `[0, n)`.
fn clamp(batch: &UpdateBatch, n: u64) -> UpdateBatch {
    let mut out = UpdateBatch::new();
    for op in &batch.ops {
        let (u, v) = op.endpoints();
        if u < n && v < n {
            if op.is_insert() {
                out.insert(u, v);
            } else {
                out.delete(u, v);
            }
        }
    }
    out
}

fn arb_batch(n: u64) -> impl Strategy<Value = UpdateBatch> {
    proptest::collection::vec((0u64..2, 0..n, 0..n), 0..24).prop_map(|ops| {
        let mut b = UpdateBatch::new();
        for (ins, u, v) in ops {
            if ins == 1 {
                b.insert(u, v);
            } else {
                b.delete(u, v);
            }
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Interleaving random update batches with cached queries at 1, 4 and
    /// 9 PEs: a cache-enabled engine answers every global and support
    /// query identically to a cache-free engine driven through the same
    /// sequence, and both track the same resident count.
    #[test]
    fn interleaved_updates_and_cached_queries_match_uncached(
        n in 12u64..32,
        edge_factor in 1u64..4,
        seed in 0u64..1000,
        b1 in (12u64..32).prop_flat_map(arb_batch),
        b2 in (12u64..32).prop_flat_map(arb_batch),
    ) {
        let g = tricount_gen::gnm(n, n * edge_factor, seed);
        let edges: Vec<(u64, u64)> = vec![(0, n / 2), (1, n - 1), (n / 3, n / 2 + 1)];
        for p in [1usize, 4, 9] {
            let mut cached = cached_engine(&g, p);
            let mut plain = Engine::build(&g, EngineConfig::new(p));
            for batch in [&b1, &b2] {
                let clamped = clamp(batch, n);
                prop_assert_eq!(
                    triangles(&mut cached, global(Algorithm::Cetric)),
                    triangles(&mut plain, global(Algorithm::Cetric)),
                    "global pre-update, p {}", p
                );
                prop_assert_eq!(
                    support(&mut cached, edges.clone()),
                    support(&mut plain, edges.clone()),
                    "support pre-update, p {}", p
                );
                let rc = cached.apply_updates(&clamped).expect("in-range batch");
                let rp = plain.apply_updates(&clamped).expect("in-range batch");
                prop_assert_eq!(rc.triangles_after, rp.triangles_after, "receipt, p {}", p);
                prop_assert_eq!(
                    cached.resident_triangles(),
                    plain.resident_triangles(),
                    "resident count, p {}", p
                );
                prop_assert_eq!(
                    triangles(&mut cached, global(Algorithm::Ditric)),
                    triangles(&mut plain, global(Algorithm::Ditric)),
                    "global post-update, p {}", p
                );
                prop_assert_eq!(
                    support(&mut cached, edges.clone()),
                    support(&mut plain, edges.clone()),
                    "support post-update, p {}", p
                );
            }
        }
    }
}

//! Engine answers must bit-match the one-shot drivers and the sequential
//! references — plus the scripted-workload acceptance run: ≥1000 mixed
//! queries against a resident RGG2D with a warm cache and the setup
//! executed exactly once.

use tricount_core::config::{Algorithm, DegreeExchange, DistConfig};
use tricount_core::dist::residency::build_residency;
use tricount_core::dist::{count, lcc as dist_lcc};
use tricount_core::seq;
use tricount_engine::{Engine, EngineConfig, Query, QueryAnswer};
use tricount_graph::dist::DistGraph;
use tricount_graph::intersect::merge_count;
use tricount_graph::{Csr, OrderingKind};

fn engine_for(g: &Csr, p: usize, dist: DistConfig) -> Engine {
    let mut cfg = EngineConfig::new(p);
    cfg.dist = dist;
    Engine::build(g, cfg)
}

/// Distributed `VertexLcc` answers bit-match the sequential LCC reference
/// across algorithm-variant configurations, seeds and PE counts.
#[test]
fn vertex_lcc_bitmatches_sequential_reference() {
    let configs = [
        Algorithm::Cetric.config(),
        Algorithm::Cetric2.config(),
        DistConfig {
            degree_exchange: DegreeExchange::Sparse,
            ..Algorithm::Cetric.config()
        },
    ];
    for seed in [1u64, 7] {
        let g = tricount_gen::rgg2d_default(300, seed);
        let reference = seq::local_clustering_coefficients(&g, OrderingKind::Degree);
        let all: Vec<u64> = (0..g.num_vertices()).collect();
        for p in [1usize, 2, 4] {
            for cfg in configs {
                let e = engine_for(&g, p, cfg);
                match e.query(Query::VertexLcc {
                    vertices: all.clone(),
                }) {
                    Ok(QueryAnswer::Lcc(pairs)) => {
                        assert_eq!(pairs.len(), reference.len());
                        for (v, lcc) in pairs {
                            assert_eq!(
                                lcc.to_bits(),
                                reference[v as usize].to_bits(),
                                "lcc({v}) diverges (seed {seed}, p {p}, cfg {cfg:?})"
                            );
                        }
                    }
                    other => panic!("expected Lcc answer, got {other:?}"),
                }
            }
        }
    }
}

/// The one-shot `dist::lcc` driver (which now routes through the shared
/// residency setup) also still matches the sequential reference.
#[test]
fn oneshot_lcc_still_matches_reference() {
    for seed in [3u64, 9] {
        let g = tricount_gen::rgg2d_default(256, seed);
        let reference = seq::local_clustering_coefficients(&g, OrderingKind::Degree);
        let per_vertex = seq::per_vertex_counts(&g, OrderingKind::Degree);
        for p in [2usize, 4] {
            let r = dist_lcc::lcc(&g, p, &Algorithm::Cetric.config());
            assert_eq!(r.per_vertex, per_vertex);
            for (v, (got, want)) in r.lcc.iter().zip(&reference).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "lcc({v}) diverges");
            }
        }
    }
}

/// Global-count answers bit-match the one-shot `core::count` for every
/// algorithm variant.
#[test]
fn global_counts_match_oneshot_drivers() {
    let g = tricount_gen::rgg2d_default(300, 5);
    let p = 4;
    let expected = seq::compact_forward(&g).triangles;
    let e = engine_for(&g, p, Algorithm::Cetric.config());
    for alg in Algorithm::all() {
        let oneshot = count(&g, p, alg).unwrap().triangles;
        assert_eq!(oneshot, expected, "{}", alg.name());
        match e.query(Query::GlobalTriangles { algorithm: alg }) {
            Ok(QueryAnswer::Count(c)) => assert_eq!(c, expected, "{}", alg.name()),
            other => panic!("expected Count, got {other:?}"),
        }
    }
}

/// Edge-support answers match the direct neighborhood intersection.
#[test]
fn edge_support_matches_intersections() {
    let g = tricount_gen::rgg2d_default(300, 5);
    let mut edges = Vec::new();
    for v in 0..g.num_vertices() {
        for &u in g.neighbors(v) {
            if v < u && edges.len() < 40 {
                edges.push((v, u));
            }
        }
    }
    let e = engine_for(&g, 3, Algorithm::Cetric.config());
    match e.query(Query::EdgeSupport {
        edges: edges.clone(),
    }) {
        Ok(QueryAnswer::Support(pairs)) => {
            for ((a, b), s) in pairs {
                let want = merge_count(g.neighbors(a), g.neighbors(b)).0;
                assert_eq!(s, want, "support({a},{b})");
            }
        }
        other => panic!("expected Support, got {other:?}"),
    }
}

/// Approximate answers track the exact count; tighter error targets use
/// bigger sketches.
#[test]
fn approx_answers_are_sane() {
    let g = tricount_gen::rgg2d_default(400, 5);
    let exact = seq::compact_forward(&g).triangles as f64;
    let e = engine_for(&g, 4, Algorithm::Cetric.config());
    let mut last_bits = 0.0;
    for target in [0.5, 0.05, 0.005] {
        match e.query(Query::ApproxTriangles {
            max_rel_error: target,
        }) {
            Ok(QueryAnswer::Approx {
                estimate,
                bits_per_key,
            }) => {
                assert!(bits_per_key >= last_bits, "sketch must grow with precision");
                last_bits = bits_per_key;
                let rel = (estimate - exact).abs() / exact.max(1.0);
                assert!(
                    rel < 0.30,
                    "estimate {estimate} too far from {exact} (target {target})"
                );
            }
            other => panic!("expected Approx, got {other:?}"),
        }
    }
}

/// The rank programs the engine serves with are schedule independent under
/// the seeded-schedule harness from `crates/verify`.
#[test]
fn prepared_rank_programs_are_schedule_independent() {
    use tricount_comm::SimOptions;
    let g = tricount_gen::rgg2d_default(256, 2);
    let p = 4;
    let cfg = Algorithm::Cetric.config();
    let dg = DistGraph::new_balanced_vertices(&g, p);
    let (ranks, _) = build_residency(dg, &cfg, &SimOptions::default());

    let counts = tricount_verify::determinism::check_schedule_independence(
        p,
        &[1, 2, 3],
        &SimOptions::default(),
        |ctx| tricount_core::dist::cetric::count_prepared(ctx, &ranks[ctx.rank()], &cfg),
    )
    .expect("count must not depend on the schedule");
    assert_eq!(
        counts.iter().sum::<u64>() / p as u64,
        seq::compact_forward(&g).triangles
    );

    tricount_verify::determinism::check_schedule_independence(
        p,
        &[1, 2, 3],
        &SimOptions::default(),
        |ctx| tricount_core::dist::lcc::lcc_prepared(ctx, &ranks[ctx.rank()], &cfg),
    )
    .expect("per-vertex counts must not depend on the schedule");

    let acfg = tricount_core::dist::approx::ApproxConfig::default();
    tricount_verify::determinism::check_schedule_independence(
        p,
        &[1, 2, 3],
        &SimOptions::default(),
        |ctx| {
            let out =
                tricount_core::dist::approx::approx_prepared(ctx, &ranks[ctx.rank()], &cfg, &acfg);
            (
                out.exact_local,
                out.type3_raw,
                out.type3_corrected.to_bits(),
            )
        },
    )
    .expect("approx estimate must not depend on the schedule");
}

/// Acceptance run: ≥1000 mixed queries against a resident RGG2D complete
/// with a warm cache, and the comm counters prove the setup ran exactly
/// once (queries never repeat the ghost degree exchange).
#[test]
fn scripted_workload_acceptance() {
    let g = tricount_gen::rgg2d_default(512, 4);
    let mut cfg = EngineConfig::new(4);
    cfg.queue_capacity = 64;
    cfg.batch_max = 16;
    let mut e = Engine::build(&g, cfg);

    let workload = tricount_engine::scripted_workload(1000, g.num_vertices(), 42);
    let expected = seq::compact_forward(&g).triangles;
    let reference_lcc = seq::local_clustering_coefficients(&g, OrderingKind::Degree);

    let mut answered = 0usize;
    let mut backoff = 0usize;
    for q in &workload {
        loop {
            match e.submit(q.clone()) {
                Ok(_) => break,
                Err(_) => {
                    // closed loop: drain under backpressure, then resubmit
                    backoff += 1;
                    answered += e.tick().len();
                }
            }
        }
        if e.queue_depth() >= 16 {
            answered += check_batch(&mut e, expected, &reference_lcc, &g);
        }
    }
    while e.queue_depth() > 0 {
        answered += check_batch(&mut e, expected, &reference_lcc, &g);
    }
    assert_eq!(answered, workload.len(), "every query must be answered");

    let s = e.stats();
    assert_eq!(s.answered, 1000);
    assert!(s.cache_hit_rate() > 0.0, "workload repeats must hit");
    assert!(s.cache_hits > 0 && s.cache_misses > 0);
    assert_eq!(s.setup_runs, 1);
    // the setup performed the ghost degree exchange…
    assert!(s.setup_comm.sent_messages > 0 || s.setup_comm.coll_word_units > 0);
    // …and no query ever repeated it: their preprocessing phases moved no
    // point-to-point data (the ghost exchange's alltoallv payloads would
    // count here; what remains is TricLike's 1-word memory-accounting
    // all-reduce, charged to collective units)
    assert_eq!(s.query_preprocessing_comm.sent_messages, 0);
    assert_eq!(s.query_preprocessing_comm.sent_words, 0);
    assert_eq!(s.query_preprocessing_comm.recv_messages, 0);
    assert_eq!(s.query_preprocessing_comm.recv_words, 0);
    // queries did communicate overall (global phases)
    assert!(s.query_comm.sent_messages > 0);
    assert!(s.modeled_seconds_total > 0.0);
    assert!(backoff > 0 || s.rejected == 0, "loop stayed closed");
    let json = e.stats().to_json();
    assert!(json.contains("\"setup_runs\":1"));
}

/// Ticks once and verifies every answer in the batch against references.
fn check_batch(e: &mut Engine, expected: u64, reference_lcc: &[f64], g: &Csr) -> usize {
    let answers = e.tick();
    let n = answers.len();
    for (_, a) in answers {
        match a.expect("workload queries are valid") {
            QueryAnswer::Count(c) => assert_eq!(c, expected),
            QueryAnswer::Lcc(pairs) => {
                for (v, lcc) in pairs {
                    assert_eq!(lcc.to_bits(), reference_lcc[v as usize].to_bits());
                }
            }
            QueryAnswer::Support(pairs) => {
                for ((a, b), s) in pairs {
                    assert_eq!(s, merge_count(g.neighbors(a), g.neighbors(b)).0);
                }
            }
            QueryAnswer::Approx { estimate, .. } => {
                let rel = (estimate - expected as f64).abs() / (expected as f64).max(1.0);
                assert!(
                    rel < 0.5,
                    "approx answer wildly off: {estimate} vs {expected}"
                );
            }
        }
    }
    n
}

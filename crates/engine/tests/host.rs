//! Multi-tenant serving acceptance: tenant isolation over one shared
//! pool, two-level admission (global budget + per-tenant quota), the
//! background serve loop, and the per-tenant-labelled Prometheus surface.

use tricount_core::config::Algorithm;
use tricount_core::seq;
use tricount_delta::{apply_to_csr, UpdateBatch};
use tricount_engine::{
    EngineConfig, EngineHost, HostConfig, HostError, HostReply, HostRequest, Query, QueryAnswer,
};
use tricount_graph::Csr;
use tricount_obs::parse_exposition;

fn count_of(g: &Csr) -> u64 {
    seq::compact_forward(g).triangles
}

fn global(tenant: &str) -> HostRequest {
    HostRequest::Query {
        tenant: tenant.to_string(),
        query: Query::GlobalTriangles {
            algorithm: Algorithm::Cetric,
        },
    }
}

/// Two tenants with different graphs on one shared pool: answers route to
/// the right tenant and bit-match each tenant's own graph.
#[test]
fn tenants_are_isolated_over_one_pool() {
    let ga = tricount_gen::rgg2d_default(200, 3);
    let gb = tricount_gen::gnm(64, 256, 42);
    let host = EngineHost::new(HostConfig::new());
    host.add_tenant("alpha", &ga, EngineConfig::new(4))
        .expect("fresh name");
    host.add_tenant("beta", &gb, EngineConfig::new(2))
        .expect("fresh name");
    assert_eq!(
        host.add_tenant("alpha", &gb, EngineConfig::new(1)),
        Err(HostError::DuplicateTenant {
            tenant: "alpha".into()
        })
    );

    host.submit(global("alpha"))
        .expect("admitted")
        .expect("query ticket");
    host.submit(global("beta")).expect("admitted");
    match host.submit(global("nobody")) {
        Err(HostError::UnknownTenant { tenant }) => assert_eq!(tenant, "nobody"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }

    assert!(host.drain() >= 2, "both tick jobs execute");
    let replies = host.poll();
    assert_eq!(replies.len(), 2);
    for reply in replies {
        let HostReply::Answer { tenant, result, .. } = reply else {
            panic!("expected answers");
        };
        let expected = match tenant.as_str() {
            "alpha" => count_of(&ga),
            "beta" => count_of(&gb),
            other => panic!("unexpected tenant {other}"),
        };
        assert_eq!(result.expect("answers"), QueryAnswer::Count(expected));
    }

    let s = host.stats();
    assert_eq!(s.tenants, 2);
    assert_eq!(s.inflight, 0);
    for t in &s.per_tenant {
        assert_eq!(t.submitted, 1, "tenant {}", t.tenant);
        assert_eq!(t.answered, 1, "tenant {}", t.tenant);
        assert_eq!(t.inflight, 0, "tenant {}", t.tenant);
    }
}

/// Per-tenant quota and global budget both reject with explicit
/// backpressure, and the rejection is counted against the right tenant.
#[test]
fn quotas_and_global_budget_reject_with_backpressure() {
    let g = tricount_gen::gnm(48, 128, 7);
    let mut cfg = HostConfig::new();
    cfg.tenant_quota = 2;
    cfg.global_inflight = 3;
    let host = EngineHost::new(cfg);
    host.add_tenant("a", &g, EngineConfig::new(1))
        .expect("fresh name");
    host.add_tenant("b", &g, EngineConfig::new(1))
        .expect("fresh name");

    // Tenant quota: a's third concurrent query is rejected.
    host.submit(global("a")).expect("under quota");
    host.submit(global("a")).expect("under quota");
    match host.submit(global("a")) {
        Err(HostError::Overloaded {
            tenant,
            inflight,
            limit,
            global,
        }) => {
            assert_eq!(
                (tenant.as_str(), inflight, limit, global),
                ("a", 2, 2, false)
            );
        }
        other => panic!("expected tenant-quota rejection, got {other:?}"),
    }

    // Global budget: b is under its own quota but the process is full.
    host.submit(global("b")).expect("under global budget");
    match host.submit(global("b")) {
        Err(HostError::Overloaded { global, .. }) => assert!(global, "global budget rejected"),
        other => panic!("expected global rejection, got {other:?}"),
    }

    let s = host.stats();
    assert_eq!(s.inflight, 3);
    let rejected: u64 = s.per_tenant.iter().map(|t| t.rejected).sum();
    assert_eq!(rejected, 2);

    // Draining frees the budgets: the same submissions are admitted again.
    host.drain();
    assert_eq!(host.poll().len(), 3);
    host.submit(global("a")).expect("budget freed");
    host.drain();
}

/// The background serve loop answers queries and applies updates from
/// worker threads; with 2+ workers a tenant's reads overlap its own
/// update. Answers stay bit-equal to the per-epoch serial oracle.
#[test]
fn serve_loop_answers_reads_during_updates() {
    let g = tricount_gen::rgg2d_default(220, 9);
    let mut cfg = HostConfig::new();
    cfg.serve_workers = 3;
    cfg.global_inflight = 256;
    cfg.tenant_quota = 128;
    let host = EngineHost::new(cfg);
    host.add_tenant("t", &g, EngineConfig::new(4))
        .expect("fresh name");

    // Truth per epoch: the serial CSR after each batch.
    let mut truth = vec![count_of(&g)];
    let mut cur = g.clone();
    let mut batches = Vec::new();
    for i in 0..3u64 {
        let mut b = UpdateBatch::new();
        b.insert(3 * i, 3 * i + 41);
        b.insert(3 * i + 1, 3 * i + 67);
        b.delete(i, i + 2);
        cur = apply_to_csr(&cur, &b.canonicalize());
        truth.push(count_of(&cur));
        batches.push(b);
    }

    let handle = host.serve();
    let mut submitted = 0u64;
    for b in batches {
        for _ in 0..4 {
            if host.submit(global("t")).is_ok() {
                submitted += 1;
            }
        }
        host.submit(HostRequest::Update {
            tenant: "t".to_string(),
            batch: b,
        })
        .expect("updates always enqueue");
    }
    handle.stop();
    host.drain(); // deterministic flush of anything still queued
    let replies = host.poll();

    let mut answers = 0u64;
    let mut receipts = 0u64;
    for reply in replies {
        match reply {
            HostReply::Answer { epoch, result, .. } => {
                answers += 1;
                assert_eq!(
                    result.expect("answers"),
                    QueryAnswer::Count(truth[epoch as usize]),
                    "answer bit-equals the oracle at its pinned epoch {epoch}"
                );
            }
            HostReply::Receipt { result, .. } => {
                receipts += 1;
                let r = result.expect("valid batches");
                assert_eq!(r.triangles_after, truth[r.epoch as usize]);
            }
        }
    }
    assert_eq!(answers, submitted, "every admitted query was answered");
    assert_eq!(receipts, 3, "every update produced a receipt");
    let s = host.stats();
    assert_eq!(s.inflight, 0);
    assert_eq!(s.per_tenant[0].updates, 3);
    assert_eq!(
        host.tenant_engine("t")
            .expect("exists")
            .resident_triangles(),
        *truth.last().expect("nonempty")
    );
}

/// Regression: queries submitted directly on a tenant engine handle are
/// answered by host ticks too, so a tick can answer more tickets than the
/// host admitted. The global in-flight counter must saturate at zero
/// instead of wrapping to ~u64::MAX — a wrapped counter rejected every
/// later submission as globally overloaded, permanently.
#[test]
fn direct_engine_submits_do_not_wrap_the_global_budget() {
    let g = tricount_gen::gnm(48, 160, 11);
    let host = EngineHost::new(HostConfig::new());
    host.add_tenant("t", &g, EngineConfig::new(2))
        .expect("fresh name");

    // One ticket the host never admitted, one it did: the host tick
    // answers both in a single batch.
    let engine = host.tenant_engine("t").expect("exists");
    engine
        .submit(Query::GlobalTriangles {
            algorithm: Algorithm::Ditric,
        })
        .expect("engine admission");
    host.submit(global("t")).expect("host admission");
    host.drain();

    let s = host.stats();
    assert_eq!(s.inflight, 0, "counter saturates instead of wrapping");
    host.submit(global("t"))
        .expect("admission still works after over-answering");
    host.drain();
    assert_eq!(host.stats().inflight, 0);
}

/// The host's Prometheus exposition parses and carries per-tenant labels
/// for the serving counters and the epoch-lifecycle gauges.
#[test]
fn prometheus_carries_per_tenant_labels() {
    let g = tricount_gen::gnm(48, 160, 3);
    let host = EngineHost::new(HostConfig::new());
    host.add_tenant("red", &g, EngineConfig::new(2))
        .expect("fresh name");
    host.add_tenant("blue", &g, EngineConfig::new(2))
        .expect("fresh name");
    host.submit(global("red")).expect("admitted");
    host.drain();
    host.poll();

    let text = host.prometheus();
    let samples = parse_exposition(&text).expect("exposition parses");
    let labelled = |name: &str, tenant: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "tenant" && v == tenant))
            .unwrap_or_else(|| panic!("missing {name}{{tenant={tenant}}}"))
            .value
    };
    assert_eq!(labelled("tricount_host_submitted_total", "red"), 1.0);
    assert_eq!(labelled("tricount_host_submitted_total", "blue"), 0.0);
    assert_eq!(labelled("tricount_host_answered_total", "red"), 1.0);
    assert_eq!(labelled("tricount_host_tenant_epochs_live", "red"), 1.0);
    assert_eq!(labelled("tricount_host_tenant_readers_pinned", "red"), 0.0);
    assert!(labelled("tricount_host_tenant_resident_triangles", "blue") >= 0.0);
    let tenants = samples
        .iter()
        .find(|s| s.name == "tricount_host_tenants")
        .expect("global gauge");
    assert_eq!(tenants.value, 2.0);
}

//! MVCC acceptance: queries pin the epoch snapshot current at admission
//! and are answered against exactly that graph state — never a mid-batch
//! epoch — while updates publish new epochs concurrently. Includes the
//! regression test for the old read-your-writes tick (which folded
//! pending overlays into the live state and answered *waiting* queries
//! against the post-update graph), a proptest driving random
//! submit/update/tick interleavings at 1, 4 and 9 PEs over both
//! transports against a serialized oracle, true cross-thread
//! reads-during-writes, and the epoch retire-list lifecycle.

use proptest::prelude::*;
use std::sync::Mutex;
use tricount_comm::TransportKind;
use tricount_core::config::Algorithm;
use tricount_core::seq;
use tricount_delta::{apply_to_csr, UpdateBatch};
use tricount_engine::{Engine, EngineConfig, Query, QueryAnswer};
use tricount_graph::intersect::merge_count;
use tricount_graph::Csr;

fn count_of(g: &Csr) -> u64 {
    seq::compact_forward(g).triangles
}

fn support_of(g: &Csr, edges: &[(u64, u64)]) -> Vec<u64> {
    edges
        .iter()
        .map(|&(a, b)| merge_count(g.neighbors(a), g.neighbors(b)).0)
        .collect()
}

/// Clamps `batch` into the vertex range `[0, n)`.
fn clamp(batch: &UpdateBatch, n: u64) -> UpdateBatch {
    let mut out = UpdateBatch::new();
    for op in &batch.ops {
        let (u, v) = op.endpoints();
        if u < n && v < n {
            if op.is_insert() {
                out.insert(u, v);
            } else {
                out.delete(u, v);
            }
        }
    }
    out
}

/// Regression for the pre-MVCC `tick()`: queries admitted *before* an
/// update batch must be answered against their admission-time graph even
/// when the draining tick happens after the update committed. The old
/// read-your-writes compaction folded pending overlays into the single
/// live state, so every waiting query observed the mid-batch epoch.
#[test]
fn waiting_queries_do_not_observe_mid_batch_epochs() {
    let g = tricount_gen::rgg2d_default(220, 3);
    let mut cfg = EngineConfig::new(4);
    cfg.batch_max = 8;
    let e = Engine::build(&g, cfg);

    let mut b1 = UpdateBatch::new();
    b1.insert(0, 7);
    b1.insert(1, 9);
    b1.delete(2, 3);
    let g1 = apply_to_csr(&g, &b1.canonicalize());
    let mut b2 = UpdateBatch::new();
    b2.insert(4, 11);
    b2.insert(0, 13);
    let g2 = apply_to_csr(&g1, &b2.canonicalize());

    // Interleave: submit → update → submit → update → submit, then drain
    // everything in ONE tick.
    let q0 = e
        .submit(Query::GlobalTriangles {
            algorithm: Algorithm::Cetric,
        })
        .expect("admitted");
    let r1 = e.apply_updates(&b1).expect("valid batch");
    let q1 = e
        .submit(Query::GlobalTriangles {
            algorithm: Algorithm::Ditric,
        })
        .expect("admitted");
    let r2 = e.apply_updates(&b2).expect("valid batch");
    let q2 = e
        .submit(Query::GlobalTriangles {
            algorithm: Algorithm::Cetric2,
        })
        .expect("admitted");
    assert_eq!(
        (r1.epoch, r2.epoch),
        (1, 2),
        "each batch published an epoch"
    );

    let answers = e.tick_pinned();
    assert_eq!(answers.len(), 3, "one tick drains all three");
    let lookup = |id| {
        answers
            .iter()
            .find(|(t, _, _)| *t == id)
            .map(|(_, ep, a)| (*ep, a.clone().expect("answers")))
            .expect("answered")
    };
    assert_eq!(
        lookup(q0),
        (0, QueryAnswer::Count(count_of(&g))),
        "query admitted before both updates sees the original graph"
    );
    assert_eq!(
        lookup(q1),
        (1, QueryAnswer::Count(count_of(&g1))),
        "query admitted between the updates sees exactly the first batch"
    );
    assert_eq!(
        lookup(q2),
        (2, QueryAnswer::Count(count_of(&g2))),
        "query admitted after both updates sees both batches"
    );
    assert_eq!(e.resident_triangles(), count_of(&g2));
}

/// Epoch lifecycle: a pinned reader keeps its superseded epoch alive;
/// answering it retires the epoch (recorded in the retire counters) and
/// leaves only the tip.
#[test]
fn pinned_reader_keeps_epoch_alive_until_drained() {
    let g = tricount_gen::rgg2d_default(180, 5);
    let e = Engine::build(&g, EngineConfig::new(2));
    e.submit(Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    })
    .expect("admitted");
    // A guaranteed-effective batch: insert the first absent pair.
    let (a, b) = {
        let mut found = None;
        'outer: for a in 0..g.num_vertices() {
            for b in (a + 1)..g.num_vertices() {
                if !g.neighbors(a).contains(&b) {
                    found = Some((a, b));
                    break 'outer;
                }
            }
        }
        found.expect("graph is not complete")
    };
    let mut batch = UpdateBatch::new();
    batch.insert(a, b);
    let r = e.apply_updates(&batch).expect("valid batch");
    assert_eq!(r.inserted, 1, "the batch is effective");

    let s = e.stats();
    assert_eq!(s.epoch, 1);
    assert_eq!(s.epochs_live, 2, "epoch 0 survives for its pinned reader");
    assert_eq!(s.readers_pinned, 1);
    assert_eq!(s.epochs_retired, 0);

    let answers = e.tick();
    assert_eq!(answers.len(), 1);
    let s = e.stats();
    assert_eq!(s.epochs_live, 1, "drained epoch 0 retired");
    assert_eq!(s.readers_pinned, 0);
    assert_eq!(s.epochs_retired, 1);
    assert!(
        s.epoch_lifetime.count >= 1,
        "retired epoch recorded a lifetime sample"
    );
}

/// True concurrency: a writer thread streams update batches while a
/// reader thread submits and ticks global counts through a cloned engine
/// handle. Every answer must bit-equal the serial oracle's count for the
/// epoch the answer reports — a read racing a write sees either the old
/// or the new epoch, never a mid-batch state.
#[test]
fn concurrent_reads_match_their_pinned_epoch() {
    let g = tricount_gen::rgg2d_default(200, 7);
    let e = Engine::build(&g, EngineConfig::new(4));
    let initial = e.resident_triangles();
    assert_eq!(initial, count_of(&g));

    // Pre-plan effective batches and the truth per epoch.
    let mut truth = vec![initial];
    let mut cur = g.clone();
    let mut batches = Vec::new();
    for i in 0..4u64 {
        let mut b = UpdateBatch::new();
        b.insert(2 * i, 2 * i + 31);
        b.insert(2 * i + 1, 2 * i + 57);
        b.delete(i, i + 1);
        let canonical = b.canonicalize();
        cur = apply_to_csr(&cur, &canonical);
        truth.push(count_of(&cur));
        batches.push(b);
    }

    let answered: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        let writer = e.clone();
        let reader = e.clone();
        let w = s.spawn(move || {
            for (i, b) in batches.iter().enumerate() {
                let r = writer.apply_updates(b).expect("valid batch");
                assert_eq!(r.epoch, i as u64 + 1, "batches publish in order");
            }
        });
        let answered = &answered;
        let r = s.spawn(move || {
            let mut got = 0usize;
            while got < 12 {
                if reader
                    .submit(Query::GlobalTriangles {
                        algorithm: Algorithm::Cetric,
                    })
                    .is_ok()
                {
                    for (_, epoch, a) in reader.tick_pinned() {
                        let QueryAnswer::Count(c) = a.expect("answers") else {
                            panic!("expected Count");
                        };
                        answered.lock().expect("answers lock").push((epoch, c));
                        got += 1;
                    }
                }
            }
        });
        w.join().expect("writer");
        r.join().expect("reader");
    });

    let answered = answered.into_inner().expect("answers lock");
    assert!(answered.len() >= 12);
    for (epoch, c) in &answered {
        assert_eq!(
            *c, truth[*epoch as usize],
            "answer at epoch {epoch} matches the serial oracle"
        );
    }
    let s = e.stats();
    assert_eq!(s.readers_pinned, 0, "everything drained");
    assert_eq!(e.resident_triangles(), *truth.last().expect("nonempty"));
}

/// Regression: `stats()`/`prometheus()` racing a tick's lazy seal must
/// not deadlock. The old `stats()` held the metrics mutex while peeking
/// the tip's sealed mutex, while the seal held the sealed mutex across a
/// fold that records into metrics — opposite acquisition orders, so a
/// stats call during an in-flight fold wedged both threads forever (this
/// test then hangs until the harness timeout).
#[test]
fn stats_never_deadlock_against_a_lazy_seal() {
    let g = tricount_gen::rgg2d_default(220, 11);
    let e = Engine::build(&g, EngineConfig::new(4));
    for round in 0..4u64 {
        // Dirty the tip: an effective batch small enough to stay below
        // the compaction threshold, so the next tick must lazily seal.
        let mut b = UpdateBatch::new();
        b.insert(round, round + 19);
        b.insert(round + 1, round + 43);
        e.apply_updates(&b).expect("valid batch");
        assert!(e.is_dirty(), "tip carries a frozen overlay");
        e.submit(Query::GlobalTriangles {
            algorithm: Algorithm::Cetric,
        })
        .expect("admitted");

        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let stats_handle = e.clone();
            let ticker = e.clone();
            let done = &done;
            let observer = s.spawn(move || {
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let st = stats_handle.stats();
                    assert!(st.submitted >= st.answered);
                    let _ = stats_handle.prometheus();
                }
            });
            let answers = s.spawn(move || ticker.tick()).join().expect("ticker");
            assert_eq!(answers.len(), 1);
            done.store(true, std::sync::atomic::Ordering::Relaxed);
            observer.join().expect("observer");
        });
    }
}

/// One interleaving op of the proptest script.
#[derive(Debug, Clone)]
enum Op {
    /// Submit a global count under the variant with this index.
    Global(usize),
    /// Submit an edge-support probe.
    Support,
    /// Apply an update batch.
    Update(UpdateBatch),
    /// Drain one tick.
    Tick,
}

fn arb_batch(n: u64) -> impl Strategy<Value = UpdateBatch> {
    proptest::collection::vec((0u64..2, 0..n, 0..n), 1..12).prop_map(|ops| {
        let mut b = UpdateBatch::new();
        for (ins, u, v) in ops {
            if ins == 1 {
                b.insert(u, v);
            } else {
                b.delete(u, v);
            }
        }
        b
    })
}

fn arb_ops(n: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..7).prop_map(Op::Global),
            Just(Op::Support),
            arb_batch(n).prop_map(Op::Update),
            Just(Op::Tick),
        ],
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random submit/update/tick interleavings across epochs, at 1, 4 and
    /// 9 PEs over both transports: every answer bit-equals the value a
    /// fully serialized execution produces on the query's admission-time
    /// graph — for all 7 global variants and for edge-support probes.
    #[test]
    fn random_interleavings_are_serializable(
        n in 14u64..28,
        edge_factor in 1u64..4,
        seed in 0u64..500,
        ops in (14u64..28).prop_flat_map(arb_ops),
    ) {
        let g = tricount_gen::gnm(n, n * edge_factor, seed);
        let probe: Vec<(u64, u64)> = vec![(0, n / 2), (1, n - 1), (n / 3, n / 2 + 1)];
        for (p, transport) in [
            (1usize, TransportKind::Sim),
            (4, TransportKind::Sim),
            (9, TransportKind::Sim),
            (1, TransportKind::Threads),
            (4, TransportKind::Threads),
            (9, TransportKind::Threads),
        ] {
            let mut cfg = EngineConfig::new(p);
            cfg.dist.transport = transport;
            cfg.batch_max = 4;
            let e = Engine::build(&g, cfg);
            // The serialized oracle: the graph as of each admission.
            let mut serial = g.clone();
            let mut expected: Vec<(tricount_engine::TicketId, QueryAnswer)> = Vec::new();
            let mut got: Vec<(tricount_engine::TicketId, QueryAnswer)> = Vec::new();
            for op in &ops {
                match op {
                    Op::Global(idx) => {
                        let alg = Algorithm::all()[*idx];
                        let id = e.submit(Query::GlobalTriangles { algorithm: alg })
                            .expect("under capacity");
                        expected.push((id, QueryAnswer::Count(count_of(&serial))));
                    }
                    Op::Support => {
                        let id = e.submit(Query::EdgeSupport { edges: probe.clone() })
                            .expect("under capacity");
                        let s = support_of(&serial, &probe);
                        expected.push((id, QueryAnswer::Support(
                            probe.iter().copied().zip(s).collect(),
                        )));
                    }
                    Op::Update(b) => {
                        let clamped = clamp(b, n);
                        serial = apply_to_csr(&serial, &clamped.canonicalize());
                        let r = e.apply_updates(&clamped).expect("in-range batch");
                        prop_assert_eq!(
                            r.triangles_after,
                            count_of(&serial),
                            "receipt tracks the oracle, p {} {:?}", p, transport
                        );
                    }
                    Op::Tick => {
                        for (id, a) in e.tick() {
                            got.push((id, a.expect("valid queries")));
                        }
                    }
                }
            }
            // Final drain.
            loop {
                let answers = e.tick();
                if answers.is_empty() {
                    break;
                }
                for (id, a) in answers {
                    got.push((id, a.expect("valid queries")));
                }
            }
            prop_assert_eq!(got.len(), expected.len(), "p {} {:?}", p, transport);
            got.sort_by_key(|(id, _)| *id);
            expected.sort_by_key(|(id, _)| *id);
            for ((gid, ga), (eid, ea)) in got.iter().zip(&expected) {
                prop_assert_eq!(gid, eid, "p {} {:?}", p, transport);
                prop_assert_eq!(
                    ga, ea,
                    "answer {:?} bit-equals serialized execution, p {} {:?}",
                    gid, p, transport
                );
            }
            prop_assert_eq!(e.resident_triangles(), count_of(&serial));
            let s = e.stats();
            prop_assert_eq!(s.readers_pinned, 0, "all pins drained");
            prop_assert_eq!(s.epochs_live, 1, "only the tip survives a full drain");
        }
    }
}

//! Engine serving semantics: caching, epoch invalidation, admission
//! control, batching, and schedule-independence of batched results.

use tricount_core::config::Algorithm;
use tricount_engine::{Engine, EngineConfig, EngineError, Query, QueryAnswer};

fn small_engine(p: usize) -> Engine {
    let g = tricount_gen::rgg2d_default(128, 3);
    Engine::build(&g, EngineConfig::new(p))
}

#[test]
fn repeated_identical_query_hits_the_cache() {
    let e = small_engine(2);
    let q = Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    };
    let a1 = e.query(q.clone()).unwrap();
    let a2 = e.query(q).unwrap();
    assert_eq!(a1, a2);
    let s = e.stats();
    assert_eq!(s.cache_misses, 1, "first query executes");
    assert_eq!(s.cache_hits, 1, "second query is served from cache");
    assert!(s.cache_hit_rate() > 0.0);
}

#[test]
fn advance_epoch_invalidates_the_cache() {
    let e = small_engine(2);
    let q = Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    };
    let a1 = e.query(q.clone()).unwrap();
    assert_eq!(e.stats().cache_entries, 1);
    e.advance_epoch();
    assert_eq!(e.epoch(), 1);
    assert_eq!(e.stats().cache_entries, 0, "old-epoch entries are dropped");
    let a2 = e.query(q).unwrap();
    assert_eq!(a1, a2, "the graph did not change, only the epoch");
    let s = e.stats();
    assert_eq!(s.cache_misses, 2, "the second query re-executed");
    assert_eq!(s.cache_hits, 0);
}

#[test]
fn submission_beyond_queue_capacity_is_rejected() {
    let g = tricount_gen::rgg2d_default(128, 3);
    let mut cfg = EngineConfig::new(2);
    cfg.queue_capacity = 2;
    let e = Engine::build(&g, cfg);
    let q = Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    };
    assert!(e.submit(q.clone()).is_ok());
    assert!(e.submit(q.clone()).is_ok());
    match e.submit(q.clone()) {
        Err(EngineError::Overloaded { depth, capacity }) => {
            assert_eq!(depth, 2);
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(e.stats().rejected, 1);
    // draining the queue readmits
    let answered = e.tick();
    assert_eq!(answered.len(), 2);
    assert!(e.submit(q).is_ok());
}

#[test]
fn lcc_queries_in_one_batch_share_one_run() {
    let e = small_engine(2);
    let t1 = e
        .submit(Query::VertexLcc {
            vertices: vec![0, 1, 2],
        })
        .unwrap();
    let t2 = e
        .submit(Query::VertexLcc {
            vertices: vec![3, 4],
        })
        .unwrap();
    let answers = e.tick();
    assert_eq!(answers.len(), 2);
    assert_eq!(answers[0].0, t1);
    assert_eq!(answers[1].0, t2);
    let s = e.stats();
    // different vertex sets, same underlying full-vector computation
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.cache_hits, 1);
}

#[test]
fn unknown_vertices_fail_without_executing() {
    let e = small_engine(2);
    let n = e.num_vertices();
    match e.query(Query::VertexLcc {
        vertices: vec![n + 5],
    }) {
        Err(EngineError::UnknownVertex {
            vertex,
            num_vertices,
        }) => {
            assert_eq!(vertex, n + 5);
            assert_eq!(num_vertices, n);
        }
        other => panic!("expected UnknownVertex, got {other:?}"),
    }
    match e.query(Query::EdgeSupport {
        edges: vec![(0, n)],
    }) {
        Err(EngineError::UnknownVertex { vertex, .. }) => assert_eq!(vertex, n),
        other => panic!("expected UnknownVertex, got {other:?}"),
    }
    assert_eq!(e.stats().cache_entries, 0, "nothing was computed");
}

/// Batched answers must be independent of the simulated message schedule:
/// the same batch driven through engines with different perturbation seeds
/// yields bit-identical answers (the engine-level counterpart of
/// `tricount_verify::check_schedule_independence`, which the correctness
/// suite applies to the rank programs directly).
#[test]
fn batched_results_are_schedule_independent() {
    let g = tricount_gen::rgg2d_default(192, 5);
    let workload = tricount_engine::scripted_workload(24, g.num_vertices(), 11);
    let mut all_answers: Vec<Vec<QueryAnswer>> = Vec::new();
    for seed in [None, Some(1u64), Some(99)] {
        let mut cfg = EngineConfig::new(3);
        cfg.perturb_seed = seed;
        let e = Engine::build(&g, cfg);
        let answers: Vec<QueryAnswer> = workload
            .iter()
            .map(|q| e.query(q.clone()).unwrap())
            .collect();
        all_answers.push(answers);
    }
    assert_eq!(all_answers[0], all_answers[1]);
    assert_eq!(all_answers[0], all_answers[2]);
}

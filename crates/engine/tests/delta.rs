//! Dynamic-graph acceptance: the incrementally maintained resident
//! triangle count must bit-equal a from-scratch rebuild for every tested
//! (graph, batch, PE-count) triple — including randomised mixed batches
//! under proptest — the delta protocol must be schedule independent, and
//! a small batch must move far fewer communication words than a full
//! rebuild.

use proptest::prelude::*;
use std::sync::Mutex;
use tricount_comm::SimOptions;
use tricount_core::config::{Algorithm, DistConfig};
use tricount_core::dist::delta as delta_dist;
use tricount_core::dist::residency::build_residency;
use tricount_core::seq;
use tricount_delta::{apply_to_csr, random_batch, Overlay, UpdateBatch};
use tricount_engine::{Engine, EngineConfig, EngineError, Query, QueryAnswer};
use tricount_graph::dist::DistGraph;
use tricount_graph::Csr;

fn engine_for(g: &Csr, p: usize) -> Engine {
    Engine::build(g, EngineConfig::new(p))
}

/// A random mixed batch: ops over vertex ids of `g`, roughly half aimed at
/// present edges (deletions / redundant inserts) and half at random pairs
/// (insertions / no-op deletes), plus duplicates and self-loops that
/// canonicalisation must absorb.
fn arb_batch(n: u64) -> impl Strategy<Value = UpdateBatch> {
    proptest::collection::vec((0u64..2, 0..n, 0..n), 0..24).prop_map(|ops| {
        let mut b = UpdateBatch::new();
        for (ins, u, v) in ops {
            if ins == 1 {
                b.insert(u, v);
            } else {
                b.delete(u, v);
            }
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For random sparse graphs and random mixed batches, the engine's
    /// incremental count bit-equals both the sequential recount of the
    /// edited graph and a freshly built engine over it — at 1, 4 and 9 PEs.
    #[test]
    fn incremental_count_equals_rebuild(
        n in 12u64..32,
        edge_factor in 1u64..4,
        seed in 0u64..1000,
        batch in (12u64..32).prop_flat_map(arb_batch),
    ) {
        let g = tricount_gen::gnm(n, n * edge_factor, seed);
        // clamp batch vertices into range (the strategy's id space may
        // exceed this case's n)
        let mut clamped = UpdateBatch::new();
        for op in &batch.ops {
            let (u, v) = op.endpoints();
            if u < n && v < n {
                if op.is_insert() {
                    clamped.insert(u, v);
                } else {
                    clamped.delete(u, v);
                }
            }
        }
        let edited = apply_to_csr(&g, &clamped.canonicalize());
        let expected = seq::compact_forward(&edited).triangles;
        for p in [1usize, 4, 9] {
            let e = engine_for(&g, p);
            let before = e.resident_triangles();
            prop_assert_eq!(before, seq::compact_forward(&g).triangles, "baseline, p {}", p);
            let receipt = e.apply_updates(&clamped).expect("in-range batch");
            prop_assert_eq!(receipt.triangles_before, before);
            prop_assert_eq!(receipt.triangles_after, expected, "incremental count, p {}", p);
            prop_assert_eq!(e.resident_triangles(), expected);
            let fresh = engine_for(&edited, p);
            prop_assert_eq!(fresh.resident_triangles(), expected, "fresh rebuild, p {}", p);
        }
    }
}

/// Chained batches with a low compaction threshold: the resident count
/// tracks the evolving graph exactly, queries see the updated topology
/// (read-your-writes through tick-time compaction), and epochs advance
/// only when the graph changes.
#[test]
fn chained_batches_track_evolving_graph() {
    let mut g = tricount_gen::rgg2d_default(200, 11);
    let mut cfg = EngineConfig::new(4);
    cfg.compaction_fraction = 0.001; // compact eagerly
    let e = Engine::build(&g, cfg);
    let mut compactions = 0;
    for round in 0..6u64 {
        let batch = random_batch(&g, 12, 1000 + round);
        g = apply_to_csr(&g, &batch.canonicalize());
        let epoch_before = e.epoch();
        let receipt = e.apply_updates(&batch).expect("valid batch");
        let expected = seq::compact_forward(&g).triangles;
        assert_eq!(
            e.resident_triangles(),
            expected,
            "round {round} incremental count"
        );
        if receipt.inserted + receipt.deleted > 0 {
            assert_eq!(e.epoch(), epoch_before + 1, "round {round} epoch");
        } else {
            assert_eq!(e.epoch(), epoch_before);
        }
        if receipt.compacted {
            compactions += 1;
        }
        // queries run against the updated graph, not the stale base
        match e.query(Query::GlobalTriangles {
            algorithm: Algorithm::Cetric,
        }) {
            Ok(QueryAnswer::Count(c)) => assert_eq!(c, expected, "round {round} query"),
            other => panic!("expected Count, got {other:?}"),
        }
        assert!(!e.is_dirty(), "tick must leave the engine compacted");
    }
    assert!(compactions > 0, "threshold was set to trigger compaction");
    let s = e.stats();
    assert_eq!(s.updates_applied, 6);
    assert!(s.compactions >= compactions);
    assert_eq!(s.resident_triangles, seq::compact_forward(&g).triangles);
    // compaction is communication-free: the targeted ghost refresh already
    // delivered every degree it needs
    assert_eq!(s.compaction_comm.sent_messages, 0);
    assert_eq!(s.compaction_comm.sent_words, 0);
    assert_eq!(s.compaction_comm.coll_word_units, 0);
    let json = s.to_json();
    assert!(json.contains("\"updates_applied\":6"));
    assert!(json.contains("\"resident_triangles\":"));
    let prom = e.prometheus();
    assert!(prom.contains("tricount_engine_updates_applied_total 6"));
    assert!(prom.contains("tricount_engine_resident_triangles"));
}

/// The delta rank program is schedule independent: perturbed message
/// delivery and thread interleaving leave every per-rank outcome
/// bit-identical.
#[test]
fn update_protocol_is_schedule_independent() {
    let g = tricount_gen::rgg2d_default(256, 5);
    let p = 4;
    let cfg = DistConfig::default();
    let dg = DistGraph::new_balanced_vertices(&g, p);
    let (ranks, _) = build_residency(dg, &cfg, &SimOptions::default());
    let batch = random_batch(&g, 20, 99).canonicalize();

    tricount_verify::determinism::check_schedule_independence(
        p,
        &[1, 2, 3, 4],
        &SimOptions::default(),
        |ctx| {
            // fresh overlay per run: the harness re-executes the program
            let mut ov = Overlay::for_local(&ranks[ctx.rank()].local);
            let out =
                delta_dist::apply_batch_rank(ctx, &ranks[ctx.rank()].local, &mut ov, &batch, &cfg);
            (
                out.inserted,
                out.deleted,
                out.noops,
                out.triangles_added,
                out.triangles_removed,
                out.overlay_entries,
            )
        },
    )
    .expect("update outcome must not depend on the schedule");
}

/// The ISSUE's comm criterion: applying a small batch moves < 10% of the
/// communication words (p2p + collective) of a full build on the same
/// graph.
#[test]
fn small_batch_comm_is_under_a_tenth_of_rebuild() {
    let g = tricount_gen::rgg2d_default(2000, 21);
    let e = engine_for(&g, 4);
    let build_totals = {
        let s = e.setup_stats().totals();
        let b = e.baseline_stats().totals();
        (s.sent_words + s.coll_word_units) + (b.sent_words + b.coll_word_units)
    };
    assert!(build_totals > 0, "build must communicate");
    let batch = random_batch(&g, 8, 7);
    let receipt = e.apply_updates(&batch).expect("valid batch");
    let update_words = receipt.comm.sent_words + receipt.comm.coll_word_units;
    assert!(
        (update_words as f64) < 0.10 * build_totals as f64,
        "update moved {update_words} words, build moved {build_totals}"
    );
}

/// Degenerate batches: empty and self-cancelling batches return a zero
/// receipt without bumping the epoch; out-of-range vertices are rejected.
#[test]
fn degenerate_batches_and_validation() {
    let g = tricount_gen::rgg2d_default(100, 2);
    let e = engine_for(&g, 2);
    let epoch = e.epoch();

    let receipt = e.apply_updates(&UpdateBatch::new()).expect("empty is fine");
    assert_eq!(receipt.delta(), 0);
    assert_eq!(
        (receipt.inserted, receipt.deleted, receipt.noops),
        (0, 0, 0)
    );
    assert_eq!(e.epoch(), epoch, "empty batch must not bump the epoch");

    let mut cancel = UpdateBatch::new();
    cancel.insert(3, 4);
    cancel.delete(4, 3); // cancels in canonicalisation
    cancel.insert(5, 5); // self-loop, dropped
    let receipt = e.apply_updates(&cancel).expect("cancelling is fine");
    assert_eq!(receipt.delta(), 0);
    assert_eq!(e.epoch(), epoch);

    // pure no-ops against the live graph: effective count 0, epoch stays
    let mut noop = UpdateBatch::new();
    let v = (0..100u64)
        .find(|&v| !g.neighbors(v).is_empty())
        .expect("edges exist");
    noop.insert(v, g.neighbors(v)[0]); // already present
    let receipt = e.apply_updates(&noop).expect("noop is fine");
    assert_eq!((receipt.inserted, receipt.deleted), (0, 0));
    assert_eq!(receipt.noops, 1);
    assert_eq!(e.epoch(), epoch, "no-op batch must not bump the epoch");

    let mut bad = UpdateBatch::new();
    bad.insert(0, 100); // out of range
    match e.apply_updates(&bad) {
        Err(EngineError::UnknownVertex { vertex, .. }) => assert_eq!(vertex, 100),
        other => panic!("expected UnknownVertex, got {other:?}"),
    }
}

/// `apply_batch_sim` (the harness entry) agrees with the engine path and
/// leaves overlays consistent for a follow-up compaction.
#[test]
fn sim_entry_matches_engine_path() {
    let g = tricount_gen::rgg2d_default(180, 9);
    let p = 3;
    let cfg = DistConfig::default();
    let dg = DistGraph::new_balanced_vertices(&g, p);
    let (ranks, _) = build_residency(dg, &cfg, &SimOptions::default());
    let overlays: Vec<Mutex<Overlay>> = ranks
        .iter()
        .map(|r| Mutex::new(Overlay::for_local(&r.local)))
        .collect();
    let batch = random_batch(&g, 15, 33);
    let canonical = batch.canonicalize();
    let (outcomes, _, _) =
        delta_dist::apply_batch_sim(&ranks, &overlays, &canonical, &cfg, &SimOptions::default());

    let e = engine_for(&g, p);
    let receipt = e.apply_updates(&batch).expect("valid batch");
    assert_eq!(outcomes[0].inserted, receipt.inserted);
    assert_eq!(outcomes[0].deleted, receipt.deleted);
    assert_eq!(outcomes[0].noops, receipt.noops);
    assert_eq!(
        outcomes[0].triangles_added as i64 - outcomes[0].triangles_removed as i64,
        receipt.delta(),
    );
}

//! Engine observability: queue-wait latency records, pool statistics,
//! lifecycle spans, and the Prometheus exposition endpoint.

use tricount_core::config::Algorithm;
use tricount_engine::{Engine, EngineConfig, Query};
use tricount_obs::parse_exposition;

fn small_engine(p: usize) -> Engine {
    let g = tricount_gen::rgg2d_default(128, 3);
    Engine::build(&g, EngineConfig::new(p))
}

#[test]
fn per_query_records_carry_queue_wait() {
    let e = small_engine(2);
    e.submit(Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    })
    .unwrap();
    e.submit(Query::VertexLcc {
        vertices: vec![0, 1],
    })
    .unwrap();
    let answered = e.tick();
    assert_eq!(answered.len(), 2);
    let s = e.stats();
    assert_eq!(s.per_query.len(), 2);
    for r in &s.per_query {
        assert!(r.queue_seconds >= 0.0);
        assert!(r.queue_seconds < 60.0, "queue wait is sane");
    }
    assert_eq!(s.queue_wait.count, 2, "every answer recorded a queue wait");
    assert!(s.queue_wait.max >= s.queue_wait.p50);
    assert_eq!(s.run_wall.count, 2, "both keys executed (no cache hits)");
    assert!(s.run_wall.max > 0.0);
    assert_eq!(s.run_modeled.count, 2);
}

#[test]
fn pool_stats_accumulate_across_ticks() {
    let e = small_engine(2);
    for _ in 0..2 {
        e.submit(Query::GlobalTriangles {
            algorithm: Algorithm::Cetric,
        })
        .unwrap();
        e.submit(Query::ApproxTriangles {
            max_rel_error: 0.25,
        })
        .unwrap();
        e.tick();
        e.advance_epoch();
    }
    let s = e.stats();
    let executed: u64 = s.pool.iter().map(|w| w.executed).sum();
    assert_eq!(
        executed, 4,
        "two distinct keys per tick, two ticks, all executed on the pool"
    );
    for w in &s.pool {
        assert!(w.steals_succeeded <= w.steals_attempted);
    }
}

#[test]
fn lifecycle_spans_cover_every_tick() {
    let e = small_engine(2);
    e.submit(Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    })
    .unwrap();
    e.tick();
    e.tick(); // empty tick: no batch, no spans
    let s = e.stats();
    assert_eq!(s.batches, 1, "empty ticks are not counted");
    assert_eq!(
        s.spans.len(),
        4,
        "batch/admit/run/answer per non-empty tick"
    );
    for span in &s.spans {
        assert!(span.end_nanos >= span.begin_nanos);
        assert!(["batch", "admit", "run", "answer"].contains(&span.label));
    }
    let batch0: Vec<_> = s.spans.iter().filter(|sp| sp.batch == 0).collect();
    assert_eq!(batch0.len(), 4);
    let outer = batch0.iter().find(|sp| sp.label == "batch").unwrap();
    for sp in &batch0 {
        assert!(sp.begin_nanos >= outer.begin_nanos);
        assert!(sp.end_nanos <= outer.end_nanos);
    }
}

#[test]
fn prometheus_exposition_parses_and_carries_quantiles() {
    let e = small_engine(2);
    let q = Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    };
    e.query(q.clone()).unwrap();
    e.query(q).unwrap(); // cache hit
    let text = e.prometheus();
    let samples = parse_exposition(&text).expect("exposition parses");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(get("tricount_engine_submitted_total"), 2.0);
    assert_eq!(get("tricount_engine_answered_total"), 2.0);
    assert_eq!(get("tricount_engine_cache_hits_total"), 1.0);
    assert_eq!(get("tricount_engine_cache_misses_total"), 1.0);
    assert_eq!(get("tricount_engine_queue_wait_seconds_count"), 2.0);
    assert_eq!(get("tricount_engine_run_wall_seconds_count"), 1.0);
    let p99 = samples
        .iter()
        .find(|s| {
            s.name == "tricount_engine_queue_wait_seconds_quantile"
                && s.labels.iter().any(|(k, v)| k == "q" && v == "0.99")
        })
        .expect("p99 quantile gauge");
    assert!(p99.value >= 0.0);
    assert!(
        samples
            .iter()
            .any(|s| s.name == "tricount_engine_pool_executed_total"),
        "per-worker pool counters present"
    );
}

/// Epoch-lifecycle observability round-trip: the MVCC gauges appear in
/// `EngineStats`, its JSON, and the parsed Prometheus exposition, and
/// they move when an epoch is published and retired.
#[test]
fn epoch_lifecycle_metrics_round_trip() {
    let e = small_engine(2);
    // Pin epoch 0, publish epoch 1 underneath it.
    e.submit(Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    })
    .unwrap();
    e.advance_epoch();
    let pinned = e.stats();
    assert_eq!(pinned.epochs_live, 2);
    assert_eq!(pinned.readers_pinned, 1);
    assert_eq!(pinned.epochs_retired, 0);

    let text = e.prometheus();
    let samples = parse_exposition(&text).expect("exposition parses");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(get("tricount_engine_epochs_live"), 2.0);
    assert_eq!(get("tricount_engine_readers_pinned"), 1.0);
    assert_eq!(get("tricount_engine_epochs_retired_total"), 0.0);
    assert_eq!(get("tricount_engine_epoch_lifetime_seconds_count"), 0.0);

    // Draining the reader retires epoch 0 and records its lifetime.
    e.tick();
    let drained = e.stats();
    assert_eq!(drained.epochs_live, 1);
    assert_eq!(drained.readers_pinned, 0);
    assert_eq!(drained.epochs_retired, 1);
    assert_eq!(drained.epoch_lifetime.count, 1);
    assert!(drained.epoch_lifetime.max >= 0.0);

    let samples = parse_exposition(&e.prometheus()).expect("exposition parses");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(get("tricount_engine_epochs_live"), 1.0);
    assert_eq!(get("tricount_engine_readers_pinned"), 0.0);
    assert_eq!(get("tricount_engine_epochs_retired_total"), 1.0);
    assert_eq!(get("tricount_engine_epoch_lifetime_seconds_count"), 1.0);

    let json = drained.to_json();
    for needle in [
        "\"epochs_live\":1",
        "\"epochs_retired\":1",
        "\"readers_pinned\":0",
        "\"epoch_lifetime\":{",
    ] {
        assert!(json.contains(needle), "stats JSON carries {needle}");
    }
}

#[test]
fn wall_profiled_engine_reports_contention() {
    use tricount_comm::TransportKind;
    let g = tricount_gen::rgg2d_default(128, 3);

    // profiling off: nothing is profiled, the snapshot stays silent
    let mut plain_cfg = EngineConfig::new(2);
    plain_cfg.dist.transport = TransportKind::Threads;
    let plain = Engine::build(&g, plain_cfg);
    plain
        .submit(Query::GlobalTriangles {
            algorithm: Algorithm::Cetric,
        })
        .unwrap();
    plain.tick();
    let off = plain.stats();
    assert_eq!(off.profiled_runs, 0);
    assert!(!plain.prometheus().contains("tricount_engine_profiled_runs"));

    // profiling on: setup + baseline + the query run all carry meters,
    // and the modeled counters match the unprofiled engine exactly
    let mut cfg = EngineConfig::new(2);
    cfg.dist.transport = TransportKind::Threads;
    cfg.wall_profile = true;
    let e = Engine::build(&g, cfg);
    e.submit(Query::GlobalTriangles {
        algorithm: Algorithm::Cetric,
    })
    .unwrap();
    e.tick();
    let s = e.stats();
    assert!(s.profiled_runs >= 3, "setup, baseline and one query run");
    assert!(s.lock_wait_seconds_total >= 0.0);
    assert!(s.barrier_spin_seconds_total > 0.0, "barriers always spin");
    assert_eq!(
        s.query_comm, off.query_comm,
        "profiling must not perturb the modeled meters"
    );
    assert_eq!(s.resident_triangles, off.resident_triangles);
    let json = s.to_json();
    assert!(json.contains("\"profiled_runs\":"));
    assert!(json.contains("\"barrier_spin_seconds_total\":"));
    let text = e.prometheus();
    let samples = parse_exposition(&text).expect("exposition parses");
    assert!(
        samples
            .iter()
            .any(|x| x.name == "tricount_engine_transport_barrier_spin_seconds" && x.value > 0.0),
        "contention gauges exported"
    );
}

//! A resident query engine over a partitioned graph.
//!
//! The one-shot drivers in `tricount-core` pay the full CETRIC setup —
//! partitioning, ghost degree exchange, degree orientation with ghost
//! expansion, cut-graph contraction — on every call and throw it away. An
//! [`Engine`] performs that setup **exactly once** at [`Engine::build`] and
//! keeps the per-rank state ([`PreparedRank`]) alive, serving a typed query
//! API against it:
//!
//! * [`Query::GlobalTriangles`] — exact count under any algorithm variant,
//! * [`Query::VertexLcc`] — local clustering coefficients of chosen vertices,
//! * [`Query::EdgeSupport`] — per-edge triangle counts,
//! * [`Query::ApproxTriangles`] — AMQ-sketched count for a target error.
//!
//! Requests pass a bounded admission queue ([`Engine::submit`] rejects with
//! [`EngineError::Overloaded`] beyond the configured depth) and execute in
//! batches per [`Engine::tick`]: queries normalising to the same
//! [`QueryKey`](crate::query) share one distributed run (every `VertexLcc`
//! query rides the same full-vector computation), distinct keys run
//! concurrently on a `tricount-par` work-stealing pool, and results land in
//! an **epoch-keyed cache**. Each distributed run executes under the
//! deadlock watchdog (`tricount_comm::run_guarded`), so a wedged query
//! surfaces as [`EngineError::Dist`] carrying the wait-for-graph report
//! instead of taking the server down.
//!
//! # MVCC epochs: reads never wait on writes
//!
//! Every committed graph state is an immutable
//! [`EpochSnapshot`](crate::epoch): the prepared bases, the frozen update
//! overlays on top of them, the degree vector and the resident triangle
//! count. [`Engine::submit`] **pins** the snapshot current at admission;
//! the query runs against exactly that state no matter how many
//! [`Engine::apply_updates`] batches commit in the meantime — a waiting
//! query never observes a mid-batch epoch, and an update never blocks a
//! read (the engine handle is `Clone` + `Send` + `Sync`; ticks and updates
//! may run from different threads concurrently). A retire list
//! ([`EpochTable`](crate::epoch)) frees a superseded epoch the moment its
//! last reader drains. Compaction — folding overlays into fresh prepared
//! state once they exceed [`EngineConfig::compaction_fraction`] of the
//! base, or lazily "sealing" a dirty snapshot the first time a query must
//! serve it — always *builds new* state; published snapshots are never
//! mutated, so folding is automatically restricted to state no pinned
//! reader can still observe.
//!
//! The graph itself is **dynamic**: [`Engine::apply_updates`] applies a
//! batched set of edge insertions/deletions through the distributed delta
//! protocol (`tricount_core::dist::delta`), maintaining the resident
//! triangle count ([`Engine::resident_triangles`]) incrementally instead
//! of recounting, and publishing the result as the next epoch. Queries
//! submitted afterwards see the updated graph; queries already admitted
//! keep their pinned pre-update snapshot.
//!
//! Many tenants can share one process (and one worker pool) through an
//! [`EngineHost`]: a tenant → engine map behind global admission budgets
//! with per-tenant quotas and a concurrent serve loop.

#![warn(missing_docs)]

pub mod check;
mod epoch;
mod host;
mod query;
mod stats;
pub mod workload;

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use tricount_cache::{CacheReport, CacheRunOutcome, CacheSession, RankCache};
use tricount_comm::{run_guarded, run_sim, CostModel, Counters, Ctx, RunStats, SimOptions};
use tricount_core::config::{Algorithm, DistConfig};
use tricount_core::dist::approx::{approx_prepared, ApproxConfig, FilterKind};
use tricount_core::dist::delta as delta_dist;
use tricount_core::dist::dispatch::DispatchReport;
use tricount_core::dist::residency::{build_residency, PreparedRank};
use tricount_core::dist::support::edge_support_rank_cached;
use tricount_core::dist::{baselines, cetric, ditric, lcc, phases};
use tricount_core::result::DistError;
use tricount_delta::{Overlay, UpdateBatch};
use tricount_graph::dist::DistGraph;
use tricount_graph::{Csr, VertexId};
use tricount_obs::{LogHistogram, MetricsRegistry};
use tricount_par::{Pool, WorkerStats};

pub use check::{check_concurrency, CheckOptions, CheckReport};
pub use host::{
    EngineHost, HostConfig, HostError, HostReply, HostRequest, HostStats, ServeHandle, TenantStats,
};
pub use query::{EngineError, Query, QueryAnswer, TicketId};
pub use stats::{EngineSpan, EngineStats, QueryRecord};
pub use workload::scripted_workload;

use epoch::{EpochSnapshot, EpochTable};
use query::{algorithm_index, bits_for_rel_error, CachedValue, QueryKey};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of PEs to partition the graph over.
    pub num_ranks: usize,
    /// Distributed configuration used for the resident setup and for LCC /
    /// approximate runs (global-count queries use their own variant's
    /// configuration).
    pub dist: DistConfig,
    /// Admission bound: [`Engine::submit`] rejects once this many queries
    /// wait in the queue.
    pub queue_capacity: usize,
    /// Maximum queries drained per [`Engine::tick`].
    pub batch_max: usize,
    /// Workers of the intra-engine pool executing distinct cache keys
    /// concurrently.
    pub workers: usize,
    /// Deadlock-watchdog timeout for every distributed query run.
    pub watchdog: Duration,
    /// Cost model for the modeled-latency metrics (also enables the
    /// overlap-aware simulated clock in the runs).
    pub timing: Option<CostModel>,
    /// Perturb message delivery / thread interleaving of query runs under
    /// this seed (`None` = natural schedule). Answers are schedule
    /// independent; the determinism tests exercise exactly this knob.
    pub perturb_seed: Option<u64>,
    /// Compaction trigger: once the summed per-rank overlay entries exceed
    /// this fraction of the base adjacency entries,
    /// [`Engine::apply_updates`] folds the overlays into the next epoch's
    /// prepared state (a communication-free re-orient + re-contract).
    pub compaction_fraction: f64,
    /// Record wall-clock transport events and contention meters on every
    /// run (threads transport only; a no-op on the simulator). Strictly
    /// additive: the modeled counters are bit-identical either way.
    pub wall_profile: bool,
}

impl EngineConfig {
    /// A sensible default configuration over `num_ranks` PEs.
    pub fn new(num_ranks: usize) -> Self {
        EngineConfig {
            num_ranks,
            dist: Algorithm::Cetric.config(),
            queue_capacity: 256,
            batch_max: 32,
            workers: 4,
            watchdog: Duration::from_secs(30),
            timing: Some(CostModel::supermuc()),
            perturb_seed: None,
            compaction_fraction: 0.25,
            wall_profile: false,
        }
    }

    /// Enables the per-PE remote-adjacency cache with the given total word
    /// budget (split evenly across held partitions, capped by
    /// `dist.memory_limit_words` when set).
    pub fn with_cache_budget(mut self, budget_words: u64) -> Self {
        self.dist.cache = tricount_cache::CacheConfig::with_budget(budget_words);
        self
    }
}

/// The outcome of one [`Engine::apply_updates`] call.
#[derive(Debug, Clone)]
pub struct UpdateReceipt {
    /// Epoch after the update (bumped iff the graph changed).
    pub epoch: u64,
    /// Effective edge insertions applied.
    pub inserted: u64,
    /// Effective edge deletions applied.
    pub deleted: u64,
    /// Canonical operations that were no-ops against the live graph
    /// (insert of a present edge, delete of an absent one).
    pub noops: u64,
    /// Resident triangle count before the batch.
    pub triangles_before: u64,
    /// Resident triangle count after the batch.
    pub triangles_after: u64,
    /// Overlay size as a fraction of the base after the batch (before any
    /// triggered compaction).
    pub overlay_fraction: f64,
    /// Whether this batch triggered a compaction.
    pub compacted: bool,
    /// Communication totals of the update run (route + count + refresh;
    /// excludes any compaction).
    pub comm: Counters,
    /// Modeled α+β+t_op time of the update run.
    pub modeled_seconds: f64,
    /// Wall time of the update run on the host.
    pub wall_seconds: f64,
}

impl UpdateReceipt {
    /// The signed triangle delta of the batch.
    pub fn delta(&self) -> i64 {
        self.triangles_after as i64 - self.triangles_before as i64
    }
}

/// A query waiting in the admission queue, pinning the epoch snapshot it
/// was admitted on.
struct Ticket {
    id: TicketId,
    query: Query,
    /// When the query was admitted (queue-wait latency starts here).
    submitted: Instant,
    /// The graph state this query will be answered against, no matter how
    /// many updates commit before its tick.
    snapshot: Arc<EpochSnapshot>,
}

/// Mutable serving counters (the raw material of [`EngineStats`]).
#[derive(Debug, Default)]
struct Metrics {
    submitted: u64,
    rejected: u64,
    answered: u64,
    cache_hits: u64,
    cache_misses: u64,
    batches: u64,
    query_comm: Counters,
    query_preprocessing_comm: Counters,
    modeled_seconds_total: f64,
    wall_seconds_total: f64,
    updates_applied: u64,
    edges_inserted: u64,
    edges_deleted: u64,
    update_noops: u64,
    compactions: u64,
    update_comm: Counters,
    compaction_comm: Counters,
    update_modeled_seconds: f64,
    update_wall_seconds: f64,
    per_query: Vec<QueryRecord>,
    /// Queue-wait latency (submit → draining tick), nanoseconds.
    queue_wait: LogHistogram,
    /// Wall latency of executed runs, nanoseconds.
    run_wall: LogHistogram,
    /// Modeled latency of executed runs, nanoseconds.
    run_modeled: LogHistogram,
    /// Queue depth observed at each submit.
    queue_depth_at_submit: LogHistogram,
    /// Tickets drained per tick.
    batch_sizes: LogHistogram,
    /// Accumulated intra-engine pool counters.
    pool_workers: Vec<WorkerStats>,
    /// Runs that carried wall-clock contention meters.
    profiled_runs: u64,
    /// Summed queue lock-wait seconds over all profiled runs.
    lock_wait_seconds_total: f64,
    /// Summed barrier spin seconds over all profiled runs.
    barrier_spin_seconds_total: f64,
    /// Wall events dropped to ring overflow over all profiled runs.
    wall_events_dropped: u64,
    /// Lifecycle spans (batch/admit/run/answer per tick).
    spans: Vec<EngineSpan>,
    /// Per-phase kernel-dispatch tallies over every query and update run,
    /// folded in canonical (phase, rank) order.
    kernel_dispatch: DispatchReport,
    /// Adjacency-cache session reports folded over query runs (metered —
    /// adjacency words separated from collective words — even when the
    /// cache is disabled).
    query_adjacency: CacheReport,
    /// Adjacency-cache session reports folded over update runs.
    update_adjacency: CacheReport,
}

impl Metrics {
    /// Folds a profiled run's transport contention meters in (no-op for
    /// unprofiled runs — `stats.contention` is `None`).
    fn absorb_contention(&mut self, stats: &RunStats) {
        if let Some(c) = &stats.contention {
            self.profiled_runs += 1;
            self.lock_wait_seconds_total += c.lock_wait_seconds();
            self.barrier_spin_seconds_total += c.barrier_spin_seconds();
            self.wall_events_dropped += c.events_dropped;
        }
    }
}

/// The per-PE remote-adjacency caches plus the guards making them safe
/// under concurrent serving: `version` bumps whenever the contents are
/// replaced (an update installing its write-session results, a seal
/// flushing stale generations, a watchdog cold-restart) so in-flight read
/// logs captured against older contents are dropped instead of committed;
/// `epoch` names the graph state the contents are coherent with, so only
/// queries pinned to exactly that epoch open read sessions.
struct AdjState {
    caches: Arc<Vec<RankCache>>,
    version: u64,
    epoch: u64,
}

/// The shared state behind an [`Engine`] handle.
struct EngineInner {
    cfg: EngineConfig,
    num_vertices: u64,
    /// The MVCC epoch table: current snapshot, pinned history, retire
    /// accounting.
    epochs: EpochTable,
    pending: Mutex<VecDeque<Ticket>>,
    /// Result cache keyed by `(epoch, key)`; entries of an epoch are
    /// pruned when it retires.
    results: Mutex<BTreeMap<(u64, QueryKey), CachedValue>>,
    adj: Mutex<AdjState>,
    pool: Arc<Pool>,
    next_ticket: AtomicU64,
    metrics: Mutex<Metrics>,
    /// Serializes graph mutations (updates, epoch advances) against each
    /// other — never against reads.
    writer: Mutex<()>,
    setup_stats: RunStats,
    /// Statistics of the one-time baseline count establishing
    /// `resident_triangles`.
    baseline_stats: RunStats,
    /// Wall-clock origin: lifecycle span stamps count from here.
    born: Instant,
}

/// A long-lived engine serving queries against a graph loaded once.
///
/// `Engine` is a cheap cloneable handle over shared state: clones may be
/// moved to other threads, and every method takes `&self` — reads
/// ([`submit`](Engine::submit)/[`tick`](Engine::tick)) proceed while
/// another thread runs [`apply_updates`](Engine::apply_updates).
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Loads `g` into the engine: partitions it over `cfg.num_ranks` PEs
    /// (vertex balanced) and performs the whole distributed setup exactly
    /// once. Everything queries need afterwards is resident.
    pub fn build(g: &Csr, cfg: EngineConfig) -> Engine {
        let pool = Arc::new(Pool::new(cfg.workers.max(1)));
        Self::build_with_pool(g, cfg, pool)
    }

    /// Like [`build`](Engine::build), but executing on a caller-provided
    /// pool — the multi-tenant [`EngineHost`] shares one pool across every
    /// tenant engine.
    pub fn build_with_pool(g: &Csr, cfg: EngineConfig, pool: Arc<Pool>) -> Engine {
        assert!(cfg.num_ranks >= 1, "need at least one PE");
        assert!(cfg.queue_capacity >= 1, "queue capacity must be positive");
        assert!(cfg.batch_max >= 1, "batch size must be positive");
        let degrees = g.degrees();
        let dg = DistGraph::new_balanced_vertices(g, cfg.num_ranks);
        let opts = SimOptions {
            transport: cfg.dist.transport,
            timing: cfg.timing,
            record_trace: false,
            perturb_seed: None,
            wall_profile: cfg.wall_profile,
            ..SimOptions::default()
        };
        let (ranks, setup_stats) = build_residency(dg, &cfg.dist, &opts);
        let ranks = Arc::new(ranks);
        // Establish the resident triangle count once; apply_updates
        // maintains it incrementally from here on. Metered separately from
        // the setup so residency invariants (setup comm never repeats)
        // stay checkable.
        let baseline_ranks = ranks.clone();
        let dist = cfg.dist;
        let baseline = run_sim(cfg.num_ranks, &opts, move |ctx: &mut Ctx| {
            cetric::count_prepared(ctx, &baseline_ranks[ctx.rank()], &dist)
        });
        let resident_triangles = baseline.output.results[0];
        let overlay: Vec<Overlay> = ranks.iter().map(|r| Overlay::for_local(&r.local)).collect();
        let first = EpochSnapshot::new(
            0,
            ranks,
            Arc::new(overlay),
            Arc::new(degrees),
            resident_triangles,
        );
        let adj = AdjState {
            caches: Arc::new(EngineInner::fresh_caches(&cfg)),
            version: 0,
            epoch: 0,
        };
        Engine {
            inner: Arc::new(EngineInner {
                num_vertices: g.num_vertices(),
                epochs: EpochTable::new(first),
                pending: Mutex::new(VecDeque::new()),
                results: Mutex::new(BTreeMap::new()),
                adj: Mutex::new(adj),
                pool,
                next_ticket: AtomicU64::new(0),
                metrics: Mutex::new(Metrics::default()),
                writer: Mutex::new(()),
                setup_stats,
                baseline_stats: baseline.output.stats,
                born: Instant::now(),
                cfg,
            }),
        }
    }

    /// Number of vertices in the resident graph.
    pub fn num_vertices(&self) -> u64 {
        self.inner.num_vertices
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epochs.current_epoch()
    }

    /// Queries currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.pending.lock().expect("pending lock").len()
    }

    /// Statistics of the one-time setup run.
    pub fn setup_stats(&self) -> &RunStats {
        &self.inner.setup_stats
    }

    /// Statistics of the one-time baseline count that seeded
    /// [`resident_triangles`](Engine::resident_triangles).
    pub fn baseline_stats(&self) -> &RunStats {
        &self.inner.baseline_stats
    }

    /// The incrementally maintained global triangle count of the resident
    /// graph — exact at every epoch (bit-equal to a from-scratch recount).
    pub fn resident_triangles(&self) -> u64 {
        self.inner.epochs.current().triangles
    }

    /// Whether the current epoch's overlay holds deltas not yet folded
    /// into prepared serving state. Queries seal the snapshot they pin
    /// (folding once, memoized), so this being `true` never makes an
    /// answer stale.
    pub fn is_dirty(&self) -> bool {
        let tip = self.inner.epochs.current();
        !tip.is_clean() && tip.sealed_peek().is_none()
    }

    /// Summed overlay entries across ranks awaiting a fold (0 when clean
    /// or already sealed into serving state).
    pub fn overlay_entries(&self) -> u64 {
        let tip = self.inner.epochs.current();
        if tip.is_clean() || tip.sealed_peek().is_some() {
            0
        } else {
            tip.overlay_entries
        }
    }

    /// Enqueues a query, pinning the **current** epoch snapshot: the
    /// answer will reflect exactly the graph state at admission, no matter
    /// how many updates commit before the draining tick. Rejects with
    /// [`EngineError::Overloaded`] when the queue is at `queue_capacity` —
    /// admission control, so a burst beyond the configured depth degrades
    /// into explicit backpressure instead of unbounded memory growth.
    pub fn submit(&self, query: Query) -> Result<TicketId, EngineError> {
        let inner = &self.inner;
        let mut pending = inner.pending.lock().expect("pending lock");
        if pending.len() >= inner.cfg.queue_capacity {
            let depth = pending.len();
            drop(pending);
            inner.metrics.lock().expect("metrics lock").rejected += 1;
            return Err(EngineError::Overloaded {
                depth,
                capacity: inner.cfg.queue_capacity,
            });
        }
        let id = TicketId(inner.next_ticket.fetch_add(1, Ordering::Relaxed));
        let snapshot = inner.epochs.pin();
        {
            let mut m = inner.metrics.lock().expect("metrics lock");
            m.queue_depth_at_submit.record(pending.len() as u64);
            m.submitted += 1;
        }
        pending.push_back(Ticket {
            id,
            query,
            submitted: Instant::now(),
            snapshot,
        });
        Ok(id)
    }

    /// Drains up to `batch_max` queued queries, executes the batch, and
    /// returns `(ticket, answer)` pairs in submission order. See
    /// [`tick_pinned`](Engine::tick_pinned) for the variant reporting the
    /// epoch each answer was computed at.
    pub fn tick(&self) -> Vec<(TicketId, Result<QueryAnswer, EngineError>)> {
        self.tick_pinned()
            .into_iter()
            .map(|(id, _epoch, a)| (id, a))
            .collect()
    }

    /// Drains up to `batch_max` queued queries, executes the batch, and
    /// returns `(ticket, pinned epoch, answer)` triples in submission
    /// order.
    ///
    /// Within a batch, queries normalising to the same cache key **at the
    /// same pinned epoch** share one distributed run; distinct
    /// (epoch, key) jobs execute concurrently on the engine's
    /// work-stealing pool. Freshly computed values enter the epoch-keyed
    /// cache, so an identical later query at the same epoch is a cache
    /// hit. A dirty pinned snapshot is sealed first (its frozen overlay
    /// folded into serving state, once, memoized in the snapshot).
    pub fn tick_pinned(&self) -> Vec<(TicketId, u64, Result<QueryAnswer, EngineError>)> {
        let inner = &self.inner;
        let batch: Vec<Ticket> = {
            let mut pending = inner.pending.lock().expect("pending lock");
            let n = pending.len().min(inner.cfg.batch_max);
            if n == 0 {
                return Vec::new();
            }
            pending.drain(..n).collect()
        };
        let n = batch.len();
        let tick_begin = inner.now_nanos();
        let batch_index = {
            let mut m = inner.metrics.lock().expect("metrics lock");
            let b = m.batches;
            m.batches += 1;
            m.batch_sizes.record(n as u64);
            b
        };
        let drained_at = Instant::now();

        // Normalise to cache keys; invalid queries fail without executing.
        let keyed: Vec<(Ticket, Result<QueryKey, EngineError>)> = batch
            .into_iter()
            .map(|t| {
                let key = inner.key_of(&t.query);
                (t, key)
            })
            .collect();

        // Seal every distinct pinned snapshot up front, so all jobs of
        // this tick run against folded serving state and one coherent
        // adjacency-cache snapshot. A failed seal (watchdog-killed fold)
        // fails only the tickets pinned to that epoch — tickets on other
        // epochs, sealed or already clean, still get answers.
        let mut serving: BTreeMap<u64, Arc<Vec<PreparedRank>>> = BTreeMap::new();
        let mut seal_failures: BTreeMap<u64, EngineError> = BTreeMap::new();
        for (t, key) in &keyed {
            let e = t.snapshot.epoch;
            if key.is_ok() && !serving.contains_key(&e) && !seal_failures.contains_key(&e) {
                match inner.serving_ranks(&t.snapshot, batch_index) {
                    Ok(r) => {
                        serving.insert(e, r);
                    }
                    Err(err) => {
                        seal_failures.insert(e, err);
                    }
                }
            }
        }

        // One adjacency snapshot per tick: contents, the version guarding
        // commits, and the epoch the contents are coherent with.
        let (caches, cache_version, cache_epoch) = {
            let a = inner.adj.lock().expect("adjacency lock");
            (a.caches.clone(), a.version, a.epoch)
        };
        let cache_on = inner.cfg.dist.cache.enabled;

        // The batch's distinct, uncached (epoch, key) jobs — each computed
        // exactly once.
        let mut jobs: Vec<(Arc<EpochSnapshot>, Arc<Vec<PreparedRank>>, QueryKey)> = Vec::new();
        {
            let results = inner.results.lock().expect("results lock");
            for (t, key) in &keyed {
                if let Ok(k) = key {
                    let e = t.snapshot.epoch;
                    let Some(ranks) = serving.get(&e) else {
                        continue; // this epoch's seal failed
                    };
                    if !results.contains_key(&(e, k.clone()))
                        && !jobs.iter().any(|(s, _, jk)| s.epoch == e && jk == k)
                    {
                        jobs.push((t.snapshot.clone(), ranks.clone(), k.clone()));
                    }
                }
            }
        }
        let admit_end = inner.now_nanos();

        // Concurrent execution of distinct jobs (scoped threads; the
        // closure only borrows the resident state).
        let (task_results, pool_stats) =
            inner
                .pool
                .run_tasks_stats(jobs.clone(), |_, (snap, ranks, key)| {
                    // Read sessions only against contents coherent with
                    // the job's pinned epoch; older epochs run metered.
                    let enabled = cache_on && snap.epoch == cache_epoch;
                    inner.compute(&snap, &ranks, &key, &caches, enabled)
                });
        #[allow(clippy::type_complexity)]
        let computed: Vec<
            Result<
                (
                    CachedValue,
                    RunStats,
                    f64,
                    DispatchReport,
                    Vec<CacheRunOutcome>,
                ),
                EngineError,
            >,
        > = task_results.into_iter().map(|tr| tr.result).collect();
        let run_end = inner.now_nanos();

        // Fold results into cache and metrics.
        let cost = inner.cfg.timing.unwrap_or_default();
        let mut failures: BTreeMap<(u64, QueryKey), EngineError> = BTreeMap::new();
        let mut run_costs: BTreeMap<(u64, QueryKey), (f64, f64)> = BTreeMap::new();
        let mut committed_logs = false;
        {
            let mut m = inner.metrics.lock().expect("metrics lock");
            if m.pool_workers.len() < pool_stats.workers.len() {
                m.pool_workers
                    .resize(pool_stats.workers.len(), WorkerStats::default());
            }
            for (acc, w) in m.pool_workers.iter_mut().zip(&pool_stats.workers) {
                acc.absorb(w);
            }
            for ((snap, _ranks, key), outcome) in jobs.into_iter().zip(computed) {
                match outcome {
                    Ok((value, stats, wall, dispatch, cache_outcomes)) => {
                        let modeled = stats.modeled_time(&cost);
                        m.kernel_dispatch.absorb(&dispatch);
                        m.absorb_contention(&stats);
                        m.query_comm.absorb(&stats.totals());
                        m.query_preprocessing_comm
                            .absorb(&stats.phase_totals("preprocessing"));
                        m.modeled_seconds_total += modeled;
                        m.wall_seconds_total += wall;
                        m.run_wall.record_seconds(wall);
                        m.run_modeled.record_seconds(modeled);
                        run_costs.insert((snap.epoch, key.clone()), (modeled, wall));
                        inner
                            .results
                            .lock()
                            .expect("results lock")
                            .insert((snap.epoch, key), value);
                        // Admissions observed by this run become visible
                        // to later ticks (never to concurrent jobs of this
                        // one) — job order makes the state
                        // schedule-independent. The version guard drops
                        // logs raced by an update or seal.
                        let want = cache_on && snap.epoch == cache_epoch;
                        committed_logs |= inner.commit_query_outcomes(
                            &mut m,
                            cache_outcomes,
                            want,
                            cache_version,
                        );
                    }
                    Err(e) => {
                        failures.insert((snap.epoch, key), e);
                    }
                }
            }
        }
        if committed_logs {
            let mut m = inner.metrics.lock().expect("metrics lock");
            let end = inner.now_nanos();
            m.spans.push(EngineSpan {
                label: "cache_commit",
                batch: batch_index,
                begin_nanos: run_end,
                end_nanos: end,
            });
        }

        // Answer every ticket from the (now warm) cache. The first ticket
        // that triggered a job carries its cost and counts as the miss;
        // everything else in the batch shared the work (or the cache) and
        // counts as a hit. Each answered ticket drops its epoch pin —
        // retiring drained epochs and pruning their cached results.
        let mut out = Vec::with_capacity(keyed.len());
        {
            let mut m = inner.metrics.lock().expect("metrics lock");
            for (ticket, key) in keyed {
                let id = ticket.id;
                let kind = ticket.query.kind();
                let epoch = ticket.snapshot.epoch;
                let queue_seconds = drained_at
                    .saturating_duration_since(ticket.submitted)
                    .as_secs_f64();
                m.queue_wait.record_seconds(queue_seconds);
                let mut hit = false;
                let mut modeled = 0.0;
                let mut wall = 0.0;
                let answer = match key {
                    Err(e) => Err(e),
                    Ok(k) => {
                        if let Some(e) = seal_failures.get(&epoch) {
                            Err(e.clone())
                        } else if let Some(e) = failures.get(&(epoch, k.clone())) {
                            Err(e.clone())
                        } else {
                            match run_costs.remove(&(epoch, k.clone())) {
                                Some((mo, w)) => {
                                    modeled = mo;
                                    wall = w;
                                }
                                None => hit = true,
                            }
                            let results = inner.results.lock().expect("results lock");
                            let value = results.get(&(epoch, k)).expect("computed or cached above");
                            Ok(project(&ticket.query, value))
                        }
                    }
                };
                m.answered += 1;
                if answer.is_ok() {
                    if hit {
                        m.cache_hits += 1;
                    } else {
                        m.cache_misses += 1;
                    }
                }
                m.per_query.push(QueryRecord {
                    kind,
                    cache_hit: hit,
                    queue_seconds,
                    modeled_seconds: modeled,
                    wall_seconds: wall,
                    failed: answer.is_err(),
                });
                drop(ticket);
                inner.release_pin(epoch);
                out.push((id, epoch, answer));
            }
        }
        let answer_end = inner.now_nanos();
        {
            let mut m = inner.metrics.lock().expect("metrics lock");
            for (label, begin_nanos, end_nanos) in [
                ("batch", tick_begin, answer_end),
                ("admit", tick_begin, admit_end),
                ("run", admit_end, run_end),
                ("answer", run_end, answer_end),
            ] {
                m.spans.push(EngineSpan {
                    label,
                    batch: batch_index,
                    begin_nanos,
                    end_nanos,
                });
            }
        }
        out
    }

    /// Submits a single query and ticks until it is answered — the
    /// synchronous convenience path. Queued queries ahead of it are
    /// answered along the way (their results are dropped here; use
    /// [`submit`](Engine::submit)/[`tick`](Engine::tick) to collect them).
    pub fn query(&self, query: Query) -> Result<QueryAnswer, EngineError> {
        let id = self.submit(query)?;
        loop {
            let answers = self.tick();
            if let Some((_, a)) = answers.into_iter().find(|(tid, _)| *tid == id) {
                return a;
            }
        }
    }

    /// Declares the resident graph stale: publishes the same graph state
    /// as a new epoch, which atomically invalidates every cached result —
    /// entries are keyed by epoch, and the superseded epoch retires (its
    /// entries pruned) as soon as its last pinned reader drains
    /// (immediately, when nothing pins it).
    /// [`apply_updates`](Engine::apply_updates) publishes a new epoch
    /// whenever a batch changes the graph; calling this directly models
    /// upstream recomputation triggers on an unchanged topology.
    pub fn advance_epoch(&self) {
        let inner = &self.inner;
        let _w = inner.writer.lock().expect("writer lock");
        let tip = inner.epochs.current();
        // Promote a memoized seal: the new epoch starts from the folded
        // state with a clean overlay, so the fold is never repeated.
        let (ranks, overlay) = match tip.sealed_peek() {
            Some(sealed) if !tip.is_clean() => {
                let fresh: Vec<Overlay> = sealed
                    .iter()
                    .map(|r| Overlay::for_local(&r.local))
                    .collect();
                (sealed, Arc::new(fresh))
            }
            _ => (tip.ranks.clone(), tip.overlay.clone()),
        };
        let next_epoch = tip.epoch + 1;
        let next = EpochSnapshot::new(
            next_epoch,
            ranks,
            overlay,
            tip.degrees.clone(),
            tip.triangles,
        );
        let retired = inner.epochs.publish(next);
        inner.prune_results(&retired);
        // Same graph, new epoch: the adjacency contents stay coherent.
        inner.adj.lock().expect("adjacency lock").epoch = next_epoch;
    }

    /// Applies a batch of edge insertions/deletions to the resident graph
    /// through the distributed delta protocol, maintaining
    /// [`resident_triangles`](Engine::resident_triangles) incrementally:
    /// the batch is canonicalised, routed to the owning ranks, filtered
    /// for no-ops, and the exact triangle delta is counted as distributed
    /// intersections with same-batch corrections — no recount. The result
    /// is **published as a new epoch** iff the graph changed: queries
    /// admitted earlier keep their pinned snapshot and never observe the
    /// mid-batch state, queries admitted later see the update. Overlays
    /// exceeding [`EngineConfig::compaction_fraction`] of the base are
    /// folded into the new epoch's prepared state before publication
    /// (never into a published snapshot).
    ///
    /// Vertex ids must be in range ([`EngineError::UnknownVertex`]
    /// otherwise — the vertex set is fixed at build). An empty or fully
    /// cancelling batch returns a zero receipt without advancing the
    /// epoch. Concurrent writers serialize on an internal lock; readers
    /// are never blocked.
    pub fn apply_updates(&self, batch: &UpdateBatch) -> Result<UpdateReceipt, EngineError> {
        let inner = &self.inner;
        if let Some(mx) = batch.max_vertex() {
            inner.check_vertex(mx)?;
        }
        let canonical = batch.canonicalize();
        let _w = inner.writer.lock().expect("writer lock");
        let tip = inner.epochs.current();
        let triangles_before = tip.triangles;
        if canonical.is_empty() {
            return Ok(UpdateReceipt {
                epoch: tip.epoch,
                inserted: 0,
                deleted: 0,
                noops: 0,
                triangles_before,
                triangles_after: triangles_before,
                overlay_fraction: 0.0,
                compacted: false,
                comm: Counters::default(),
                modeled_seconds: 0.0,
                wall_seconds: 0.0,
            });
        }
        let p = inner.cfg.num_ranks;
        let opts = inner.run_opts();
        let update_begin = inner.now_nanos();
        let started = Instant::now();
        // Base state of the next epoch: the tip's memoized seal when a
        // query already folded its overlay (the fold is never repeated —
        // tip-seal promotion), otherwise the tip's bases plus a thawed
        // copy of its frozen overlay. The tip snapshot itself is never
        // touched: pinned readers keep serving from it.
        let (base_ranks, thawed): (Arc<Vec<PreparedRank>>, Vec<Overlay>) = match tip.sealed_peek() {
            Some(sealed) if !tip.is_clean() => {
                let fresh = sealed
                    .iter()
                    .map(|r| Overlay::for_local(&r.local))
                    .collect();
                (sealed, fresh)
            }
            _ => (tip.ranks.clone(), (*tip.overlay).clone()),
        };
        let overlays: Arc<Vec<Mutex<Overlay>>> =
            Arc::new(thawed.into_iter().map(Mutex::new).collect());
        let dist = inner.cfg.dist;
        let shared_batch = Arc::new(canonical);
        let batch_ref = shared_batch.clone();
        // The update run is the adjacency cache's single writer — but it
        // writes a *copy*, installed (with a bumped version) only after
        // the new epoch is published. Mid-flight readers keep the old
        // contents; the version guard drops their commit logs. Write
        // sessions emit the coherence records keeping held `Full` entries
        // exact.
        let enabled = inner.cfg.dist.cache.enabled;
        let cache_cells: Arc<Vec<Mutex<RankCache>>> = {
            let a = inner.adj.lock().expect("adjacency lock");
            Arc::new((*a.caches).clone().into_iter().map(Mutex::new).collect())
        };
        let run_cells = cache_cells.clone();
        let run_ranks = base_ranks.clone();
        let run_overlays = overlays.clone();
        let out = run_guarded(p, &opts, inner.cfg.watchdog, move |ctx: &mut Ctx| {
            let mut ov = run_overlays[ctx.rank()].lock().expect("overlay lock");
            let mut cache = run_cells[ctx.rank()].lock().expect("cache cell");
            let mut session = if enabled {
                CacheSession::write(&mut cache, run_ranks[ctx.rank()].generation)
            } else {
                CacheSession::metered()
            };
            let outcome = delta_dist::apply_batch_rank_cached(
                ctx,
                &run_ranks[ctx.rank()].local,
                &mut ov,
                &batch_ref,
                &dist,
                &mut session,
            );
            let report = if enabled {
                ctx.with_span("cache_commit", |_| session.finish().report)
            } else {
                session.finish().report
            };
            (outcome, report)
        });
        let out = match out {
            Ok(out) => out,
            Err(e) => {
                // A watchdog-killed run may have leaked rank threads still
                // holding cache cells mid-session; restart the shared
                // caches cold (readers racing the failure drop their logs
                // on the version bump).
                let mut a = inner.adj.lock().expect("adjacency lock");
                a.caches = Arc::new(EngineInner::fresh_caches(&inner.cfg));
                a.version += 1;
                return Err(DistError::from(e).into());
            }
        };
        let wall = started.elapsed().as_secs_f64();
        let stats = out.output.stats;
        let (outcomes, cache_reports): (Vec<_>, Vec<CacheReport>) =
            out.output.results.into_iter().unzip();

        // Degree maintenance: each effective edge appears in exactly one
        // rank's tail list; both endpoint degrees move by one. The next
        // epoch gets its own vector — the tip's stays frozen.
        let mut degrees = (*tip.degrees).clone();
        for o in &outcomes {
            for &(ins, u, v) in &o.tail_effective {
                for x in [u, v] {
                    let d = &mut degrees[x as usize];
                    *d = if ins { *d + 1 } else { *d - 1 };
                }
            }
        }

        let global = &outcomes[0];
        let triangles_after = triangles_before + global.triangles_added - global.triangles_removed;
        let changed = global.inserted + global.deleted > 0;
        let overlay_entries: u64 = outcomes.iter().map(|o| o.overlay_entries).sum();
        let base_entries: u64 = outcomes.iter().map(|o| o.base_entries).sum();
        let overlay_fraction = overlay_entries as f64 / base_entries.max(1) as f64;

        let totals = stats.totals();
        let modeled = stats.modeled_time(&inner.cfg.timing.unwrap_or_default());
        {
            let mut m = inner.metrics.lock().expect("metrics lock");
            m.absorb_contention(&stats);
            for r in &cache_reports {
                m.update_adjacency.absorb(r);
            }
            // Kernel-dispatch tallies of the counting passes, folded per
            // rank in rank order under the update-count phase.
            for o in &outcomes {
                m.kernel_dispatch.add(phases::UPDATE_COUNT, o.kernels);
            }
            m.updates_applied += 1;
            m.edges_inserted += global.inserted;
            m.edges_deleted += global.deleted;
            m.update_noops += global.noops;
            m.update_comm.absorb(&totals);
            m.update_modeled_seconds += modeled;
            m.update_wall_seconds += wall;
            let end = inner.now_nanos();
            let batch_index = m.batches;
            m.spans.push(EngineSpan {
                label: "update",
                batch: batch_index,
                begin_nanos: update_begin,
                end_nanos: end,
            });
        }

        let receipt = |epoch: u64, compacted: bool| UpdateReceipt {
            epoch,
            inserted: global.inserted,
            deleted: global.deleted,
            noops: global.noops,
            triangles_before,
            triangles_after,
            overlay_fraction,
            compacted,
            comm: totals,
            modeled_seconds: modeled,
            wall_seconds: wall,
        };

        if !changed {
            // Every op was a no-op: the graph and overlays are unchanged,
            // so no new epoch. Install the (identical) cache contents
            // back to keep the single-writer discipline simple.
            inner.install_cache_cells(&cache_cells, tip.epoch);
            return Ok(receipt(tip.epoch, false));
        }

        // Take the worked overlays back out of their run cells (rank
        // threads may outlive the run for a few microseconds, so sole
        // ownership cannot be assumed — fall back to clone).
        let worked: Vec<Overlay> = match Arc::try_unwrap(overlays) {
            Ok(cells) => cells
                .into_iter()
                .map(|c| c.into_inner().expect("overlay cell"))
                .collect(),
            Err(shared) => shared
                .iter()
                .map(|c| c.lock().expect("overlay cell").clone())
                .collect(),
        };

        // Fold into the next epoch's bases when over threshold. Published
        // snapshots are never mutated: the fold output only ever becomes
        // the *new* epoch.
        let compacted = overlay_entries > 0 && overlay_fraction > inner.cfg.compaction_fraction;
        let (next_ranks, next_overlay) = if compacted {
            let begin = inner.now_nanos();
            let folded = match inner.fold_overlays(base_ranks.clone(), worked.clone()) {
                Ok(r) => Arc::new(r),
                Err(e) => {
                    // The update itself committed; publish it uncompacted
                    // and surface the fold failure (watchdog kill) as the
                    // call's error, mirroring the pre-MVCC behaviour.
                    inner.publish_update(
                        tip.epoch + 1,
                        base_ranks,
                        worked,
                        &degrees,
                        triangles_after,
                        &cache_cells,
                    );
                    return Err(e);
                }
            };
            if enabled {
                // Re-orientation/re-contraction stales oriented and
                // contracted cache entries wholesale: the bumped
                // generation tag flushes them from the copy about to be
                // installed (merged `Full` lists survive — coherence kept
                // them exact through the updates that forced this fold).
                let generation = folded[0].generation;
                for cell in cache_cells.iter() {
                    cell.lock().expect("cache cell").set_generation(generation);
                }
            }
            let fresh: Vec<Overlay> = folded
                .iter()
                .map(|r| Overlay::for_local(&r.local))
                .collect();
            let mut m = inner.metrics.lock().expect("metrics lock");
            m.compactions += 1;
            let end = inner.now_nanos();
            let batch_index = m.batches;
            m.spans.push(EngineSpan {
                label: "compaction",
                batch: batch_index,
                begin_nanos: begin,
                end_nanos: end,
            });
            (folded, fresh)
        } else {
            (base_ranks, worked)
        };

        inner.publish_update(
            tip.epoch + 1,
            next_ranks,
            next_overlay,
            &degrees,
            triangles_after,
            &cache_cells,
        );
        Ok(receipt(tip.epoch + 1, compacted))
    }

    /// Snapshots aggregate and per-query serving statistics.
    pub fn stats(&self) -> EngineStats {
        let inner = &self.inner;
        let (adj_cache_entries, adj_cache_resident_words) = inner.adj_cache_usage();
        let epochs = inner.epochs.counts();
        let tip = inner.epochs.current();
        let queue_depth = self.queue_depth();
        let cache_entries = inner.results.lock().expect("results lock").len();
        // Read before taking the metrics lock: overlay_entries peeks the
        // tip's sealed mutex, which a lazy seal holds across its fold —
        // and the fold records into metrics (sealed → metrics). Holding
        // metrics while touching sealed would invert that order and
        // deadlock against an in-flight seal.
        let overlay_entries = self.overlay_entries();
        let epoch_lifetime = inner.epochs.lifetime_summary();
        let m = inner.metrics.lock().expect("metrics lock");
        EngineStats {
            num_ranks: inner.cfg.num_ranks,
            transport: inner.cfg.dist.transport.name(),
            epoch: tip.epoch,
            submitted: m.submitted,
            rejected: m.rejected,
            answered: m.answered,
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            batches: m.batches,
            queue_depth,
            cache_entries,
            setup_runs: 1,
            setup_comm: inner.setup_stats.totals(),
            baseline_comm: inner.baseline_stats.totals(),
            resident_triangles: tip.triangles,
            updates_applied: m.updates_applied,
            edges_inserted: m.edges_inserted,
            edges_deleted: m.edges_deleted,
            update_noops: m.update_noops,
            compactions: m.compactions,
            overlay_entries,
            epochs_live: epochs.live,
            epochs_retired: epochs.retired,
            readers_pinned: epochs.readers_pinned,
            epoch_lifetime,
            update_comm: m.update_comm,
            compaction_comm: m.compaction_comm,
            update_modeled_seconds: m.update_modeled_seconds,
            update_wall_seconds: m.update_wall_seconds,
            query_comm: m.query_comm,
            query_preprocessing_comm: m.query_preprocessing_comm,
            modeled_seconds_total: m.modeled_seconds_total,
            wall_seconds_total: m.wall_seconds_total,
            profiled_runs: {
                let boot = [&inner.setup_stats, &inner.baseline_stats]
                    .iter()
                    .filter(|s| s.contention.is_some())
                    .count() as u64;
                m.profiled_runs + boot
            },
            lock_wait_seconds_total: m.lock_wait_seconds_total
                + inner.boot_contention(tricount_comm::ContentionSummary::lock_wait_seconds),
            barrier_spin_seconds_total: m.barrier_spin_seconds_total
                + inner.boot_contention(tricount_comm::ContentionSummary::barrier_spin_seconds),
            wall_events_dropped: m.wall_events_dropped
                + [&inner.setup_stats, &inner.baseline_stats]
                    .iter()
                    .filter_map(|s| s.contention.as_ref())
                    .map(|c| c.events_dropped)
                    .sum::<u64>(),
            queue_wait: m.queue_wait.summary_seconds(),
            run_wall: m.run_wall.summary_seconds(),
            run_modeled: m.run_modeled.summary_seconds(),
            pool: m.pool_workers.clone(),
            spans: m.spans.clone(),
            per_query: m.per_query.clone(),
            kernel_dispatch: m.kernel_dispatch.clone(),
            adj_cache_enabled: inner.cfg.dist.cache.enabled,
            query_adjacency: m.query_adjacency,
            update_adjacency: m.update_adjacency,
            adj_cache_entries,
            adj_cache_resident_words,
        }
    }

    /// Renders the engine's serving metrics in the Prometheus text
    /// exposition format: counters from the snapshot, latency histograms
    /// (with quantile gauges) from the live log-bucketed recorders, and
    /// per-worker pool counters. Suitable for `serve --metrics-out` or a
    /// scrape endpoint.
    pub fn prometheus(&self) -> String {
        let inner = &self.inner;
        let snapshot = self.stats();
        let (queue_wait, run_wall, run_modeled, depth_at_submit, batch_sizes) = {
            let m = inner.metrics.lock().expect("metrics lock");
            (
                m.queue_wait.clone(),
                m.run_wall.clone(),
                m.run_modeled.clone(),
                m.queue_depth_at_submit.clone(),
                m.batch_sizes.clone(),
            )
        };
        let epoch_lifetime = inner.epochs.lifetime_histogram();
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "tricount_engine_submitted_total",
            "Queries accepted by admission control",
            snapshot.submitted,
        );
        reg.counter(
            "tricount_engine_rejected_total",
            "Submissions rejected by admission control",
            snapshot.rejected,
        );
        reg.counter(
            "tricount_engine_answered_total",
            "Queries answered (including failures)",
            snapshot.answered,
        );
        reg.counter(
            "tricount_engine_cache_hits_total",
            "Answers served from the result cache",
            snapshot.cache_hits,
        );
        reg.counter(
            "tricount_engine_cache_misses_total",
            "Answers that required a distributed run",
            snapshot.cache_misses,
        );
        reg.counter(
            "tricount_engine_batches_total",
            "Ticks executed",
            snapshot.batches,
        );
        reg.counter(
            "tricount_engine_updates_applied_total",
            "Edge-update batches applied",
            snapshot.updates_applied,
        );
        reg.counter(
            "tricount_engine_edges_inserted_total",
            "Effective edge insertions applied",
            snapshot.edges_inserted,
        );
        reg.counter(
            "tricount_engine_edges_deleted_total",
            "Effective edge deletions applied",
            snapshot.edges_deleted,
        );
        reg.counter(
            "tricount_engine_update_noops_total",
            "Update operations that were no-ops against the live graph",
            snapshot.update_noops,
        );
        reg.counter(
            "tricount_engine_compactions_total",
            "Overlay folds performed (threshold-triggered or lazy seals)",
            snapshot.compactions,
        );
        reg.gauge(
            "tricount_engine_resident_triangles",
            "Incrementally maintained global triangle count",
            snapshot.resident_triangles as f64,
        );
        reg.gauge(
            "tricount_engine_overlay_entries",
            "Summed per-rank overlay entries awaiting a fold",
            snapshot.overlay_entries as f64,
        );
        reg.gauge(
            "tricount_engine_queue_depth",
            "Queries waiting in the admission queue",
            snapshot.queue_depth as f64,
        );
        reg.gauge(
            "tricount_engine_cache_entries",
            "Live entries in the result cache",
            snapshot.cache_entries as f64,
        );
        reg.gauge(
            "tricount_engine_epoch",
            "Current graph epoch",
            snapshot.epoch as f64,
        );
        reg.gauge(
            "tricount_engine_epochs_live",
            "Epoch snapshots alive (current + reader-pinned history)",
            snapshot.epochs_live as f64,
        );
        reg.counter(
            "tricount_engine_epochs_retired_total",
            "Superseded epochs freed after their last reader drained",
            snapshot.epochs_retired,
        );
        reg.gauge(
            "tricount_engine_readers_pinned",
            "Queries currently pinning an epoch snapshot",
            snapshot.readers_pinned as f64,
        );
        reg.histogram_seconds(
            "tricount_engine_epoch_lifetime_seconds",
            "Lifetime of retired epochs (publish to retire)",
            &epoch_lifetime,
        );
        reg.gauge(
            "tricount_engine_num_ranks",
            "PEs the resident graph is partitioned over",
            snapshot.num_ranks as f64,
        );
        reg.histogram_seconds(
            "tricount_engine_queue_wait_seconds",
            "Queue-wait latency (submit to the tick that drained it)",
            &queue_wait,
        );
        reg.histogram_seconds(
            "tricount_engine_run_wall_seconds",
            "Wall latency of executed distributed runs",
            &run_wall,
        );
        reg.histogram_seconds(
            "tricount_engine_run_modeled_seconds",
            "Modeled latency of executed distributed runs",
            &run_modeled,
        );
        reg.histogram_units(
            "tricount_engine_queue_depth_at_submit",
            "Queue depth observed by each accepted submission",
            &depth_at_submit,
        );
        reg.histogram_units(
            "tricount_engine_batch_size",
            "Tickets drained per tick",
            &batch_sizes,
        );
        if snapshot.profiled_runs > 0 {
            reg.counter(
                "tricount_engine_profiled_runs_total",
                "Runs that carried wall-clock transport contention meters",
                snapshot.profiled_runs,
            );
            reg.gauge(
                "tricount_engine_transport_lock_wait_seconds",
                "Summed transport queue lock-wait seconds over profiled runs",
                snapshot.lock_wait_seconds_total,
            );
            reg.gauge(
                "tricount_engine_transport_barrier_spin_seconds",
                "Summed transport barrier spin seconds over profiled runs",
                snapshot.barrier_spin_seconds_total,
            );
            reg.counter(
                "tricount_engine_wall_events_dropped_total",
                "Wall events lost to probe-ring overflow over profiled runs",
                snapshot.wall_events_dropped,
            );
        }
        for (path, report) in [
            ("query", &snapshot.query_adjacency),
            ("update", &snapshot.update_adjacency),
        ] {
            let path_label = [("path", path.to_string())];
            reg.counter_with(
                "tricount_cache_lookups_total",
                "Remote-adjacency cache lookups (sender-side mirror consultations)",
                &path_label,
                report.lookups,
            );
            reg.counter_with(
                "tricount_cache_hits_total",
                "Adjacency shipments replaced by cache references",
                &path_label,
                report.hits,
            );
            reg.counter_with(
                "tricount_cache_misses_total",
                "Adjacency lookups that shipped the full list",
                &path_label,
                report.misses,
            );
            reg.counter_with(
                "tricount_cache_words_shipped_total",
                "Adjacency list words put on the wire",
                &path_label,
                report.words_shipped,
            );
            reg.counter_with(
                "tricount_cache_words_saved_total",
                "Adjacency list words elided by cache references",
                &path_label,
                report.words_saved,
            );
            reg.counter_with(
                "tricount_cache_invalidations_total",
                "Held entries dropped by update coherence",
                &path_label,
                report.invalidations,
            );
            reg.counter_with(
                "tricount_cache_patches_total",
                "Held entries patched in place by update coherence",
                &path_label,
                report.patches,
            );
            reg.counter_with(
                "tricount_cache_evictions_total",
                "Held entries evicted by the word budget",
                &path_label,
                report.evictions,
            );
        }
        {
            let (entries, words) = inner.adj_cache_usage();
            reg.gauge(
                "tricount_cache_entries",
                "Held remote-adjacency entries resident across PE caches",
                entries as f64,
            );
            reg.gauge(
                "tricount_cache_resident_words",
                "Words held remote-adjacency entries occupy",
                words as f64,
            );
        }
        for (phase, counters) in &snapshot.kernel_dispatch.phases {
            for (kernel, n) in counters.named() {
                reg.counter_with(
                    "tricount_kernel_dispatch_total",
                    "Intersection calls served per kernel and counting phase",
                    &[("phase", phase.to_string()), ("kernel", kernel.to_string())],
                    n,
                );
            }
        }
        for (i, w) in snapshot.pool.iter().enumerate() {
            let worker = [("worker", i.to_string())];
            reg.counter_with(
                "tricount_engine_pool_executed_total",
                "Query tasks executed per pool worker",
                &worker,
                w.executed,
            );
            reg.counter_with(
                "tricount_engine_pool_steals_attempted_total",
                "Steal probes per pool worker",
                &worker,
                w.steals_attempted,
            );
            reg.counter_with(
                "tricount_engine_pool_steals_succeeded_total",
                "Successful steals per pool worker",
                &worker,
                w.steals_succeeded,
            );
        }
        reg.render()
    }
}

impl EngineInner {
    /// Wall nanoseconds since the engine was built.
    #[inline]
    fn now_nanos(&self) -> u64 {
        self.born.elapsed().as_nanos() as u64
    }

    /// The options every serving-path distributed run executes under.
    fn run_opts(&self) -> SimOptions {
        SimOptions {
            transport: self.cfg.dist.transport,
            timing: self.cfg.timing,
            record_trace: false,
            perturb_seed: self.cfg.perturb_seed,
            wall_profile: self.cfg.wall_profile,
            ..SimOptions::default()
        }
    }

    /// Cold per-PE adjacency caches under the configured budget (and the
    /// §IV-A memory bound, when `dist.memory_limit_words` caps it).
    fn fresh_caches(cfg: &EngineConfig) -> Vec<RankCache> {
        (0..cfg.num_ranks)
            .map(|_| RankCache::new(cfg.dist.cache, cfg.num_ranks, cfg.dist.memory_limit_words))
            .collect()
    }

    fn adj_lock(&self) -> MutexGuard<'_, AdjState> {
        self.adj.lock().expect("adjacency lock")
    }

    /// Opens the session a query run uses on rank `rank`: a read session
    /// over the shared snapshot when the cache serves this epoch, a
    /// metering-only session otherwise (so the adjacency/collective comm
    /// split is observable either way).
    fn query_session<'c>(caches: &'c [RankCache], enabled: bool, rank: usize) -> CacheSession<'c> {
        if enabled {
            CacheSession::read(&caches[rank])
        } else {
            CacheSession::metered()
        }
    }

    /// Commits one query run's per-rank session logs into the resident
    /// caches (rank order within the run; runs commit in job order) —
    /// unless `want` is off (metered run, or a job pinned off the cache's
    /// epoch) or the contents moved since the run captured them (the
    /// version guard: committing then would graft pre-update adjacency
    /// onto post-update contents). Session metering is absorbed either
    /// way. Returns whether logs were committed.
    fn commit_query_outcomes(
        &self,
        m: &mut Metrics,
        outcomes: Vec<CacheRunOutcome>,
        want: bool,
        version: u64,
    ) -> bool {
        let mut committed = false;
        if want && !outcomes.is_empty() {
            let mut a = self.adj_lock();
            if a.version == version {
                let caches = Arc::make_mut(&mut a.caches);
                for (rank, o) in outcomes.iter().enumerate() {
                    let evicted = caches[rank].commit(&o.log);
                    m.query_adjacency.evictions += evicted;
                }
                committed = true;
            }
        }
        for o in &outcomes {
            m.query_adjacency.absorb(&o.report);
        }
        committed
    }

    /// Current totals of the per-PE adjacency caches: (held entries,
    /// resident words).
    fn adj_cache_usage(&self) -> (u64, u64) {
        let a = self.adj_lock();
        a.caches.iter().fold((0, 0), |(e, w), c| {
            (e + c.held_entries(), w + c.resident_words())
        })
    }

    /// Installs the update run's cache cells as the shared contents,
    /// bumping the version (dropping racing reader logs) and tagging the
    /// epoch they are coherent with.
    fn install_cache_cells(&self, cells: &Arc<Vec<Mutex<RankCache>>>, epoch: u64) {
        let contents: Vec<RankCache> = cells
            .iter()
            .map(|c| c.lock().expect("cache cell").clone())
            .collect();
        let mut a = self.adj_lock();
        a.caches = Arc::new(contents);
        a.version += 1;
        a.epoch = epoch;
    }

    /// Publishes the update's result as epoch `next_epoch`, prunes
    /// result-cache entries of epochs retired by the publication, and
    /// installs the written adjacency caches tagged to the new epoch.
    fn publish_update(
        &self,
        next_epoch: u64,
        ranks: Arc<Vec<PreparedRank>>,
        overlay: Vec<Overlay>,
        degrees: &[u64],
        triangles: u64,
        cache_cells: &Arc<Vec<Mutex<RankCache>>>,
    ) {
        let snap = EpochSnapshot::new(
            next_epoch,
            ranks,
            Arc::new(overlay),
            Arc::new(degrees.to_vec()),
            triangles,
        );
        let retired = self.epochs.publish(snap);
        self.prune_results(&retired);
        self.install_cache_cells(cache_cells, next_epoch);
    }

    /// Drops result-cache entries keyed by retired epochs.
    fn prune_results(&self, retired: &[u64]) {
        if retired.is_empty() {
            return;
        }
        let mut results = self.results.lock().expect("results lock");
        results.retain(|(e, _), _| !retired.contains(e));
    }

    /// Drops one reader pin and prunes the results of any epoch that
    /// retired with it.
    fn release_pin(&self, epoch: u64) {
        let retired = self.epochs.unpin(epoch);
        self.prune_results(&retired);
    }

    /// Prepared state serving `snap`: the bases when clean, the memoized
    /// seal when present, otherwise folds the frozen overlay now (exactly
    /// once per snapshot — concurrent callers block on the seal lock and
    /// reuse the result). A fresh fold counts as a compaction, records a
    /// "seal" span, and — when it re-prepared the state the adjacency
    /// cache serves — flushes generation-stale cache entries.
    fn serving_ranks(
        &self,
        snap: &Arc<EpochSnapshot>,
        batch_index: u64,
    ) -> Result<Arc<Vec<PreparedRank>>, EngineError> {
        if let Some(ready) = snap.serving_if_ready() {
            return Ok(ready);
        }
        let begin = self.now_nanos();
        let (serving, sealed_now) =
            snap.seal(|ranks, overlays| self.fold_overlays(ranks, overlays))?;
        if sealed_now {
            if self.cfg.dist.cache.enabled {
                let mut a = self.adj_lock();
                if a.epoch == snap.epoch {
                    let generation = serving[0].generation;
                    let caches = Arc::make_mut(&mut a.caches);
                    for c in caches.iter_mut() {
                        c.set_generation(generation);
                    }
                    a.version += 1;
                }
            }
            let mut m = self.metrics.lock().expect("metrics lock");
            m.compactions += 1;
            let end = self.now_nanos();
            m.spans.push(EngineSpan {
                label: "seal",
                batch: batch_index,
                begin_nanos: begin,
                end_nanos: end,
            });
        }
        Ok(serving)
    }

    /// Folds every rank's overlay into fresh prepared state: merge the
    /// delta lists into a new base, re-orient, re-contract. No
    /// communication — the update protocol kept ghost degrees current for
    /// every touched vertex. The inputs are owned/shared copies; no
    /// published state is mutated.
    fn fold_overlays(
        &self,
        ranks: Arc<Vec<PreparedRank>>,
        overlays: Vec<Overlay>,
    ) -> Result<Vec<PreparedRank>, EngineError> {
        let p = self.cfg.num_ranks;
        let opts = self.run_opts();
        let cells: Arc<Vec<Mutex<Overlay>>> =
            Arc::new(overlays.into_iter().map(Mutex::new).collect());
        let dist = self.cfg.dist;
        let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
            let mut ov = cells[ctx.rank()].lock().expect("overlay lock");
            delta_dist::compact_rank(ctx, &ranks[ctx.rank()], &mut ov, &dist)
        })
        .map_err(DistError::from)?;
        let mut m = self.metrics.lock().expect("metrics lock");
        m.absorb_contention(&out.output.stats);
        m.compaction_comm.absorb(&out.output.stats.totals());
        Ok(out.output.results)
    }

    /// Folds a contention accessor over the setup and baseline runs (the
    /// two runs metered before `Metrics` accumulates anything).
    fn boot_contention(&self, f: impl Fn(&tricount_comm::ContentionSummary) -> f64) -> f64 {
        [&self.setup_stats, &self.baseline_stats]
            .iter()
            .filter_map(|s| s.contention.as_ref())
            .map(f)
            .sum()
    }

    /// Normalises a query to its cache key, validating vertex ids.
    fn key_of(&self, query: &Query) -> Result<QueryKey, EngineError> {
        match query {
            Query::GlobalTriangles { algorithm } => {
                Ok(QueryKey::Global(algorithm_index(*algorithm)))
            }
            Query::VertexLcc { vertices } => {
                for &v in vertices {
                    self.check_vertex(v)?;
                }
                Ok(QueryKey::LccFull)
            }
            Query::EdgeSupport { edges } => {
                for &(a, b) in edges {
                    self.check_vertex(a)?;
                    self.check_vertex(b)?;
                }
                Ok(QueryKey::Support(edges.clone()))
            }
            Query::ApproxTriangles { max_rel_error } => {
                Ok(QueryKey::Approx(bits_for_rel_error(*max_rel_error)))
            }
        }
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), EngineError> {
        if v < self.num_vertices {
            Ok(())
        } else {
            Err(EngineError::UnknownVertex {
                vertex: v,
                num_vertices: self.num_vertices,
            })
        }
    }

    /// Executes one (epoch, key) job as a guarded distributed run against
    /// the pinned snapshot's serving state. Returns the value, the run's
    /// statistics, its wall time, the per-rank kernel-dispatch tallies
    /// folded in rank order, and the per-rank adjacency-cache run outcomes
    /// (logs awaiting the post-tick commit, plus metering).
    #[allow(clippy::type_complexity)]
    fn compute(
        &self,
        snap: &EpochSnapshot,
        serving: &Arc<Vec<PreparedRank>>,
        key: &QueryKey,
        caches: &Arc<Vec<RankCache>>,
        enabled: bool,
    ) -> Result<
        (
            CachedValue,
            RunStats,
            f64,
            DispatchReport,
            Vec<CacheRunOutcome>,
        ),
        EngineError,
    > {
        let p = self.cfg.num_ranks;
        let opts = self.run_opts();
        let caches = caches.clone();
        let started = Instant::now();
        match key {
            QueryKey::Global(idx) => {
                let alg = Algorithm::all()[*idx as usize];
                // Global queries run under the variant's own configuration,
                // but the serving-side kernel policy and cache knobs are the
                // engine's.
                let mut cfg = alg.config();
                cfg.kernels = self.cfg.dist.kernels;
                cfg.cache = self.cfg.dist.cache;
                let ranks = serving.clone();
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    let mut session = Self::query_session(&caches, enabled, ctx.rank());
                    let r = exec_global(ctx, &ranks[ctx.rank()], alg, &cfg, &mut session);
                    r.map(|v| (v, session.finish()))
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let mut count = 0u64;
                let mut report = DispatchReport::new();
                let mut outcomes = Vec::with_capacity(p);
                for (i, r) in out.output.results.into_iter().enumerate() {
                    let ((c, d), o) = r.map_err(EngineError::Dist)?;
                    if i == 0 {
                        count = c;
                    }
                    report.absorb(&d);
                    outcomes.push(o);
                }
                Ok((
                    CachedValue::Count(count),
                    out.output.stats,
                    wall,
                    report,
                    outcomes,
                ))
            }
            QueryKey::LccFull => {
                let ranks = serving.clone();
                let cfg = self.cfg.dist;
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    let mut session = Self::query_session(&caches, enabled, ctx.rank());
                    let r = lcc::lcc_prepared_cached(ctx, &ranks[ctx.rank()], &cfg, &mut session);
                    (r, session.finish())
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let mut per_vertex = Vec::with_capacity(snap.degrees.len());
                let mut report = DispatchReport::new();
                let mut outcomes = Vec::with_capacity(p);
                for ((owned, d), o) in out.output.results {
                    per_vertex.extend(owned);
                    report.absorb(&d);
                    outcomes.push(o);
                }
                let full = lcc::normalize_lcc(&per_vertex, &snap.degrees);
                Ok((
                    CachedValue::LccFull(full),
                    out.output.stats,
                    wall,
                    report,
                    outcomes,
                ))
            }
            QueryKey::Support(edges) => {
                let ranks = serving.clone();
                let cfg = self.cfg.dist;
                let edges = Arc::new(edges.clone());
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    let mut session = Self::query_session(&caches, enabled, ctx.rank());
                    let r = edge_support_rank_cached(
                        ctx,
                        &ranks[ctx.rank()].local,
                        &edges,
                        &cfg,
                        &mut session,
                    );
                    (r, session.finish())
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let mut support = Vec::new();
                let mut report = DispatchReport::new();
                let mut outcomes = Vec::with_capacity(p);
                for (i, ((s, d), o)) in out.output.results.into_iter().enumerate() {
                    if i == 0 {
                        support = s;
                    }
                    report.absorb(&d);
                    outcomes.push(o);
                }
                Ok((
                    CachedValue::Support(support),
                    out.output.stats,
                    wall,
                    report,
                    outcomes,
                ))
            }
            QueryKey::Approx(bits) => {
                let ranks = serving.clone();
                let cfg = self.cfg.dist;
                let acfg = ApproxConfig {
                    bits_per_key: *bits as f64,
                    filter: FilterKind::Bloom,
                };
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    approx_prepared(ctx, &ranks[ctx.rank()], &cfg, &acfg)
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let exact: u64 = out.output.results.iter().map(|r| r.exact_local).sum();
                let corrected: f64 = out
                    .output
                    .results
                    .iter()
                    .map(|r| r.type3_corrected)
                    .sum::<f64>()
                    .max(0.0);
                Ok((
                    CachedValue::Approx(exact as f64 + corrected, *bits as f64),
                    out.output.stats,
                    wall,
                    report_empty(),
                    // The sketch exchange ships filters, not adjacency
                    // lists — nothing for the cache.
                    Vec::new(),
                ))
            }
        }
    }
}

fn report_empty() -> DispatchReport {
    DispatchReport::new()
}

/// One rank's program for a global-count query: the contraction variants
/// run directly on the resident prepared state; the others run their full
/// rank program on a clone of the resident local graph, whose ghost degrees
/// are already known — so their preprocessing phase does no communication.
/// Returns the count plus this rank's kernel-dispatch tallies (empty for
/// the baselines, which intersect without the dispatcher).
fn exec_global(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    alg: Algorithm,
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> Result<(u64, DispatchReport), DistError> {
    match alg {
        Algorithm::Cetric | Algorithm::Cetric2 => {
            Ok(cetric::count_prepared_cached(ctx, prep, cfg, session))
        }
        Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => Ok(
            ditric::run_rank_cached(ctx, prep.local.clone(), cfg, session),
        ),
        Algorithm::TricLike => baselines::tric_like_rank(ctx, prep.local.clone(), cfg)
            .map(|c| (c, DispatchReport::new())),
        Algorithm::HavoqgtLike => Ok((
            baselines::havoqgt_like_rank(ctx, prep.local.clone(), cfg),
            DispatchReport::new(),
        )),
    }
}

/// Projects a cached full value onto the specific query's answer shape.
fn project(query: &Query, value: &CachedValue) -> QueryAnswer {
    match (query, value) {
        (Query::GlobalTriangles { .. }, CachedValue::Count(c)) => QueryAnswer::Count(*c),
        (Query::VertexLcc { vertices }, CachedValue::LccFull(full)) => {
            QueryAnswer::Lcc(vertices.iter().map(|&v| (v, full[v as usize])).collect())
        }
        (Query::EdgeSupport { edges }, CachedValue::Support(s)) => {
            QueryAnswer::Support(edges.iter().copied().zip(s.iter().copied()).collect())
        }
        (Query::ApproxTriangles { .. }, CachedValue::Approx(est, bits)) => QueryAnswer::Approx {
            estimate: *est,
            bits_per_key: *bits,
        },
        _ => unreachable!("query/key/value shapes are constructed in lockstep"),
    }
}

//! A resident query engine over a partitioned graph.
//!
//! The one-shot drivers in `tricount-core` pay the full CETRIC setup —
//! partitioning, ghost degree exchange, degree orientation with ghost
//! expansion, cut-graph contraction — on every call and throw it away. An
//! [`Engine`] performs that setup **exactly once** at [`Engine::build`] and
//! keeps the per-rank state ([`PreparedRank`]) alive, serving a typed query
//! API against it:
//!
//! * [`Query::GlobalTriangles`] — exact count under any algorithm variant,
//! * [`Query::VertexLcc`] — local clustering coefficients of chosen vertices,
//! * [`Query::EdgeSupport`] — per-edge triangle counts,
//! * [`Query::ApproxTriangles`] — AMQ-sketched count for a target error.
//!
//! Requests pass a bounded admission queue ([`Engine::submit`] rejects with
//! [`EngineError::Overloaded`] beyond the configured depth) and execute in
//! batches per [`Engine::tick`]: queries normalising to the same
//! [`QueryKey`](crate::query) share one distributed run (every `VertexLcc`
//! query rides the same full-vector computation), distinct keys run
//! concurrently on a `tricount-par` work-stealing pool, and results land in
//! an **epoch-keyed cache** — [`Engine::advance_epoch`] invalidates
//! everything at once when the graph is declared stale. Each distributed
//! run executes under the deadlock watchdog (`tricount_comm::run_guarded`),
//! so a wedged query surfaces as [`EngineError::Dist`] carrying the
//! wait-for-graph report instead of taking the server down.
//!
//! The graph itself is **dynamic**: [`Engine::apply_updates`] applies a
//! batched set of edge insertions/deletions through the distributed delta
//! protocol (`tricount_core::dist::delta`), maintaining the resident
//! triangle count ([`Engine::resident_triangles`]) incrementally instead
//! of recounting, advancing the epoch, and compacting the per-rank
//! adjacency overlays back into fresh prepared state once they exceed
//! [`EngineConfig::compaction_fraction`] of the base size. Queries always
//! see the updated graph: a tick compacts pending overlays first
//! (read-your-writes).

#![warn(missing_docs)]

pub mod check;
mod query;
mod stats;
pub mod workload;

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tricount_cache::{CacheReport, CacheRunOutcome, CacheSession, RankCache};
use tricount_comm::{run_guarded, run_sim, CostModel, Counters, Ctx, RunStats, SimOptions};
use tricount_core::config::{Algorithm, DistConfig};
use tricount_core::dist::approx::{approx_prepared, ApproxConfig, FilterKind};
use tricount_core::dist::delta as delta_dist;
use tricount_core::dist::dispatch::DispatchReport;
use tricount_core::dist::residency::{build_residency, PreparedRank};
use tricount_core::dist::support::edge_support_rank_cached;
use tricount_core::dist::{baselines, cetric, ditric, lcc, phases};
use tricount_core::result::DistError;
use tricount_delta::{Overlay, UpdateBatch};
use tricount_graph::dist::DistGraph;
use tricount_graph::{Csr, VertexId};
use tricount_obs::{LogHistogram, MetricsRegistry};
use tricount_par::{Pool, WorkerStats};

pub use check::{check_concurrency, CheckOptions, CheckReport};
pub use query::{EngineError, Query, QueryAnswer, TicketId};
pub use stats::{EngineSpan, EngineStats, QueryRecord};
pub use workload::scripted_workload;

use query::{algorithm_index, bits_for_rel_error, CachedValue, QueryKey};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of PEs to partition the graph over.
    pub num_ranks: usize,
    /// Distributed configuration used for the resident setup and for LCC /
    /// approximate runs (global-count queries use their own variant's
    /// configuration).
    pub dist: DistConfig,
    /// Admission bound: [`Engine::submit`] rejects once this many queries
    /// wait in the queue.
    pub queue_capacity: usize,
    /// Maximum queries drained per [`Engine::tick`].
    pub batch_max: usize,
    /// Workers of the intra-engine pool executing distinct cache keys
    /// concurrently.
    pub workers: usize,
    /// Deadlock-watchdog timeout for every distributed query run.
    pub watchdog: Duration,
    /// Cost model for the modeled-latency metrics (also enables the
    /// overlap-aware simulated clock in the runs).
    pub timing: Option<CostModel>,
    /// Perturb message delivery / thread interleaving of query runs under
    /// this seed (`None` = natural schedule). Answers are schedule
    /// independent; the determinism tests exercise exactly this knob.
    pub perturb_seed: Option<u64>,
    /// Compaction trigger: once the summed per-rank overlay entries exceed
    /// this fraction of the base adjacency entries,
    /// [`Engine::apply_updates`] folds the overlays into fresh prepared
    /// state (a communication-free re-orient + re-contract).
    pub compaction_fraction: f64,
    /// Record wall-clock transport events and contention meters on every
    /// run (threads transport only; a no-op on the simulator). Strictly
    /// additive: the modeled counters are bit-identical either way.
    pub wall_profile: bool,
}

impl EngineConfig {
    /// A sensible default configuration over `num_ranks` PEs.
    pub fn new(num_ranks: usize) -> Self {
        EngineConfig {
            num_ranks,
            dist: Algorithm::Cetric.config(),
            queue_capacity: 256,
            batch_max: 32,
            workers: 4,
            watchdog: Duration::from_secs(30),
            timing: Some(CostModel::supermuc()),
            perturb_seed: None,
            compaction_fraction: 0.25,
            wall_profile: false,
        }
    }

    /// Enables the per-PE remote-adjacency cache with the given total word
    /// budget (split evenly across held partitions, capped by
    /// `dist.memory_limit_words` when set).
    pub fn with_cache_budget(mut self, budget_words: u64) -> Self {
        self.dist.cache = tricount_cache::CacheConfig::with_budget(budget_words);
        self
    }
}

/// The outcome of one [`Engine::apply_updates`] call.
#[derive(Debug, Clone)]
pub struct UpdateReceipt {
    /// Epoch after the update (bumped iff the graph changed).
    pub epoch: u64,
    /// Effective edge insertions applied.
    pub inserted: u64,
    /// Effective edge deletions applied.
    pub deleted: u64,
    /// Canonical operations that were no-ops against the live graph
    /// (insert of a present edge, delete of an absent one).
    pub noops: u64,
    /// Resident triangle count before the batch.
    pub triangles_before: u64,
    /// Resident triangle count after the batch.
    pub triangles_after: u64,
    /// Overlay size as a fraction of the base after the batch (before any
    /// triggered compaction).
    pub overlay_fraction: f64,
    /// Whether this batch triggered a compaction.
    pub compacted: bool,
    /// Communication totals of the update run (route + count + refresh;
    /// excludes any compaction).
    pub comm: Counters,
    /// Modeled α+β+t_op time of the update run.
    pub modeled_seconds: f64,
    /// Wall time of the update run on the host.
    pub wall_seconds: f64,
}

impl UpdateReceipt {
    /// The signed triangle delta of the batch.
    pub fn delta(&self) -> i64 {
        self.triangles_after as i64 - self.triangles_before as i64
    }
}

/// A query waiting in the admission queue.
#[derive(Debug, Clone)]
struct Ticket {
    id: TicketId,
    query: Query,
    /// When the query was admitted (queue-wait latency starts here).
    submitted: Instant,
}

/// Mutable serving counters (the raw material of [`EngineStats`]).
#[derive(Debug, Default)]
struct Metrics {
    submitted: u64,
    rejected: u64,
    answered: u64,
    cache_hits: u64,
    cache_misses: u64,
    batches: u64,
    query_comm: Counters,
    query_preprocessing_comm: Counters,
    modeled_seconds_total: f64,
    wall_seconds_total: f64,
    updates_applied: u64,
    edges_inserted: u64,
    edges_deleted: u64,
    update_noops: u64,
    compactions: u64,
    update_comm: Counters,
    compaction_comm: Counters,
    update_modeled_seconds: f64,
    update_wall_seconds: f64,
    per_query: Vec<QueryRecord>,
    /// Queue-wait latency (submit → draining tick), nanoseconds.
    queue_wait: LogHistogram,
    /// Wall latency of executed runs, nanoseconds.
    run_wall: LogHistogram,
    /// Modeled latency of executed runs, nanoseconds.
    run_modeled: LogHistogram,
    /// Queue depth observed at each submit.
    queue_depth_at_submit: LogHistogram,
    /// Tickets drained per tick.
    batch_sizes: LogHistogram,
    /// Accumulated intra-engine pool counters.
    pool_workers: Vec<WorkerStats>,
    /// Runs that carried wall-clock contention meters.
    profiled_runs: u64,
    /// Summed queue lock-wait seconds over all profiled runs.
    lock_wait_seconds_total: f64,
    /// Summed barrier spin seconds over all profiled runs.
    barrier_spin_seconds_total: f64,
    /// Wall events dropped to ring overflow over all profiled runs.
    wall_events_dropped: u64,
    /// Lifecycle spans (batch/admit/run/answer per tick).
    spans: Vec<EngineSpan>,
    /// Per-phase kernel-dispatch tallies over every query and update run,
    /// folded in canonical (phase, rank) order.
    kernel_dispatch: DispatchReport,
    /// Adjacency-cache session reports folded over query runs (metered —
    /// adjacency words separated from collective words — even when the
    /// cache is disabled).
    query_adjacency: CacheReport,
    /// Adjacency-cache session reports folded over update runs.
    update_adjacency: CacheReport,
}

impl Metrics {
    /// Folds a profiled run's transport contention meters in (no-op for
    /// unprofiled runs — `stats.contention` is `None`).
    fn absorb_contention(&mut self, stats: &RunStats) {
        if let Some(c) = &stats.contention {
            self.profiled_runs += 1;
            self.lock_wait_seconds_total += c.lock_wait_seconds();
            self.barrier_spin_seconds_total += c.barrier_spin_seconds();
            self.wall_events_dropped += c.events_dropped;
        }
    }
}

/// A long-lived engine serving queries against a graph loaded once.
pub struct Engine {
    cfg: EngineConfig,
    ranks: Arc<Vec<PreparedRank>>,
    /// Per-rank mutable adjacency overlays (update deltas over the
    /// immutable prepared bases). Locked per rank inside update runs.
    overlays: Arc<Vec<Mutex<Overlay>>>,
    /// Per-PE remote-adjacency caches. Query runs read a shared snapshot
    /// (their run logs commit here post-tick in job order); update runs
    /// take the cells exclusively through write sessions.
    adj_caches: Arc<Vec<RankCache>>,
    degrees: Arc<Vec<u64>>,
    num_vertices: u64,
    epoch: u64,
    next_ticket: u64,
    pending: VecDeque<Ticket>,
    cache: BTreeMap<(u64, QueryKey), CachedValue>,
    pool: Pool,
    setup_stats: RunStats,
    /// Statistics of the one-time baseline count establishing
    /// `resident_triangles`.
    baseline_stats: RunStats,
    /// The incrementally maintained global triangle count.
    resident_triangles: u64,
    /// Whether any rank's overlay holds uncompacted deltas. Queries
    /// compact first (the prepared state they run on is pre-update
    /// otherwise).
    dirty: bool,
    metrics: Metrics,
    /// Wall-clock origin: lifecycle span stamps count from here.
    born: Instant,
}

impl Engine {
    /// Loads `g` into the engine: partitions it over `cfg.num_ranks` PEs
    /// (vertex balanced) and performs the whole distributed setup exactly
    /// once. Everything queries need afterwards is resident.
    pub fn build(g: &Csr, cfg: EngineConfig) -> Engine {
        assert!(cfg.num_ranks >= 1, "need at least one PE");
        assert!(cfg.queue_capacity >= 1, "queue capacity must be positive");
        assert!(cfg.batch_max >= 1, "batch size must be positive");
        let degrees = g.degrees();
        let dg = DistGraph::new_balanced_vertices(g, cfg.num_ranks);
        let opts = SimOptions {
            transport: cfg.dist.transport,
            timing: cfg.timing,
            record_trace: false,
            perturb_seed: None,
            wall_profile: cfg.wall_profile,
            ..SimOptions::default()
        };
        let (ranks, setup_stats) = build_residency(dg, &cfg.dist, &opts);
        let ranks = Arc::new(ranks);
        // Establish the resident triangle count once; apply_updates
        // maintains it incrementally from here on. Metered separately from
        // the setup so residency invariants (setup comm never repeats)
        // stay checkable.
        let baseline_ranks = ranks.clone();
        let dist = cfg.dist;
        let baseline = run_sim(cfg.num_ranks, &opts, move |ctx: &mut Ctx| {
            cetric::count_prepared(ctx, &baseline_ranks[ctx.rank()], &dist)
        });
        let resident_triangles = baseline.output.results[0];
        let overlays = ranks
            .iter()
            .map(|r| Mutex::new(Overlay::for_local(&r.local)))
            .collect();
        let pool = Pool::new(cfg.workers.max(1));
        let adj_caches = Arc::new(Self::fresh_caches(&cfg));
        Engine {
            cfg,
            ranks,
            overlays: Arc::new(overlays),
            adj_caches,
            degrees: Arc::new(degrees),
            num_vertices: g.num_vertices(),
            epoch: 0,
            next_ticket: 0,
            pending: VecDeque::new(),
            cache: BTreeMap::new(),
            pool,
            setup_stats,
            baseline_stats: baseline.output.stats,
            resident_triangles,
            dirty: false,
            metrics: Metrics::default(),
            born: Instant::now(),
        }
    }

    /// Wall nanoseconds since the engine was built.
    #[inline]
    fn now_nanos(&self) -> u64 {
        self.born.elapsed().as_nanos() as u64
    }

    /// Cold per-PE adjacency caches under the configured budget (and the
    /// §IV-A memory bound, when `dist.memory_limit_words` caps it).
    fn fresh_caches(cfg: &EngineConfig) -> Vec<RankCache> {
        (0..cfg.num_ranks)
            .map(|_| RankCache::new(cfg.dist.cache, cfg.num_ranks, cfg.dist.memory_limit_words))
            .collect()
    }

    /// Opens the session a query run uses on rank `rank`: a read session
    /// over the shared snapshot when the cache is enabled, a metering-only
    /// session otherwise (so the adjacency/collective comm split is
    /// observable either way).
    fn query_session<'c>(caches: &'c [RankCache], enabled: bool, rank: usize) -> CacheSession<'c> {
        if enabled {
            CacheSession::read(&caches[rank])
        } else {
            CacheSession::metered()
        }
    }

    /// Commits one query run's per-rank session logs into the resident
    /// caches (rank order within the run; runs commit in job order).
    fn commit_query_outcomes(&mut self, outcomes: Vec<CacheRunOutcome>) {
        let caches = Arc::make_mut(&mut self.adj_caches);
        for (rank, o) in outcomes.into_iter().enumerate() {
            let evicted = caches[rank].commit(&o.log);
            self.metrics.query_adjacency.absorb(&o.report);
            self.metrics.query_adjacency.evictions += evicted;
        }
    }

    /// Current totals of the per-PE adjacency caches: (held entries,
    /// resident words).
    fn adj_cache_usage(&self) -> (u64, u64) {
        self.adj_caches.iter().fold((0, 0), |(e, w), c| {
            (e + c.held_entries(), w + c.resident_words())
        })
    }

    /// Number of vertices in the resident graph.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Queries currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Statistics of the one-time setup run.
    pub fn setup_stats(&self) -> &RunStats {
        &self.setup_stats
    }

    /// Statistics of the one-time baseline count that seeded
    /// [`resident_triangles`](Engine::resident_triangles).
    pub fn baseline_stats(&self) -> &RunStats {
        &self.baseline_stats
    }

    /// The incrementally maintained global triangle count of the resident
    /// graph — exact at every epoch (bit-equal to a from-scratch recount).
    pub fn resident_triangles(&self) -> u64 {
        self.resident_triangles
    }

    /// Whether overlays hold deltas not yet folded into the prepared
    /// state. Queries compact first, so this being `true` never makes an
    /// answer stale.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Summed overlay entries across ranks (0 when clean).
    pub fn overlay_entries(&self) -> u64 {
        self.overlays
            .iter()
            .map(|ov| ov.lock().expect("overlay lock").entries())
            .sum()
    }

    /// Enqueues a query. Rejects with [`EngineError::Overloaded`] when the
    /// queue is at `queue_capacity` — admission control, so a burst beyond
    /// the configured depth degrades into explicit backpressure instead of
    /// unbounded memory growth.
    pub fn submit(&mut self, query: Query) -> Result<TicketId, EngineError> {
        if self.pending.len() >= self.cfg.queue_capacity {
            self.metrics.rejected += 1;
            return Err(EngineError::Overloaded {
                depth: self.pending.len(),
                capacity: self.cfg.queue_capacity,
            });
        }
        let id = TicketId(self.next_ticket);
        self.next_ticket += 1;
        self.metrics
            .queue_depth_at_submit
            .record(self.pending.len() as u64);
        self.pending.push_back(Ticket {
            id,
            query,
            submitted: Instant::now(),
        });
        self.metrics.submitted += 1;
        Ok(id)
    }

    /// Drains up to `batch_max` queued queries, executes the batch, and
    /// returns `(ticket, answer)` pairs in submission order.
    ///
    /// Within a batch, queries normalising to the same cache key share one
    /// distributed run; distinct keys execute concurrently on the engine's
    /// work-stealing pool. Freshly computed values enter the epoch-keyed
    /// cache, so an identical later query is a cache hit.
    pub fn tick(&mut self) -> Vec<(TicketId, Result<QueryAnswer, EngineError>)> {
        let n = self.pending.len().min(self.cfg.batch_max);
        if n == 0 {
            return Vec::new();
        }
        // Read-your-writes: fold pending update overlays into the prepared
        // state before serving, so every query kind sees the updated graph.
        if self.dirty {
            if let Err(e) = self.compact() {
                let batch: Vec<Ticket> = self.pending.drain(..n).collect();
                return batch.into_iter().map(|t| (t.id, Err(e.clone()))).collect();
            }
        }
        let batch_index = self.metrics.batches;
        self.metrics.batches += 1;
        let tick_begin = self.now_nanos();
        let drained_at = Instant::now();
        let batch: Vec<Ticket> = self.pending.drain(..n).collect();
        self.metrics.batch_sizes.record(n as u64);

        // Normalise to cache keys; invalid queries fail without executing.
        let mut keyed: Vec<(Ticket, Result<QueryKey, EngineError>)> = batch
            .into_iter()
            .map(|t| {
                let key = self.key_of(&t.query);
                (t, key)
            })
            .collect();

        // The batch's distinct, uncached keys — each computed exactly once.
        let mut jobs: Vec<QueryKey> = Vec::new();
        for (_, key) in &keyed {
            if let Ok(k) = key {
                let cached = self.cache.contains_key(&(self.epoch, k.clone()));
                if !cached && !jobs.contains(k) {
                    jobs.push(k.clone());
                }
            }
        }

        let admit_end = self.now_nanos();

        // Concurrent execution of distinct keys (scoped threads; the
        // closure only borrows the resident state).
        let (task_results, pool_stats) = self
            .pool
            .run_tasks_stats(jobs.clone(), |_, key| self.compute(&key));
        #[allow(clippy::type_complexity)]
        let computed: Vec<
            Result<
                (
                    CachedValue,
                    RunStats,
                    f64,
                    DispatchReport,
                    Vec<CacheRunOutcome>,
                ),
                EngineError,
            >,
        > = task_results.into_iter().map(|tr| tr.result).collect();
        if self.metrics.pool_workers.len() < pool_stats.workers.len() {
            self.metrics
                .pool_workers
                .resize(pool_stats.workers.len(), WorkerStats::default());
        }
        for (acc, w) in self
            .metrics
            .pool_workers
            .iter_mut()
            .zip(&pool_stats.workers)
        {
            acc.absorb(w);
        }
        let run_end = self.now_nanos();

        // Fold results into cache and metrics.
        let cost = self.cfg.timing.unwrap_or_default();
        let mut failures: BTreeMap<QueryKey, EngineError> = BTreeMap::new();
        let mut run_costs: BTreeMap<QueryKey, (f64, f64)> = BTreeMap::new();
        let mut committed_logs = false;
        for (key, outcome) in jobs.into_iter().zip(computed) {
            match outcome {
                Ok((value, stats, wall, dispatch, cache_outcomes)) => {
                    let modeled = stats.modeled_time(&cost);
                    self.metrics.kernel_dispatch.absorb(&dispatch);
                    self.metrics.absorb_contention(&stats);
                    self.metrics.query_comm.absorb(&stats.totals());
                    self.metrics
                        .query_preprocessing_comm
                        .absorb(&stats.phase_totals("preprocessing"));
                    self.metrics.modeled_seconds_total += modeled;
                    self.metrics.wall_seconds_total += wall;
                    self.metrics.run_wall.record_seconds(wall);
                    self.metrics.run_modeled.record_seconds(modeled);
                    run_costs.insert(key.clone(), (modeled, wall));
                    self.cache.insert((self.epoch, key), value);
                    // Admissions observed by this run become visible to the
                    // next tick's snapshot (never to concurrent jobs of this
                    // one) — job order makes the state schedule-independent.
                    committed_logs |= self.cfg.dist.cache.enabled && !cache_outcomes.is_empty();
                    self.commit_query_outcomes(cache_outcomes);
                }
                Err(e) => {
                    failures.insert(key, e);
                }
            }
        }
        if committed_logs {
            self.metrics.spans.push(EngineSpan {
                label: "cache_commit",
                batch: batch_index,
                begin_nanos: run_end,
                end_nanos: self.now_nanos(),
            });
        }

        // Answer every ticket from the (now warm) cache. The first ticket
        // that triggered a key's run carries its cost and counts as the
        // miss; everything else in the batch shared the work (or the
        // cache) and counts as a hit.
        let mut out = Vec::with_capacity(keyed.len());
        for (ticket, key) in keyed.drain(..) {
            let kind = ticket.query.kind();
            let queue_seconds = drained_at
                .saturating_duration_since(ticket.submitted)
                .as_secs_f64();
            self.metrics.queue_wait.record_seconds(queue_seconds);
            let mut hit = false;
            let mut modeled = 0.0;
            let mut wall = 0.0;
            let answer = match key {
                Err(e) => Err(e),
                Ok(k) => {
                    if let Some(e) = failures.get(&k) {
                        Err(e.clone())
                    } else {
                        match run_costs.remove(&k) {
                            Some((m, w)) => {
                                modeled = m;
                                wall = w;
                            }
                            None => hit = true,
                        }
                        let value = self
                            .cache
                            .get(&(self.epoch, k))
                            .expect("computed or cached above");
                        Ok(project(&ticket.query, value))
                    }
                }
            };
            self.metrics.answered += 1;
            if answer.is_ok() {
                if hit {
                    self.metrics.cache_hits += 1;
                } else {
                    self.metrics.cache_misses += 1;
                }
            }
            self.metrics.per_query.push(QueryRecord {
                kind,
                cache_hit: hit,
                queue_seconds,
                modeled_seconds: modeled,
                wall_seconds: wall,
                failed: answer.is_err(),
            });
            out.push((ticket.id, answer));
        }
        let answer_end = self.now_nanos();
        for (label, begin_nanos, end_nanos) in [
            ("batch", tick_begin, answer_end),
            ("admit", tick_begin, admit_end),
            ("run", admit_end, run_end),
            ("answer", run_end, answer_end),
        ] {
            self.metrics.spans.push(EngineSpan {
                label,
                batch: batch_index,
                begin_nanos,
                end_nanos,
            });
        }
        out
    }

    /// Submits a single query and ticks until it is answered — the
    /// synchronous convenience path. Queued queries ahead of it are
    /// answered along the way (their results are dropped here; use
    /// [`submit`](Engine::submit)/[`tick`](Engine::tick) to collect them).
    pub fn query(&mut self, query: Query) -> Result<QueryAnswer, EngineError> {
        let id = self.submit(query)?;
        loop {
            let answers = self.tick();
            if let Some((_, a)) = answers.into_iter().find(|(tid, _)| *tid == id) {
                return a;
            }
        }
    }

    /// Declares the resident graph stale: bumps the epoch, which atomically
    /// invalidates every cached result (entries are keyed by epoch; old
    /// epochs are dropped). [`apply_updates`](Engine::apply_updates) calls
    /// this whenever a batch changes the graph; calling it directly models
    /// upstream recomputation triggers on an unchanged topology.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        let epoch = self.epoch;
        self.cache.retain(|(e, _), _| *e == epoch);
    }

    /// Applies a batch of edge insertions/deletions to the resident graph
    /// through the distributed delta protocol, maintaining
    /// [`resident_triangles`](Engine::resident_triangles) incrementally:
    /// the batch is canonicalised, routed to the owning ranks, filtered
    /// for no-ops, and the exact triangle delta is counted as distributed
    /// intersections with same-batch corrections — no recount. Advances
    /// the epoch iff the graph changed, and compacts the overlays once
    /// they exceed [`EngineConfig::compaction_fraction`] of the base.
    ///
    /// Vertex ids must be in range ([`EngineError::UnknownVertex`]
    /// otherwise — the vertex set is fixed at build). An empty or fully
    /// cancelling batch returns a zero receipt without advancing the
    /// epoch.
    pub fn apply_updates(&mut self, batch: &UpdateBatch) -> Result<UpdateReceipt, EngineError> {
        if let Some(mx) = batch.max_vertex() {
            self.check_vertex(mx)?;
        }
        let canonical = batch.canonicalize();
        let triangles_before = self.resident_triangles;
        if canonical.is_empty() {
            return Ok(UpdateReceipt {
                epoch: self.epoch,
                inserted: 0,
                deleted: 0,
                noops: 0,
                triangles_before,
                triangles_after: triangles_before,
                overlay_fraction: 0.0,
                compacted: false,
                comm: Counters::default(),
                modeled_seconds: 0.0,
                wall_seconds: 0.0,
            });
        }
        let p = self.cfg.num_ranks;
        let opts = SimOptions {
            transport: self.cfg.dist.transport,
            timing: self.cfg.timing,
            record_trace: false,
            perturb_seed: self.cfg.perturb_seed,
            wall_profile: self.cfg.wall_profile,
            ..SimOptions::default()
        };
        let update_begin = self.now_nanos();
        let started = Instant::now();
        let ranks = self.ranks.clone();
        let overlays = self.overlays.clone();
        let dist = self.cfg.dist;
        let shared_batch = Arc::new(canonical);
        let batch_ref = shared_batch.clone();
        // The update run is the adjacency cache's single writer: move the
        // cells into per-rank mutexes for its duration. Write sessions
        // emit the coherence records keeping held `Full` entries exact.
        let enabled = self.cfg.dist.cache.enabled;
        let cache_cells: Arc<Vec<Mutex<RankCache>>> = {
            let taken = std::mem::replace(&mut self.adj_caches, Arc::new(Vec::new()));
            let cells = Arc::try_unwrap(taken).unwrap_or_else(|shared| (*shared).clone());
            Arc::new(cells.into_iter().map(Mutex::new).collect())
        };
        let run_cells = cache_cells.clone();
        let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
            let mut ov = overlays[ctx.rank()].lock().expect("overlay lock");
            let mut cache = run_cells[ctx.rank()].lock().expect("cache cell");
            let mut session = if enabled {
                CacheSession::write(&mut cache, ranks[ctx.rank()].generation)
            } else {
                CacheSession::metered()
            };
            let outcome = delta_dist::apply_batch_rank_cached(
                ctx,
                &ranks[ctx.rank()].local,
                &mut ov,
                &batch_ref,
                &dist,
                &mut session,
            );
            let report = if enabled {
                ctx.with_span("cache_commit", |_| session.finish().report)
            } else {
                session.finish().report
            };
            (outcome, report)
        });
        // Put the cells back before surfacing any error. On success every
        // rank finished its session, so the cell contents are final — take
        // them out under the locks (rank threads may outlive the run for a
        // few microseconds, so sole Arc ownership cannot be assumed). A
        // watchdog-killed run may have leaked rank threads mid-session; the
        // only safe option then is to restart cold.
        self.adj_caches = if out.is_ok() {
            let hollow = RankCache::new(tricount_cache::CacheConfig::default(), 1, None);
            Arc::new(
                cache_cells
                    .iter()
                    .map(|m| std::mem::replace(&mut *m.lock().expect("cache cell"), hollow.clone()))
                    .collect(),
            )
        } else {
            Arc::new(Self::fresh_caches(&self.cfg))
        };
        let out = out.map_err(DistError::from)?;
        let wall = started.elapsed().as_secs_f64();
        let stats = out.output.stats;
        self.metrics.absorb_contention(&stats);
        let (outcomes, cache_reports): (Vec<_>, Vec<CacheReport>) =
            out.output.results.into_iter().unzip();
        for r in &cache_reports {
            self.metrics.update_adjacency.absorb(r);
        }

        // Kernel-dispatch tallies of the counting passes, folded per rank
        // in rank order under the update-count phase.
        for o in &outcomes {
            self.metrics
                .kernel_dispatch
                .add(phases::UPDATE_COUNT, o.kernels);
        }

        // Degree maintenance: each effective edge appears in exactly one
        // rank's tail list; both endpoint degrees move by one.
        let degrees = Arc::make_mut(&mut self.degrees);
        for o in &outcomes {
            for &(ins, u, v) in &o.tail_effective {
                for x in [u, v] {
                    let d = &mut degrees[x as usize];
                    *d = if ins { *d + 1 } else { *d - 1 };
                }
            }
        }

        let global = &outcomes[0];
        let triangles_after = triangles_before + global.triangles_added - global.triangles_removed;
        self.resident_triangles = triangles_after;
        if global.inserted + global.deleted > 0 {
            self.advance_epoch();
        }
        let overlay_entries: u64 = outcomes.iter().map(|o| o.overlay_entries).sum();
        let base_entries: u64 = outcomes.iter().map(|o| o.base_entries).sum();
        self.dirty = overlay_entries > 0;
        let overlay_fraction = overlay_entries as f64 / base_entries.max(1) as f64;

        let totals = stats.totals();
        let modeled = stats.modeled_time(&self.cfg.timing.unwrap_or_default());
        self.metrics.updates_applied += 1;
        self.metrics.edges_inserted += global.inserted;
        self.metrics.edges_deleted += global.deleted;
        self.metrics.update_noops += global.noops;
        self.metrics.update_comm.absorb(&totals);
        self.metrics.update_modeled_seconds += modeled;
        self.metrics.update_wall_seconds += wall;
        self.metrics.spans.push(EngineSpan {
            label: "update",
            batch: self.metrics.batches,
            begin_nanos: update_begin,
            end_nanos: self.now_nanos(),
        });

        let compacted = self.dirty && overlay_fraction > self.cfg.compaction_fraction;
        if compacted {
            self.compact()?;
        }
        Ok(UpdateReceipt {
            epoch: self.epoch,
            inserted: global.inserted,
            deleted: global.deleted,
            noops: global.noops,
            triangles_before,
            triangles_after,
            overlay_fraction,
            compacted,
            comm: totals,
            modeled_seconds: modeled,
            wall_seconds: wall,
        })
    }

    /// Folds every rank's overlay into fresh prepared state: merge the
    /// delta lists into a new base, re-orient, re-contract. No
    /// communication — the update protocol kept ghost degrees current for
    /// every touched vertex.
    fn compact(&mut self) -> Result<(), EngineError> {
        let p = self.cfg.num_ranks;
        let opts = SimOptions {
            transport: self.cfg.dist.transport,
            timing: self.cfg.timing,
            record_trace: false,
            perturb_seed: self.cfg.perturb_seed,
            wall_profile: self.cfg.wall_profile,
            ..SimOptions::default()
        };
        let begin = self.now_nanos();
        let ranks = self.ranks.clone();
        let overlays = self.overlays.clone();
        let dist = self.cfg.dist;
        let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
            let mut ov = overlays[ctx.rank()].lock().expect("overlay lock");
            delta_dist::compact_rank(ctx, &ranks[ctx.rank()], &mut ov, &dist)
        })
        .map_err(DistError::from)?;
        self.ranks = Arc::new(out.output.results);
        // Compaction re-orients and re-contracts, so oriented/contracted
        // cache entries go stale wholesale: the bumped generation tag
        // flushes them locally (merged `Full` lists survive — coherence
        // kept them exact through the updates that forced this).
        if self.cfg.dist.cache.enabled {
            let generation = self.ranks[0].generation;
            let caches = Arc::make_mut(&mut self.adj_caches);
            for c in caches.iter_mut() {
                c.set_generation(generation);
            }
        }
        self.dirty = false;
        self.metrics.compactions += 1;
        self.metrics.absorb_contention(&out.output.stats);
        self.metrics
            .compaction_comm
            .absorb(&out.output.stats.totals());
        self.metrics.spans.push(EngineSpan {
            label: "compaction",
            batch: self.metrics.batches,
            begin_nanos: begin,
            end_nanos: self.now_nanos(),
        });
        Ok(())
    }

    /// Folds a contention accessor over the setup and baseline runs (the
    /// two runs metered before `Metrics` accumulates anything).
    fn boot_contention(&self, f: impl Fn(&tricount_comm::ContentionSummary) -> f64) -> f64 {
        [&self.setup_stats, &self.baseline_stats]
            .iter()
            .filter_map(|s| s.contention.as_ref())
            .map(f)
            .sum()
    }

    /// Snapshots aggregate and per-query serving statistics.
    pub fn stats(&self) -> EngineStats {
        let (adj_cache_entries, adj_cache_resident_words) = self.adj_cache_usage();
        EngineStats {
            num_ranks: self.cfg.num_ranks,
            transport: self.cfg.dist.transport.name(),
            epoch: self.epoch,
            submitted: self.metrics.submitted,
            rejected: self.metrics.rejected,
            answered: self.metrics.answered,
            cache_hits: self.metrics.cache_hits,
            cache_misses: self.metrics.cache_misses,
            batches: self.metrics.batches,
            queue_depth: self.pending.len(),
            cache_entries: self.cache.len(),
            setup_runs: 1,
            setup_comm: self.setup_stats.totals(),
            baseline_comm: self.baseline_stats.totals(),
            resident_triangles: self.resident_triangles,
            updates_applied: self.metrics.updates_applied,
            edges_inserted: self.metrics.edges_inserted,
            edges_deleted: self.metrics.edges_deleted,
            update_noops: self.metrics.update_noops,
            compactions: self.metrics.compactions,
            overlay_entries: self.overlay_entries(),
            update_comm: self.metrics.update_comm,
            compaction_comm: self.metrics.compaction_comm,
            update_modeled_seconds: self.metrics.update_modeled_seconds,
            update_wall_seconds: self.metrics.update_wall_seconds,
            query_comm: self.metrics.query_comm,
            query_preprocessing_comm: self.metrics.query_preprocessing_comm,
            modeled_seconds_total: self.metrics.modeled_seconds_total,
            wall_seconds_total: self.metrics.wall_seconds_total,
            profiled_runs: {
                let boot = [&self.setup_stats, &self.baseline_stats]
                    .iter()
                    .filter(|s| s.contention.is_some())
                    .count() as u64;
                self.metrics.profiled_runs + boot
            },
            lock_wait_seconds_total: self.metrics.lock_wait_seconds_total
                + self.boot_contention(tricount_comm::ContentionSummary::lock_wait_seconds),
            barrier_spin_seconds_total: self.metrics.barrier_spin_seconds_total
                + self.boot_contention(tricount_comm::ContentionSummary::barrier_spin_seconds),
            wall_events_dropped: self.metrics.wall_events_dropped
                + [&self.setup_stats, &self.baseline_stats]
                    .iter()
                    .filter_map(|s| s.contention.as_ref())
                    .map(|c| c.events_dropped)
                    .sum::<u64>(),
            queue_wait: self.metrics.queue_wait.summary_seconds(),
            run_wall: self.metrics.run_wall.summary_seconds(),
            run_modeled: self.metrics.run_modeled.summary_seconds(),
            pool: self.metrics.pool_workers.clone(),
            spans: self.metrics.spans.clone(),
            per_query: self.metrics.per_query.clone(),
            kernel_dispatch: self.metrics.kernel_dispatch.clone(),
            adj_cache_enabled: self.cfg.dist.cache.enabled,
            query_adjacency: self.metrics.query_adjacency,
            update_adjacency: self.metrics.update_adjacency,
            adj_cache_entries,
            adj_cache_resident_words,
        }
    }

    /// Renders the engine's serving metrics in the Prometheus text
    /// exposition format: counters from the snapshot, latency histograms
    /// (with quantile gauges) from the live log-bucketed recorders, and
    /// per-worker pool counters. Suitable for `serve --metrics-out` or a
    /// scrape endpoint.
    pub fn prometheus(&self) -> String {
        let m = &self.metrics;
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "tricount_engine_submitted_total",
            "Queries accepted by admission control",
            m.submitted,
        );
        reg.counter(
            "tricount_engine_rejected_total",
            "Submissions rejected by admission control",
            m.rejected,
        );
        reg.counter(
            "tricount_engine_answered_total",
            "Queries answered (including failures)",
            m.answered,
        );
        reg.counter(
            "tricount_engine_cache_hits_total",
            "Answers served from the result cache",
            m.cache_hits,
        );
        reg.counter(
            "tricount_engine_cache_misses_total",
            "Answers that required a distributed run",
            m.cache_misses,
        );
        reg.counter("tricount_engine_batches_total", "Ticks executed", m.batches);
        reg.counter(
            "tricount_engine_updates_applied_total",
            "Edge-update batches applied",
            m.updates_applied,
        );
        reg.counter(
            "tricount_engine_edges_inserted_total",
            "Effective edge insertions applied",
            m.edges_inserted,
        );
        reg.counter(
            "tricount_engine_edges_deleted_total",
            "Effective edge deletions applied",
            m.edges_deleted,
        );
        reg.counter(
            "tricount_engine_update_noops_total",
            "Update operations that were no-ops against the live graph",
            m.update_noops,
        );
        reg.counter(
            "tricount_engine_compactions_total",
            "Overlay compactions performed",
            m.compactions,
        );
        reg.gauge(
            "tricount_engine_resident_triangles",
            "Incrementally maintained global triangle count",
            self.resident_triangles as f64,
        );
        reg.gauge(
            "tricount_engine_overlay_entries",
            "Summed per-rank overlay entries awaiting compaction",
            self.overlay_entries() as f64,
        );
        reg.gauge(
            "tricount_engine_queue_depth",
            "Queries waiting in the admission queue",
            self.pending.len() as f64,
        );
        reg.gauge(
            "tricount_engine_cache_entries",
            "Live entries in the result cache",
            self.cache.len() as f64,
        );
        reg.gauge(
            "tricount_engine_epoch",
            "Current graph epoch",
            self.epoch as f64,
        );
        reg.gauge(
            "tricount_engine_num_ranks",
            "PEs the resident graph is partitioned over",
            self.cfg.num_ranks as f64,
        );
        reg.histogram_seconds(
            "tricount_engine_queue_wait_seconds",
            "Queue-wait latency (submit to the tick that drained it)",
            &m.queue_wait,
        );
        reg.histogram_seconds(
            "tricount_engine_run_wall_seconds",
            "Wall latency of executed distributed runs",
            &m.run_wall,
        );
        reg.histogram_seconds(
            "tricount_engine_run_modeled_seconds",
            "Modeled latency of executed distributed runs",
            &m.run_modeled,
        );
        reg.histogram_units(
            "tricount_engine_queue_depth_at_submit",
            "Queue depth observed by each accepted submission",
            &m.queue_depth_at_submit,
        );
        reg.histogram_units(
            "tricount_engine_batch_size",
            "Tickets drained per tick",
            &m.batch_sizes,
        );
        let snapshot = self.stats();
        if snapshot.profiled_runs > 0 {
            reg.counter(
                "tricount_engine_profiled_runs_total",
                "Runs that carried wall-clock transport contention meters",
                snapshot.profiled_runs,
            );
            reg.gauge(
                "tricount_engine_transport_lock_wait_seconds",
                "Summed transport queue lock-wait seconds over profiled runs",
                snapshot.lock_wait_seconds_total,
            );
            reg.gauge(
                "tricount_engine_transport_barrier_spin_seconds",
                "Summed transport barrier spin seconds over profiled runs",
                snapshot.barrier_spin_seconds_total,
            );
            reg.counter(
                "tricount_engine_wall_events_dropped_total",
                "Wall events lost to probe-ring overflow over profiled runs",
                snapshot.wall_events_dropped,
            );
        }
        for (path, report) in [
            ("query", &m.query_adjacency),
            ("update", &m.update_adjacency),
        ] {
            let path_label = [("path", path.to_string())];
            reg.counter_with(
                "tricount_cache_lookups_total",
                "Remote-adjacency cache lookups (sender-side mirror consultations)",
                &path_label,
                report.lookups,
            );
            reg.counter_with(
                "tricount_cache_hits_total",
                "Adjacency shipments replaced by cache references",
                &path_label,
                report.hits,
            );
            reg.counter_with(
                "tricount_cache_misses_total",
                "Adjacency lookups that shipped the full list",
                &path_label,
                report.misses,
            );
            reg.counter_with(
                "tricount_cache_words_shipped_total",
                "Adjacency list words put on the wire",
                &path_label,
                report.words_shipped,
            );
            reg.counter_with(
                "tricount_cache_words_saved_total",
                "Adjacency list words elided by cache references",
                &path_label,
                report.words_saved,
            );
            reg.counter_with(
                "tricount_cache_invalidations_total",
                "Held entries dropped by update coherence",
                &path_label,
                report.invalidations,
            );
            reg.counter_with(
                "tricount_cache_patches_total",
                "Held entries patched in place by update coherence",
                &path_label,
                report.patches,
            );
            reg.counter_with(
                "tricount_cache_evictions_total",
                "Held entries evicted by the word budget",
                &path_label,
                report.evictions,
            );
        }
        {
            let (entries, words) = self.adj_cache_usage();
            reg.gauge(
                "tricount_cache_entries",
                "Held remote-adjacency entries resident across PE caches",
                entries as f64,
            );
            reg.gauge(
                "tricount_cache_resident_words",
                "Words held remote-adjacency entries occupy",
                words as f64,
            );
        }
        for (phase, counters) in &m.kernel_dispatch.phases {
            for (kernel, n) in counters.named() {
                reg.counter_with(
                    "tricount_kernel_dispatch_total",
                    "Intersection calls served per kernel and counting phase",
                    &[("phase", phase.to_string()), ("kernel", kernel.to_string())],
                    n,
                );
            }
        }
        for (i, w) in m.pool_workers.iter().enumerate() {
            let worker = [("worker", i.to_string())];
            reg.counter_with(
                "tricount_engine_pool_executed_total",
                "Query tasks executed per pool worker",
                &worker,
                w.executed,
            );
            reg.counter_with(
                "tricount_engine_pool_steals_attempted_total",
                "Steal probes per pool worker",
                &worker,
                w.steals_attempted,
            );
            reg.counter_with(
                "tricount_engine_pool_steals_succeeded_total",
                "Successful steals per pool worker",
                &worker,
                w.steals_succeeded,
            );
        }
        reg.render()
    }

    /// Normalises a query to its cache key, validating vertex ids.
    fn key_of(&self, query: &Query) -> Result<QueryKey, EngineError> {
        match query {
            Query::GlobalTriangles { algorithm } => {
                Ok(QueryKey::Global(algorithm_index(*algorithm)))
            }
            Query::VertexLcc { vertices } => {
                for &v in vertices {
                    self.check_vertex(v)?;
                }
                Ok(QueryKey::LccFull)
            }
            Query::EdgeSupport { edges } => {
                for &(a, b) in edges {
                    self.check_vertex(a)?;
                    self.check_vertex(b)?;
                }
                Ok(QueryKey::Support(edges.clone()))
            }
            Query::ApproxTriangles { max_rel_error } => {
                Ok(QueryKey::Approx(bits_for_rel_error(*max_rel_error)))
            }
        }
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), EngineError> {
        if v < self.num_vertices {
            Ok(())
        } else {
            Err(EngineError::UnknownVertex {
                vertex: v,
                num_vertices: self.num_vertices,
            })
        }
    }

    /// Executes one cache key as a guarded distributed run against the
    /// resident state. Returns the value, the run's statistics, its wall
    /// time, the per-rank kernel-dispatch tallies folded in rank order, and
    /// the per-rank adjacency-cache run outcomes (logs awaiting the
    /// post-tick commit, plus metering).
    #[allow(clippy::type_complexity)]
    fn compute(
        &self,
        key: &QueryKey,
    ) -> Result<
        (
            CachedValue,
            RunStats,
            f64,
            DispatchReport,
            Vec<CacheRunOutcome>,
        ),
        EngineError,
    > {
        let p = self.cfg.num_ranks;
        let opts = SimOptions {
            transport: self.cfg.dist.transport,
            timing: self.cfg.timing,
            record_trace: false,
            perturb_seed: self.cfg.perturb_seed,
            wall_profile: self.cfg.wall_profile,
            ..SimOptions::default()
        };
        let enabled = self.cfg.dist.cache.enabled;
        let caches = self.adj_caches.clone();
        let started = Instant::now();
        match key {
            QueryKey::Global(idx) => {
                let alg = Algorithm::all()[*idx as usize];
                // Global queries run under the variant's own configuration,
                // but the serving-side kernel policy and cache knobs are the
                // engine's.
                let mut cfg = alg.config();
                cfg.kernels = self.cfg.dist.kernels;
                cfg.cache = self.cfg.dist.cache;
                let ranks = self.ranks.clone();
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    let mut session = Self::query_session(&caches, enabled, ctx.rank());
                    let r = exec_global(ctx, &ranks[ctx.rank()], alg, &cfg, &mut session);
                    r.map(|v| (v, session.finish()))
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let mut count = 0u64;
                let mut report = DispatchReport::new();
                let mut outcomes = Vec::with_capacity(p);
                for (i, r) in out.output.results.into_iter().enumerate() {
                    let ((c, d), o) = r.map_err(EngineError::Dist)?;
                    if i == 0 {
                        count = c;
                    }
                    report.absorb(&d);
                    outcomes.push(o);
                }
                Ok((
                    CachedValue::Count(count),
                    out.output.stats,
                    wall,
                    report,
                    outcomes,
                ))
            }
            QueryKey::LccFull => {
                let ranks = self.ranks.clone();
                let cfg = self.cfg.dist;
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    let mut session = Self::query_session(&caches, enabled, ctx.rank());
                    let r = lcc::lcc_prepared_cached(ctx, &ranks[ctx.rank()], &cfg, &mut session);
                    (r, session.finish())
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let mut per_vertex = Vec::with_capacity(self.degrees.len());
                let mut report = DispatchReport::new();
                let mut outcomes = Vec::with_capacity(p);
                for ((owned, d), o) in out.output.results {
                    per_vertex.extend(owned);
                    report.absorb(&d);
                    outcomes.push(o);
                }
                let full = lcc::normalize_lcc(&per_vertex, &self.degrees);
                Ok((
                    CachedValue::LccFull(full),
                    out.output.stats,
                    wall,
                    report,
                    outcomes,
                ))
            }
            QueryKey::Support(edges) => {
                let ranks = self.ranks.clone();
                let cfg = self.cfg.dist;
                let edges = Arc::new(edges.clone());
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    let mut session = Self::query_session(&caches, enabled, ctx.rank());
                    let r = edge_support_rank_cached(
                        ctx,
                        &ranks[ctx.rank()].local,
                        &edges,
                        &cfg,
                        &mut session,
                    );
                    (r, session.finish())
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let mut support = Vec::new();
                let mut report = DispatchReport::new();
                let mut outcomes = Vec::with_capacity(p);
                for (i, ((s, d), o)) in out.output.results.into_iter().enumerate() {
                    if i == 0 {
                        support = s;
                    }
                    report.absorb(&d);
                    outcomes.push(o);
                }
                Ok((
                    CachedValue::Support(support),
                    out.output.stats,
                    wall,
                    report,
                    outcomes,
                ))
            }
            QueryKey::Approx(bits) => {
                let ranks = self.ranks.clone();
                let cfg = self.cfg.dist;
                let acfg = ApproxConfig {
                    bits_per_key: *bits as f64,
                    filter: FilterKind::Bloom,
                };
                let out = run_guarded(p, &opts, self.cfg.watchdog, move |ctx: &mut Ctx| {
                    approx_prepared(ctx, &ranks[ctx.rank()], &cfg, &acfg)
                })
                .map_err(DistError::from)?;
                let wall = started.elapsed().as_secs_f64();
                let exact: u64 = out.output.results.iter().map(|r| r.exact_local).sum();
                let corrected: f64 = out
                    .output
                    .results
                    .iter()
                    .map(|r| r.type3_corrected)
                    .sum::<f64>()
                    .max(0.0);
                Ok((
                    CachedValue::Approx(exact as f64 + corrected, *bits as f64),
                    out.output.stats,
                    wall,
                    DispatchReport::new(),
                    // The sketch exchange ships filters, not adjacency
                    // lists — nothing for the cache.
                    Vec::new(),
                ))
            }
        }
    }
}

/// One rank's program for a global-count query: the contraction variants
/// run directly on the resident prepared state; the others run their full
/// rank program on a clone of the resident local graph, whose ghost degrees
/// are already known — so their preprocessing phase does no communication.
/// Returns the count plus this rank's kernel-dispatch tallies (empty for
/// the baselines, which intersect without the dispatcher).
fn exec_global(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    alg: Algorithm,
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> Result<(u64, DispatchReport), DistError> {
    match alg {
        Algorithm::Cetric | Algorithm::Cetric2 => {
            Ok(cetric::count_prepared_cached(ctx, prep, cfg, session))
        }
        Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => Ok(
            ditric::run_rank_cached(ctx, prep.local.clone(), cfg, session),
        ),
        Algorithm::TricLike => baselines::tric_like_rank(ctx, prep.local.clone(), cfg)
            .map(|c| (c, DispatchReport::new())),
        Algorithm::HavoqgtLike => Ok((
            baselines::havoqgt_like_rank(ctx, prep.local.clone(), cfg),
            DispatchReport::new(),
        )),
    }
}

/// Projects a cached full value onto the specific query's answer shape.
fn project(query: &Query, value: &CachedValue) -> QueryAnswer {
    match (query, value) {
        (Query::GlobalTriangles { .. }, CachedValue::Count(c)) => QueryAnswer::Count(*c),
        (Query::VertexLcc { vertices }, CachedValue::LccFull(full)) => {
            QueryAnswer::Lcc(vertices.iter().map(|&v| (v, full[v as usize])).collect())
        }
        (Query::EdgeSupport { edges }, CachedValue::Support(s)) => {
            QueryAnswer::Support(edges.iter().copied().zip(s.iter().copied()).collect())
        }
        (Query::ApproxTriangles { .. }, CachedValue::Approx(est, bits)) => QueryAnswer::Approx {
            estimate: *est,
            bits_per_key: *bits,
        },
        _ => unreachable!("query/key/value shapes are constructed in lockstep"),
    }
}

//! Scripted query workloads for the `serve` CLI verb, the closed-loop
//! benchmark harness and the acceptance tests: a deterministic mixed stream
//! of global-count, LCC, edge-support and approximate queries drawn from a
//! bounded palette (so repeats occur and the cache has something to do).

use tricount_core::config::Algorithm;
use tricount_graph::VertexId;

use crate::query::Query;

/// splitmix64 — the workload's only randomness source (`Date`-free and
/// dependency-free by construction).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Generates a deterministic mixed workload of `n` queries over a graph
/// with `num_vertices` vertices: roughly 40% global counts (cycling the
/// algorithm variants), 30% vertex LCCs, 20% edge supports (drawn from a
/// palette of 4 edge batches) and 10% approximate counts (3 error
/// targets). Same `(n, num_vertices, seed)` → same stream.
pub fn scripted_workload(n: usize, num_vertices: u64, seed: u64) -> Vec<Query> {
    assert!(num_vertices >= 2, "workload needs at least two vertices");
    let mut rng = seed ^ 0x5eed;

    // Pre-draw a small palette of edge batches so support queries repeat.
    let mut edge_batches: Vec<Vec<(VertexId, VertexId)>> = Vec::new();
    for _ in 0..4 {
        let len = 2 + (splitmix64(&mut rng) % 6) as usize;
        let mut batch = Vec::with_capacity(len);
        for _ in 0..len {
            let a = splitmix64(&mut rng) % num_vertices;
            let mut b = splitmix64(&mut rng) % num_vertices;
            if b == a {
                b = (b + 1) % num_vertices;
            }
            batch.push((a, b));
        }
        edge_batches.push(batch);
    }
    let rel_errors = [0.25, 0.05, 0.01];
    let algorithms = Algorithm::all();

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let roll = splitmix64(&mut rng) % 100;
        let q = if roll < 40 {
            Query::GlobalTriangles {
                algorithm: algorithms[i % algorithms.len()],
            }
        } else if roll < 70 {
            let len = 1 + (splitmix64(&mut rng) % 8);
            let vertices = (0..len)
                .map(|_| splitmix64(&mut rng) % num_vertices)
                .collect();
            Query::VertexLcc { vertices }
        } else if roll < 90 {
            let batch = edge_batches[(splitmix64(&mut rng) % 4) as usize].clone();
            Query::EdgeSupport { edges: batch }
        } else {
            Query::ApproxTriangles {
                max_rel_error: rel_errors[(splitmix64(&mut rng) % 3) as usize],
            }
        };
        out.push(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let a = scripted_workload(500, 128, 7);
        let b = scripted_workload(500, 128, 7);
        assert_eq!(a, b);
        let kinds: Vec<&str> = a.iter().map(|q| q.kind()).collect();
        for k in ["global", "lcc", "support", "approx"] {
            assert!(kinds.contains(&k), "workload must contain {k} queries");
        }
        assert_ne!(scripted_workload(500, 128, 8), a);
    }
}

//! Engine observability: per-query records and aggregate serving
//! statistics, serialisable to JSON without any external dependency.

use tricount_cache::CacheReport;
use tricount_comm::Counters;
use tricount_core::dist::dispatch::DispatchReport;
use tricount_obs::Summary;
use tricount_par::WorkerStats;

/// One served query, as recorded by [`Engine::tick`](crate::Engine::tick).
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Query kind ("global", "lcc", "support", "approx").
    pub kind: &'static str,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Time the query waited in the admission queue (submit → the tick
    /// that drained it).
    pub queue_seconds: f64,
    /// Modeled α+β+t_op time of the distributed run that produced the
    /// answer (0 for cache hits).
    pub modeled_seconds: f64,
    /// Wall time of the run on the host (0 for cache hits).
    pub wall_seconds: f64,
    /// Whether the query failed.
    pub failed: bool,
}

/// One engine lifecycle span: a tick stage (`admit` → `run` → `answer` →
/// `cache_commit`, under an enclosing `batch`, plus `seal` when a tick
/// lazily folded a dirty pinned snapshot) or a graph-mutation stage
/// (`update`, `compaction`), in wall nanoseconds since the engine was
/// built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSpan {
    /// Stage label: "batch", "admit", "run", "answer", "cache_commit",
    /// "seal", "update" or "compaction".
    pub label: &'static str,
    /// Tick index the span belongs to (0-based).
    pub batch: u64,
    /// Start of the stage.
    pub begin_nanos: u64,
    /// End of the stage.
    pub end_nanos: u64,
}

/// Aggregate serving statistics, snapshotted by
/// [`Engine::stats`](crate::Engine::stats).
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Number of PEs the resident graph is partitioned over.
    pub num_ranks: usize,
    /// Transport backend carrying the engine's runs ("sim" or "threads").
    pub transport: &'static str,
    /// Current epoch (bumped by [`advance_epoch`](crate::Engine::advance_epoch)).
    pub epoch: u64,
    /// Queries accepted by [`submit`](crate::Engine::submit).
    pub submitted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Queries answered (including failures).
    pub answered: u64,
    /// Answers served from the result cache.
    pub cache_hits: u64,
    /// Answers that required a distributed run.
    pub cache_misses: u64,
    /// Ticks executed.
    pub batches: u64,
    /// Queries waiting in the queue right now.
    pub queue_depth: usize,
    /// Live entries in the result cache (current epoch).
    pub cache_entries: usize,
    /// How many times the setup (partition + ghost exchange + orientation +
    /// contraction) ran. Stays 1 for the life of the engine — the point of
    /// residency.
    pub setup_runs: u64,
    /// Communication totals of the setup run.
    pub setup_comm: Counters,
    /// Communication totals of the one-time baseline count that seeded the
    /// resident triangle count.
    pub baseline_comm: Counters,
    /// The incrementally maintained resident triangle count.
    pub resident_triangles: u64,
    /// Update batches applied via `apply_updates`.
    pub updates_applied: u64,
    /// Effective edge insertions across all update batches.
    pub edges_inserted: u64,
    /// Effective edge deletions across all update batches.
    pub edges_deleted: u64,
    /// Canonical update operations that were no-ops against the live graph.
    pub update_noops: u64,
    /// Overlay compactions performed (threshold-triggered or
    /// read-your-writes before a tick).
    pub compactions: u64,
    /// Summed per-rank overlay entries right now (0 when clean).
    pub overlay_entries: u64,
    /// Epoch snapshots alive right now (the current epoch plus every
    /// superseded epoch still pinned by an admitted reader).
    pub epochs_live: u64,
    /// Superseded epochs retired (freed after their last reader drained)
    /// since the engine was built.
    pub epochs_retired: u64,
    /// Queries currently pinning an epoch snapshot (admitted, not yet
    /// answered).
    pub readers_pinned: u64,
    /// Lifetime distribution of retired epochs (publish → retire).
    pub epoch_lifetime: Summary,
    /// Communication totals over every update run (route + count +
    /// ghost refresh).
    pub update_comm: Counters,
    /// Communication totals over every compaction — all zeros when the
    /// targeted ghost refresh works as intended (compaction never talks).
    pub compaction_comm: Counters,
    /// Sum of modeled times over all update runs.
    pub update_modeled_seconds: f64,
    /// Sum of wall times over all update runs.
    pub update_wall_seconds: f64,
    /// Communication totals over every distributed query run.
    pub query_comm: Counters,
    /// Communication totals restricted to query runs' "preprocessing"
    /// phases — all zeros when residency works as intended (the ghost
    /// degree exchange never repeats).
    pub query_preprocessing_comm: Counters,
    /// Sum of modeled times over all executed runs.
    pub modeled_seconds_total: f64,
    /// Sum of wall times over all executed runs.
    pub wall_seconds_total: f64,
    /// Runs (setup, baseline, queries, updates, compactions) that carried
    /// wall-clock contention meters (0 unless `wall_profile` on threads).
    pub profiled_runs: u64,
    /// Summed transport queue lock-wait seconds over profiled runs.
    pub lock_wait_seconds_total: f64,
    /// Summed transport barrier spin seconds over profiled runs.
    pub barrier_spin_seconds_total: f64,
    /// Wall events lost to probe-ring overflow over profiled runs.
    pub wall_events_dropped: u64,
    /// Queue-wait latency distribution (submit → draining tick).
    pub queue_wait: Summary,
    /// Wall latency distribution of executed runs (cache hits excluded).
    pub run_wall: Summary,
    /// Modeled latency distribution of executed runs.
    pub run_modeled: Summary,
    /// Accumulated intra-engine pool counters, indexed by worker.
    pub pool: Vec<WorkerStats>,
    /// Lifecycle spans of every tick (batch/admit/run/answer stages).
    pub spans: Vec<EngineSpan>,
    /// Per-query records, in answer order.
    pub per_query: Vec<QueryRecord>,
    /// Kernel-dispatch tallies per counting phase, over every query and
    /// update run since the engine was built.
    pub kernel_dispatch: DispatchReport,
    /// Whether the remote-adjacency cache is enabled.
    pub adj_cache_enabled: bool,
    /// Adjacency-cache meters folded over every query run. With the cache
    /// disabled only `words_shipped` moves — the adjacency side of the
    /// comm split (`query_comm` words minus these are headers, answers and
    /// collectives).
    pub query_adjacency: CacheReport,
    /// Adjacency-cache meters folded over every update run (coherence
    /// invalidations/patches land here — updates are the single writer).
    pub update_adjacency: CacheReport,
    /// Held adjacency entries resident across the PE caches right now.
    pub adj_cache_entries: u64,
    /// Words those held entries occupy.
    pub adj_cache_resident_words: u64,
}

impl EngineStats {
    /// Fraction of answers served from cache (0 when nothing answered).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.answered as f64
        }
    }

    /// Fraction of remote-adjacency lookups in query runs served from the
    /// cache (0 when none were made).
    pub fn adj_cache_hit_rate(&self) -> f64 {
        if self.query_adjacency.lookups == 0 {
            0.0
        } else {
            self.query_adjacency.hits as f64 / self.query_adjacency.lookups as f64
        }
    }

    /// Serialises the snapshot as a JSON object (hand-rolled: the workspace
    /// builds without registry access, so no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        push_field(&mut s, "num_ranks", &self.num_ranks.to_string());
        push_field(&mut s, "transport", &format!("\"{}\"", self.transport));
        push_field(&mut s, "epoch", &self.epoch.to_string());
        push_field(&mut s, "submitted", &self.submitted.to_string());
        push_field(&mut s, "rejected", &self.rejected.to_string());
        push_field(&mut s, "answered", &self.answered.to_string());
        push_field(&mut s, "cache_hits", &self.cache_hits.to_string());
        push_field(&mut s, "cache_misses", &self.cache_misses.to_string());
        push_field(&mut s, "cache_hit_rate", &json_f64(self.cache_hit_rate()));
        push_field(&mut s, "batches", &self.batches.to_string());
        push_field(&mut s, "queue_depth", &self.queue_depth.to_string());
        push_field(&mut s, "cache_entries", &self.cache_entries.to_string());
        push_field(&mut s, "setup_runs", &self.setup_runs.to_string());
        push_field(&mut s, "setup_comm", &counters_json(&self.setup_comm));
        push_field(&mut s, "baseline_comm", &counters_json(&self.baseline_comm));
        push_field(
            &mut s,
            "resident_triangles",
            &self.resident_triangles.to_string(),
        );
        push_field(&mut s, "updates_applied", &self.updates_applied.to_string());
        push_field(&mut s, "edges_inserted", &self.edges_inserted.to_string());
        push_field(&mut s, "edges_deleted", &self.edges_deleted.to_string());
        push_field(&mut s, "update_noops", &self.update_noops.to_string());
        push_field(&mut s, "compactions", &self.compactions.to_string());
        push_field(&mut s, "overlay_entries", &self.overlay_entries.to_string());
        push_field(&mut s, "epochs_live", &self.epochs_live.to_string());
        push_field(&mut s, "epochs_retired", &self.epochs_retired.to_string());
        push_field(&mut s, "readers_pinned", &self.readers_pinned.to_string());
        push_field(
            &mut s,
            "epoch_lifetime",
            &summary_json(&self.epoch_lifetime),
        );
        push_field(&mut s, "update_comm", &counters_json(&self.update_comm));
        push_field(
            &mut s,
            "compaction_comm",
            &counters_json(&self.compaction_comm),
        );
        push_field(
            &mut s,
            "update_modeled_seconds",
            &json_f64(self.update_modeled_seconds),
        );
        push_field(
            &mut s,
            "update_wall_seconds",
            &json_f64(self.update_wall_seconds),
        );
        push_field(&mut s, "query_comm", &counters_json(&self.query_comm));
        push_field(
            &mut s,
            "query_preprocessing_comm",
            &counters_json(&self.query_preprocessing_comm),
        );
        push_field(
            &mut s,
            "modeled_seconds_total",
            &json_f64(self.modeled_seconds_total),
        );
        push_field(
            &mut s,
            "wall_seconds_total",
            &json_f64(self.wall_seconds_total),
        );
        push_field(&mut s, "profiled_runs", &self.profiled_runs.to_string());
        push_field(
            &mut s,
            "lock_wait_seconds_total",
            &json_f64(self.lock_wait_seconds_total),
        );
        push_field(
            &mut s,
            "barrier_spin_seconds_total",
            &json_f64(self.barrier_spin_seconds_total),
        );
        push_field(
            &mut s,
            "wall_events_dropped",
            &self.wall_events_dropped.to_string(),
        );
        push_field(&mut s, "queue_wait", &summary_json(&self.queue_wait));
        push_field(&mut s, "run_wall", &summary_json(&self.run_wall));
        push_field(&mut s, "run_modeled", &summary_json(&self.run_modeled));
        let workers: Vec<String> = self
            .pool
            .iter()
            .map(|w| {
                format!(
                    "{{\"executed\":{},\"steals_attempted\":{},\"steals_succeeded\":{}}}",
                    w.executed, w.steals_attempted, w.steals_succeeded
                )
            })
            .collect();
        s.push_str("\"pool\":[");
        s.push_str(&workers.join(","));
        s.push_str("],");
        push_field(&mut s, "lifecycle_spans", &self.spans.len().to_string());
        push_field(
            &mut s,
            "kernel_dispatch",
            &dispatch_json(&self.kernel_dispatch),
        );
        push_field(
            &mut s,
            "adj_cache_enabled",
            &self.adj_cache_enabled.to_string(),
        );
        push_field(
            &mut s,
            "adj_cache_hit_rate",
            &json_f64(self.adj_cache_hit_rate()),
        );
        push_field(
            &mut s,
            "query_adjacency",
            &cache_report_json(&self.query_adjacency),
        );
        push_field(
            &mut s,
            "update_adjacency",
            &cache_report_json(&self.update_adjacency),
        );
        push_field(
            &mut s,
            "adj_cache_entries",
            &self.adj_cache_entries.to_string(),
        );
        push_field(
            &mut s,
            "adj_cache_resident_words",
            &self.adj_cache_resident_words.to_string(),
        );
        let records: Vec<String> = self.per_query.iter().map(record_json).collect();
        s.push_str("\"per_query\":[");
        s.push_str(&records.join(","));
        s.push_str("]}");
        s
    }
}

fn record_json(r: &QueryRecord) -> String {
    format!(
        "{{\"kind\":\"{}\",\"cache_hit\":{},\"queue_seconds\":{},\"modeled_seconds\":{},\"wall_seconds\":{},\"failed\":{}}}",
        r.kind,
        r.cache_hit,
        json_f64(r.queue_seconds),
        json_f64(r.modeled_seconds),
        json_f64(r.wall_seconds),
        r.failed
    )
}

/// Serialises a latency [`Summary`] as a JSON object.
pub fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        s.count,
        json_f64(s.mean),
        json_f64(s.p50),
        json_f64(s.p90),
        json_f64(s.p99),
        json_f64(s.max)
    )
}

/// Serialises a [`DispatchReport`] as a JSON object keyed by phase, each
/// phase an object keyed by kernel name.
pub fn dispatch_json(r: &DispatchReport) -> String {
    let phases: Vec<String> = r
        .phases
        .iter()
        .map(|(phase, counters)| {
            let kernels: Vec<String> = counters
                .named()
                .iter()
                .map(|(k, n)| format!("\"{k}\":{n}"))
                .collect();
            format!("\"{phase}\":{{{}}}", kernels.join(","))
        })
        .collect();
    format!("{{{}}}", phases.join(","))
}

/// Serialises a [`CacheReport`] as a JSON object — the adjacency side of
/// the comm split: words the protocols shipped as adjacency lists vs words
/// the cache turned into references.
pub fn cache_report_json(r: &CacheReport) -> String {
    format!(
        "{{\"lookups\":{},\"hits\":{},\"misses\":{},\"adjacency_words_shipped\":{},\"adjacency_words_saved\":{},\"invalidations\":{},\"patches\":{},\"evictions\":{},\"staged\":{}}}",
        r.lookups,
        r.hits,
        r.misses,
        r.words_shipped,
        r.words_saved,
        r.invalidations,
        r.patches,
        r.evictions,
        r.staged
    )
}

/// Serialises the interesting [`Counters`] fields as a JSON object.
pub fn counters_json(c: &Counters) -> String {
    format!(
        "{{\"sent_messages\":{},\"sent_words\":{},\"recv_messages\":{},\"recv_words\":{},\"work_ops\":{},\"coll_alpha_units\":{},\"coll_word_units\":{},\"peak_buffered_words\":{}}}",
        c.sent_messages,
        c.sent_words,
        c.recv_messages,
        c.recv_words,
        c.work_ops,
        c.coll_alpha_units,
        c.coll_word_units,
        c.peak_buffered_words
    )
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf; those become 0).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn push_field(s: &mut String, name: &str, value: &str) {
    s.push('"');
    s.push_str(name);
    s.push_str("\":");
    s.push_str(value);
    s.push(',');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let stats = EngineStats {
            num_ranks: 4,
            transport: "sim",
            epoch: 0,
            submitted: 3,
            rejected: 1,
            answered: 2,
            cache_hits: 1,
            cache_misses: 1,
            batches: 1,
            queue_depth: 0,
            cache_entries: 1,
            setup_runs: 1,
            setup_comm: Counters::default(),
            baseline_comm: Counters::default(),
            resident_triangles: 7,
            updates_applied: 2,
            edges_inserted: 3,
            edges_deleted: 1,
            update_noops: 1,
            compactions: 1,
            overlay_entries: 0,
            epochs_live: 1,
            epochs_retired: 2,
            readers_pinned: 0,
            epoch_lifetime: Summary::default(),
            update_comm: Counters::default(),
            compaction_comm: Counters::default(),
            update_modeled_seconds: 0.01,
            update_wall_seconds: 0.02,
            query_comm: Counters::default(),
            query_preprocessing_comm: Counters::default(),
            modeled_seconds_total: 0.5,
            wall_seconds_total: 0.25,
            profiled_runs: 2,
            lock_wait_seconds_total: 0.003,
            barrier_spin_seconds_total: 0.004,
            wall_events_dropped: 0,
            queue_wait: Summary {
                count: 1,
                mean: 0.001,
                p50: 0.001,
                p90: 0.001,
                p99: 0.001,
                max: 0.001,
            },
            run_wall: Summary::default(),
            run_modeled: Summary::default(),
            pool: vec![WorkerStats {
                executed: 1,
                steals_attempted: 2,
                steals_succeeded: 1,
            }],
            spans: vec![EngineSpan {
                label: "batch",
                batch: 0,
                begin_nanos: 0,
                end_nanos: 10,
            }],
            per_query: vec![QueryRecord {
                kind: "global",
                cache_hit: false,
                queue_seconds: 0.001,
                modeled_seconds: 0.5,
                wall_seconds: 0.25,
                failed: false,
            }],
            kernel_dispatch: DispatchReport::of(
                "local",
                tricount_graph::kernels::KernelCounters {
                    merge: 3,
                    gallop: 2,
                    binary: 1,
                    bitmap: 0,
                },
            ),
            adj_cache_enabled: true,
            query_adjacency: CacheReport {
                lookups: 4,
                hits: 3,
                misses: 1,
                words_shipped: 10,
                words_saved: 30,
                invalidations: 0,
                patches: 0,
                evictions: 0,
                staged: 1,
            },
            update_adjacency: CacheReport::default(),
            adj_cache_entries: 1,
            adj_cache_resident_words: 10,
        };
        let j = stats.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"cache_hit_rate\":0.5"));
        assert!(j.contains("\"adj_cache_enabled\":true"));
        assert!(j.contains("\"adj_cache_hit_rate\":0.75"));
        assert!(j.contains("\"query_adjacency\":{\"lookups\":4,\"hits\":3,\"misses\":1,\"adjacency_words_shipped\":10,\"adjacency_words_saved\":30"));
        assert!(j.contains("\"adj_cache_resident_words\":10"));
        assert!(j.contains("\"transport\":\"sim\""));
        assert!(j.contains(
            "\"kernel_dispatch\":{\"local\":{\"merge\":3,\"gallop\":2,\"binary\":1,\"bitmap\":0}}"
        ));
        assert!(j.contains("\"per_query\":[{\"kind\":\"global\""));
        assert!(j.contains("\"queue_wait\":{\"count\":1"));
        assert!(j.contains("\"pool\":[{\"executed\":1"));
        assert!(j.contains("\"queue_seconds\":0.001"));
        assert!(j.contains("\"profiled_runs\":2"));
        assert!(j.contains("\"lock_wait_seconds_total\":0.003"));
        assert!(j.contains("\"barrier_spin_seconds_total\":0.004"));
        assert!(j.contains("\"wall_events_dropped\":0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}

//! MVCC epoch snapshots and their lifecycle.
//!
//! Every committed graph state is an immutable [`EpochSnapshot`]: the
//! prepared per-rank bases (CSR + orientation + contraction + hub
//! indexes), the frozen update overlays on top of them, the degree
//! vector and the resident triangle count. Queries *pin* the snapshot
//! they were admitted on and run against it to completion, no matter how
//! many update batches commit in the meantime — reads never block on
//! writes, and never observe a mid-batch state.
//!
//! The [`EpochTable`] tracks the live snapshots with a reader count per
//! epoch. A superseded epoch is retired — dropped from the table, its
//! lifetime recorded — the moment its last reader drains; the current
//! epoch is never retired. Compaction only ever *builds new* prepared
//! state (for the next epoch, or memoized inside a snapshot by
//! [`EpochSnapshot::seal`]); it never mutates a published snapshot, so
//! folding is automatically restricted to state no pinned reader can
//! still observe.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tricount_core::dist::residency::PreparedRank;
use tricount_delta::Overlay;
use tricount_obs::{LogHistogram, Summary};

use crate::query::EngineError;

/// One immutable committed graph state.
pub(crate) struct EpochSnapshot {
    /// The epoch this snapshot was published as.
    pub epoch: u64,
    /// Per-rank prepared bases (shared with older epochs until a
    /// compaction rebuilds them).
    pub ranks: Arc<Vec<PreparedRank>>,
    /// Frozen per-rank overlays holding the deltas not folded into
    /// `ranks`. Never mutated after publication.
    pub overlay: Arc<Vec<Overlay>>,
    /// Degree vector of the snapshot's graph.
    pub degrees: Arc<Vec<u64>>,
    /// Exact global triangle count of the snapshot's graph.
    pub triangles: u64,
    /// Summed overlay entries across ranks (0 = clean: `ranks` alone
    /// serves this epoch).
    pub overlay_entries: u64,
    /// Memoized sealed state: `ranks` with `overlay` folded in, built
    /// lazily by the first query that needs to serve this epoch. Also
    /// promoted into the base of the *next* epoch so the fold is never
    /// repeated.
    sealed: Mutex<Option<Arc<Vec<PreparedRank>>>>,
}

impl EpochSnapshot {
    pub(crate) fn new(
        epoch: u64,
        ranks: Arc<Vec<PreparedRank>>,
        overlay: Arc<Vec<Overlay>>,
        degrees: Arc<Vec<u64>>,
        triangles: u64,
    ) -> EpochSnapshot {
        let overlay_entries = overlay.iter().map(Overlay::entries).sum();
        EpochSnapshot {
            epoch,
            ranks,
            overlay,
            degrees,
            triangles,
            overlay_entries,
            sealed: Mutex::new(None),
        }
    }

    /// Whether `ranks` alone serves this epoch (no frozen deltas).
    pub(crate) fn is_clean(&self) -> bool {
        self.overlay_entries == 0
    }

    /// The memoized sealed ranks, if a query already folded the overlay.
    pub(crate) fn sealed_peek(&self) -> Option<Arc<Vec<PreparedRank>>> {
        self.sealed.lock().expect("sealed lock").clone()
    }

    /// Serving state without any folding work: the bases when clean, the
    /// memoized seal when present.
    pub(crate) fn serving_if_ready(&self) -> Option<Arc<Vec<PreparedRank>>> {
        if self.is_clean() {
            Some(self.ranks.clone())
        } else {
            self.sealed_peek()
        }
    }

    /// Returns prepared state serving this epoch, folding the frozen
    /// overlay via `fold` exactly once per snapshot (the first caller
    /// folds under the seal lock; concurrent callers block briefly and
    /// reuse the memoized result). The second tuple field reports
    /// whether *this* call performed the fold — the caller accounts the
    /// compaction then.
    pub(crate) fn seal<F>(&self, fold: F) -> Result<(Arc<Vec<PreparedRank>>, bool), EngineError>
    where
        F: FnOnce(Arc<Vec<PreparedRank>>, Vec<Overlay>) -> Result<Vec<PreparedRank>, EngineError>,
    {
        if self.is_clean() {
            return Ok((self.ranks.clone(), false));
        }
        let mut slot = self.sealed.lock().expect("sealed lock");
        if let Some(ranks) = slot.as_ref() {
            return Ok((ranks.clone(), false));
        }
        let folded = Arc::new(fold(self.ranks.clone(), (*self.overlay).clone())?);
        *slot = Some(folded.clone());
        Ok((folded, true))
    }
}

struct EpochEntry {
    snapshot: Arc<EpochSnapshot>,
    readers: u64,
    published: Instant,
}

/// Epoch-lifecycle gauges, snapshotted by [`EpochTable::counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct EpochCounts {
    /// Epochs currently in the table (current + pinned history).
    pub live: u64,
    /// Epochs retired since the engine was built.
    pub retired: u64,
    /// Readers currently pinning a snapshot.
    pub readers_pinned: u64,
}

struct TableInner {
    entries: BTreeMap<u64, EpochEntry>,
    current: u64,
    retired: u64,
    /// Retired-epoch lifetimes (publish → retire), nanoseconds.
    lifetime: LogHistogram,
}

impl TableInner {
    /// Drops every non-current epoch whose last reader has drained,
    /// recording its lifetime. Returns the retired epoch numbers so the
    /// caller can prune per-epoch result-cache entries.
    fn sweep(&mut self) -> Vec<u64> {
        let current = self.current;
        let dead: Vec<u64> = self
            .entries
            .iter()
            .filter(|(e, entry)| **e != current && entry.readers == 0)
            .map(|(e, _)| *e)
            .collect();
        for e in &dead {
            if let Some(entry) = self.entries.remove(e) {
                self.retired += 1;
                self.lifetime
                    .record_seconds(entry.published.elapsed().as_secs_f64());
            }
        }
        dead
    }
}

/// The live epochs with their reader pins — the MVCC retire list.
pub(crate) struct EpochTable {
    inner: Mutex<TableInner>,
}

impl EpochTable {
    pub(crate) fn new(first: EpochSnapshot) -> EpochTable {
        let epoch = first.epoch;
        let mut entries = BTreeMap::new();
        entries.insert(
            epoch,
            EpochEntry {
                snapshot: Arc::new(first),
                readers: 0,
                published: Instant::now(),
            },
        );
        EpochTable {
            inner: Mutex::new(TableInner {
                entries,
                current: epoch,
                retired: 0,
                lifetime: LogHistogram::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().expect("epoch table lock")
    }

    /// The current (tip) snapshot.
    pub(crate) fn current(&self) -> Arc<EpochSnapshot> {
        let t = self.lock();
        t.entries[&t.current].snapshot.clone()
    }

    /// The current epoch number.
    pub(crate) fn current_epoch(&self) -> u64 {
        self.lock().current
    }

    /// Pins the current snapshot for a newly admitted reader.
    pub(crate) fn pin(&self) -> Arc<EpochSnapshot> {
        let mut t = self.lock();
        let current = t.current;
        let entry = t.entries.get_mut(&current).expect("current epoch present");
        entry.readers += 1;
        entry.snapshot.clone()
    }

    /// Drops one reader pin from `epoch`. Retires every drained
    /// non-current epoch and returns their numbers (result-cache entries
    /// keyed by them are unreachable now).
    pub(crate) fn unpin(&self, epoch: u64) -> Vec<u64> {
        let mut t = self.lock();
        if let Some(entry) = t.entries.get_mut(&epoch) {
            entry.readers = entry.readers.saturating_sub(1);
        }
        t.sweep()
    }

    /// Publishes `snapshot` as the new current epoch and retires every
    /// older epoch whose readers have already drained (the common case:
    /// the previous tip retires immediately when nothing pins it).
    /// Returns the retired epoch numbers.
    pub(crate) fn publish(&self, snapshot: EpochSnapshot) -> Vec<u64> {
        let mut t = self.lock();
        let epoch = snapshot.epoch;
        debug_assert!(epoch > t.current, "epochs advance monotonically");
        t.entries.insert(
            epoch,
            EpochEntry {
                snapshot: Arc::new(snapshot),
                readers: 0,
                published: Instant::now(),
            },
        );
        t.current = epoch;
        t.sweep()
    }

    /// Lifecycle gauges: live epochs, retired epochs, pinned readers.
    pub(crate) fn counts(&self) -> EpochCounts {
        let t = self.lock();
        EpochCounts {
            live: t.entries.len() as u64,
            retired: t.retired,
            readers_pinned: t.entries.values().map(|e| e.readers).sum(),
        }
    }

    /// Distribution of retired-epoch lifetimes (publish → retire).
    pub(crate) fn lifetime_summary(&self) -> Summary {
        self.lock().lifetime.summary_seconds()
    }

    /// A clone of the lifetime histogram, for Prometheus rendering.
    pub(crate) fn lifetime_histogram(&self) -> LogHistogram {
        self.lock().lifetime.clone()
    }
}

//! Multi-tenant serving: many resident graphs per process behind one
//! shared worker pool.
//!
//! An [`EngineHost`] maps tenant names to [`Engine`]s that all execute on
//! a single `tricount-par` pool, so one process can hold many resident
//! graphs without `tenants × workers` thread explosion. Admission is
//! two-level: a **global** in-flight budget protects the process, a
//! **per-tenant quota** stops one tenant from starving the rest — both
//! reject with [`HostError::Overloaded`] (explicit backpressure) rather
//! than queueing unboundedly. Work is drained from one concurrent job
//! queue either synchronously ([`EngineHost::drain`], deterministic — for
//! tests and closed-loop benches) or by a background
//! [`serve`](EngineHost::serve) loop of worker threads; because every
//! engine is an MVCC handle, a worker ticking tenant A's queries never
//! blocks on another worker applying updates to A (or to anyone else) —
//! reads are answered against the epoch snapshot pinned at admission.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tricount_delta::UpdateBatch;
use tricount_graph::Csr;
use tricount_obs::MetricsRegistry;
use tricount_par::Pool;

use crate::query::{EngineError, Query, QueryAnswer, TicketId};
use crate::{Engine, EngineConfig, UpdateReceipt};

/// Configuration of an [`EngineHost`].
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Workers of the single pool shared by every tenant engine.
    pub pool_workers: usize,
    /// Threads of the background [`serve`](EngineHost::serve) loop. With
    /// two or more, one tenant's update batch and another tenant's (or
    /// the same tenant's) query ticks proceed concurrently.
    pub serve_workers: usize,
    /// Global admission budget: queries in flight (admitted, not yet
    /// answered) across all tenants.
    pub global_inflight: usize,
    /// Per-tenant quota within the global budget.
    pub tenant_quota: usize,
}

impl HostConfig {
    /// A sensible default host: 4 pool workers, 2 serve workers, a global
    /// budget of 64 in-flight queries with a per-tenant quota of 16.
    pub fn new() -> HostConfig {
        HostConfig {
            pool_workers: 4,
            serve_workers: 2,
            global_inflight: 64,
            tenant_quota: 16,
        }
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig::new()
    }
}

/// A request routed to a tenant engine.
#[derive(Debug, Clone)]
pub enum HostRequest {
    /// A read: admitted under the budgets, answered asynchronously.
    Query {
        /// Tenant to route to.
        tenant: String,
        /// The query.
        query: Query,
    },
    /// A write: an edge-update batch for the tenant's graph.
    Update {
        /// Tenant to route to.
        tenant: String,
        /// The batch.
        batch: UpdateBatch,
    },
}

/// A completed request, drained via [`EngineHost::poll`].
#[derive(Debug, Clone)]
pub enum HostReply {
    /// A query answer.
    Answer {
        /// Tenant the query ran against.
        tenant: String,
        /// Ticket returned by the accepting submit.
        ticket: TicketId,
        /// Epoch the answer was computed at (the one pinned at admission).
        epoch: u64,
        /// The answer.
        result: Result<QueryAnswer, EngineError>,
    },
    /// An update receipt.
    Receipt {
        /// Tenant the batch was applied to.
        tenant: String,
        /// The receipt.
        result: Result<UpdateReceipt, EngineError>,
    },
}

/// Why the host refused a request.
#[derive(Debug, Clone, PartialEq)]
pub enum HostError {
    /// No tenant under that name.
    UnknownTenant {
        /// The name requested.
        tenant: String,
    },
    /// A tenant under that name already exists.
    DuplicateTenant {
        /// The name requested.
        tenant: String,
    },
    /// An admission budget is exhausted; back off and resubmit.
    Overloaded {
        /// Tenant of the rejected request.
        tenant: String,
        /// In-flight queries counted against the exhausted budget.
        inflight: u64,
        /// The exhausted budget.
        limit: u64,
        /// Whether the *global* budget rejected (otherwise the tenant
        /// quota did).
        global: bool,
    },
    /// The tenant engine itself rejected the submission.
    Engine(EngineError),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            HostError::DuplicateTenant { tenant } => write!(f, "tenant {tenant:?} already exists"),
            HostError::Overloaded {
                tenant,
                inflight,
                limit,
                global,
            } => {
                let scope = if *global {
                    "global budget"
                } else {
                    "tenant quota"
                };
                write!(
                    f,
                    "overloaded: {scope} exhausted for {tenant:?} ({inflight}/{limit} in flight)"
                )
            }
            HostError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<EngineError> for HostError {
    fn from(e: EngineError) -> HostError {
        HostError::Engine(e)
    }
}

/// Per-tenant serving counters, snapshotted by [`EngineHost::stats`].
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Queries accepted for this tenant.
    pub submitted: u64,
    /// Requests rejected by quota/budget/engine admission.
    pub rejected: u64,
    /// Answers delivered.
    pub answered: u64,
    /// Update batches applied.
    pub updates: u64,
    /// Queries in flight right now (admitted, not yet answered).
    pub inflight: u64,
    /// The tenant engine's queue depth.
    pub queue_depth: usize,
    /// The tenant engine's current epoch.
    pub epoch: u64,
    /// Epoch snapshots alive in the tenant engine.
    pub epochs_live: u64,
    /// Readers pinning a snapshot in the tenant engine.
    pub readers_pinned: u64,
    /// The tenant's resident triangle count.
    pub resident_triangles: u64,
}

/// Host-level snapshot: the global gauges plus one entry per tenant.
#[derive(Debug, Clone)]
pub struct HostStats {
    /// Tenants registered.
    pub tenants: usize,
    /// Queries in flight across all tenants.
    pub inflight: u64,
    /// The global in-flight budget.
    pub global_inflight: usize,
    /// The per-tenant quota.
    pub tenant_quota: usize,
    /// Per-tenant counters, in name order.
    pub per_tenant: Vec<TenantStats>,
}

struct Tenant {
    engine: Engine,
    inflight: u64,
    submitted: u64,
    rejected: u64,
    answered: u64,
    updates: u64,
}

/// A unit of work for the serve loop.
enum Job {
    /// Tick one tenant's engine (drains up to its `batch_max`).
    Tick { tenant: String },
    /// Apply one update batch to a tenant's engine.
    Update { tenant: String, batch: UpdateBatch },
}

struct HostInner {
    cfg: HostConfig,
    pool: Arc<Pool>,
    tenants: Mutex<BTreeMap<String, Tenant>>,
    jobs: Mutex<VecDeque<Job>>,
    /// Signals serve workers that a job (or stop) is available.
    available: Condvar,
    replies: Mutex<VecDeque<HostReply>>,
    /// Queries in flight across all tenants (the global budget's meter).
    inflight: AtomicU64,
    stop: AtomicBool,
}

/// Many tenant engines behind one pool, one admission policy and one
/// serve loop. Cheap to clone; clones share the host.
#[derive(Clone)]
pub struct EngineHost {
    inner: Arc<HostInner>,
}

impl EngineHost {
    /// Creates an empty host: no tenants, a fresh shared pool.
    pub fn new(cfg: HostConfig) -> EngineHost {
        let pool = Arc::new(Pool::new(cfg.pool_workers.max(1)));
        EngineHost {
            inner: Arc::new(HostInner {
                pool,
                tenants: Mutex::new(BTreeMap::new()),
                jobs: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                replies: Mutex::new(VecDeque::new()),
                inflight: AtomicU64::new(0),
                stop: AtomicBool::new(false),
                cfg,
            }),
        }
    }

    /// Registers `name` with its own resident graph, built on the shared
    /// pool. The engine pays its one-time setup here.
    pub fn add_tenant(&self, name: &str, g: &Csr, cfg: EngineConfig) -> Result<(), HostError> {
        let engine = Engine::build_with_pool(g, cfg, self.inner.pool.clone());
        let mut tenants = self.inner.tenants.lock().expect("tenants lock");
        if tenants.contains_key(name) {
            return Err(HostError::DuplicateTenant {
                tenant: name.to_string(),
            });
        }
        tenants.insert(
            name.to_string(),
            Tenant {
                engine,
                inflight: 0,
                submitted: 0,
                rejected: 0,
                answered: 0,
                updates: 0,
            },
        );
        Ok(())
    }

    /// A clone of a tenant's engine handle (same shared state — useful
    /// for direct stats/Prometheus access in tests and the CLI).
    pub fn tenant_engine(&self, name: &str) -> Result<Engine, HostError> {
        let tenants = self.inner.tenants.lock().expect("tenants lock");
        tenants
            .get(name)
            .map(|t| t.engine.clone())
            .ok_or_else(|| HostError::UnknownTenant {
                tenant: name.to_string(),
            })
    }

    /// Routes a request. Queries pass the global budget, then the tenant
    /// quota, then the tenant engine's own admission control, and return
    /// the accepting ticket; the answer arrives via [`poll`](Self::poll)
    /// once a drain/serve worker ticks the tenant. Updates are always
    /// enqueued (writers are bounded by the serve loop itself, not the
    /// read budgets) and complete as a [`HostReply::Receipt`].
    pub fn submit(&self, request: HostRequest) -> Result<Option<TicketId>, HostError> {
        let inner = &self.inner;
        match request {
            HostRequest::Query { tenant, query } => {
                let mut tenants = inner.tenants.lock().expect("tenants lock");
                let t = tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| HostError::UnknownTenant {
                        tenant: tenant.clone(),
                    })?;
                let global_now = inner.inflight.load(Ordering::Relaxed);
                if global_now >= inner.cfg.global_inflight as u64 {
                    t.rejected += 1;
                    return Err(HostError::Overloaded {
                        tenant,
                        inflight: global_now,
                        limit: inner.cfg.global_inflight as u64,
                        global: true,
                    });
                }
                if t.inflight >= inner.cfg.tenant_quota as u64 {
                    t.rejected += 1;
                    return Err(HostError::Overloaded {
                        tenant,
                        inflight: t.inflight,
                        limit: inner.cfg.tenant_quota as u64,
                        global: false,
                    });
                }
                match t.engine.submit(query) {
                    Ok(id) => {
                        t.inflight += 1;
                        t.submitted += 1;
                        inner.inflight.fetch_add(1, Ordering::Relaxed);
                        drop(tenants);
                        self.push_job(Job::Tick { tenant });
                        Ok(Some(id))
                    }
                    Err(e) => {
                        t.rejected += 1;
                        Err(HostError::Engine(e))
                    }
                }
            }
            HostRequest::Update { tenant, batch } => {
                let tenants = inner.tenants.lock().expect("tenants lock");
                if !tenants.contains_key(&tenant) {
                    return Err(HostError::UnknownTenant { tenant });
                }
                drop(tenants);
                self.push_job(Job::Update { tenant, batch });
                Ok(None)
            }
        }
    }

    /// Drains every completed reply accumulated so far.
    pub fn poll(&self) -> Vec<HostReply> {
        self.inner
            .replies
            .lock()
            .expect("replies lock")
            .drain(..)
            .collect()
    }

    /// Executes queued jobs on the calling thread until the queue is
    /// empty — the deterministic single-threaded path for tests and
    /// benches. Returns the number of jobs executed.
    pub fn drain(&self) -> usize {
        let mut executed = 0;
        while let Some(job) = self.pop_job() {
            self.run_job(job);
            executed += 1;
        }
        executed
    }

    /// Starts `serve_workers` background threads draining the job queue
    /// concurrently: with two or more workers, one tenant's update and
    /// another's query ticks overlap — the MVCC engines make that safe.
    /// Stop (and join) via [`ServeHandle::stop`].
    pub fn serve(&self) -> ServeHandle {
        self.inner.stop.store(false, Ordering::SeqCst);
        let threads = (0..self.inner.cfg.serve_workers.max(1))
            .map(|_| {
                let host = self.clone();
                std::thread::spawn(move || host.serve_loop())
            })
            .collect();
        ServeHandle {
            host: self.clone(),
            threads,
        }
    }

    /// Host-level and per-tenant snapshot. The tenants lock is held only
    /// long enough to copy the host-side counters and clone the engine
    /// handles; per-engine stats run unlocked, so a slow tenant snapshot
    /// never blocks submissions to the others.
    pub fn stats(&self) -> HostStats {
        let inner = &self.inner;
        let snapshot: Vec<(TenantStats, Engine)> = {
            let tenants = inner.tenants.lock().expect("tenants lock");
            tenants
                .iter()
                .map(|(name, t)| {
                    (
                        TenantStats {
                            tenant: name.clone(),
                            submitted: t.submitted,
                            rejected: t.rejected,
                            answered: t.answered,
                            updates: t.updates,
                            inflight: t.inflight,
                            queue_depth: 0,
                            epoch: 0,
                            epochs_live: 0,
                            readers_pinned: 0,
                            resident_triangles: 0,
                        },
                        t.engine.clone(),
                    )
                })
                .collect()
        };
        let per_tenant: Vec<TenantStats> = snapshot
            .into_iter()
            .map(|(mut t, engine)| {
                let es = engine.stats();
                t.queue_depth = es.queue_depth;
                t.epoch = es.epoch;
                t.epochs_live = es.epochs_live;
                t.readers_pinned = es.readers_pinned;
                t.resident_triangles = es.resident_triangles;
                t
            })
            .collect();
        HostStats {
            tenants: per_tenant.len(),
            inflight: inner.inflight.load(Ordering::Relaxed),
            global_inflight: inner.cfg.global_inflight,
            tenant_quota: inner.cfg.tenant_quota,
            per_tenant,
        }
    }

    /// Renders host metrics in the Prometheus text exposition format:
    /// global gauges plus every per-tenant counter labelled
    /// `{tenant="..."}`.
    pub fn prometheus(&self) -> String {
        let s = self.stats();
        let mut reg = MetricsRegistry::new();
        reg.gauge(
            "tricount_host_tenants",
            "Tenant engines registered",
            s.tenants as f64,
        );
        reg.gauge(
            "tricount_host_inflight",
            "Queries in flight across all tenants",
            s.inflight as f64,
        );
        reg.gauge(
            "tricount_host_global_inflight_limit",
            "Global admission budget",
            s.global_inflight as f64,
        );
        reg.gauge(
            "tricount_host_tenant_quota",
            "Per-tenant admission quota",
            s.tenant_quota as f64,
        );
        for t in &s.per_tenant {
            let label = [("tenant", t.tenant.clone())];
            reg.counter_with(
                "tricount_host_submitted_total",
                "Queries accepted per tenant",
                &label,
                t.submitted,
            );
            reg.counter_with(
                "tricount_host_rejected_total",
                "Requests rejected per tenant (budget, quota or engine)",
                &label,
                t.rejected,
            );
            reg.counter_with(
                "tricount_host_answered_total",
                "Answers delivered per tenant",
                &label,
                t.answered,
            );
            reg.counter_with(
                "tricount_host_updates_total",
                "Update batches applied per tenant",
                &label,
                t.updates,
            );
            reg.gauge_with(
                "tricount_host_tenant_inflight",
                "Queries in flight per tenant",
                &label,
                t.inflight as f64,
            );
            reg.gauge_with(
                "tricount_host_tenant_queue_depth",
                "Admission-queue depth per tenant engine",
                &label,
                t.queue_depth as f64,
            );
            reg.gauge_with(
                "tricount_host_tenant_epoch",
                "Current epoch per tenant engine",
                &label,
                t.epoch as f64,
            );
            reg.gauge_with(
                "tricount_host_tenant_epochs_live",
                "Live epoch snapshots per tenant engine",
                &label,
                t.epochs_live as f64,
            );
            reg.gauge_with(
                "tricount_host_tenant_readers_pinned",
                "Pinned readers per tenant engine",
                &label,
                t.readers_pinned as f64,
            );
            reg.gauge_with(
                "tricount_host_tenant_resident_triangles",
                "Resident triangle count per tenant engine",
                &label,
                t.resident_triangles as f64,
            );
        }
        reg.render()
    }

    fn push_job(&self, job: Job) {
        let mut jobs = self.inner.jobs.lock().expect("jobs lock");
        jobs.push_back(job);
        drop(jobs);
        self.inner.available.notify_one();
    }

    fn pop_job(&self) -> Option<Job> {
        self.inner.jobs.lock().expect("jobs lock").pop_front()
    }

    /// One serve worker: block for a job, run it, repeat until stopped.
    fn serve_loop(&self) {
        let inner = &self.inner;
        loop {
            let job = {
                let mut jobs = inner.jobs.lock().expect("jobs lock");
                loop {
                    if let Some(job) = jobs.pop_front() {
                        break Some(job);
                    }
                    if inner.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    jobs = inner.available.wait(jobs).expect("jobs lock");
                }
            };
            match job {
                Some(job) => self.run_job(job),
                None => return,
            }
        }
    }

    /// Executes one job. The engine handle is cloned out of the tenant
    /// map first, so ticking (or updating) holds no host lock — that is
    /// what lets two workers serve different jobs of the *same* tenant
    /// concurrently (one reading, one writing) without blocking reads.
    fn run_job(&self, job: Job) {
        let inner = &self.inner;
        match job {
            Job::Tick { tenant } => {
                let engine = {
                    let tenants = inner.tenants.lock().expect("tenants lock");
                    match tenants.get(&tenant) {
                        Some(t) => t.engine.clone(),
                        None => return,
                    }
                };
                let answers = engine.tick_pinned();
                let answered = answers.len() as u64;
                if answered > 0 {
                    let mut replies = inner.replies.lock().expect("replies lock");
                    for (ticket, epoch, result) in answers {
                        replies.push_back(HostReply::Answer {
                            tenant: tenant.clone(),
                            ticket,
                            epoch,
                            result,
                        });
                    }
                }
                let mut tenants = inner.tenants.lock().expect("tenants lock");
                if let Some(t) = tenants.get_mut(&tenant) {
                    t.answered += answered;
                    t.inflight = t.inflight.saturating_sub(answered);
                }
                drop(tenants);
                if answered > 0 {
                    // Saturate: a tick can answer tickets submitted
                    // directly on the tenant engine handle (never
                    // host-admitted), so a plain fetch_sub could wrap the
                    // counter and wedge admission at "overloaded" forever.
                    let _ = inner
                        .inflight
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                            Some(v.saturating_sub(answered))
                        });
                }
                // A batch bounded by batch_max may leave admitted queries
                // waiting: keep the tenant scheduled until its queue is dry.
                if engine.queue_depth() > 0 {
                    self.push_job(Job::Tick { tenant });
                }
            }
            Job::Update { tenant, batch } => {
                let engine = {
                    let tenants = inner.tenants.lock().expect("tenants lock");
                    match tenants.get(&tenant) {
                        Some(t) => t.engine.clone(),
                        None => return,
                    }
                };
                let result = engine.apply_updates(&batch).map_err(HostError::Engine);
                let result = match result {
                    Ok(r) => {
                        let mut tenants = inner.tenants.lock().expect("tenants lock");
                        if let Some(t) = tenants.get_mut(&tenant) {
                            t.updates += 1;
                        }
                        Ok(r)
                    }
                    Err(HostError::Engine(e)) => Err(e),
                    Err(_) => unreachable!("update errors are engine errors"),
                };
                inner
                    .replies
                    .lock()
                    .expect("replies lock")
                    .push_back(HostReply::Receipt { tenant, result });
            }
        }
    }
}

/// Joins the background serve loop started by [`EngineHost::serve`].
pub struct ServeHandle {
    host: EngineHost,
    threads: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Signals every worker to stop once the queue is observed empty and
    /// joins them. Jobs already dequeued finish; queued jobs may remain —
    /// call [`EngineHost::drain`] afterwards for a deterministic flush.
    pub fn stop(self) {
        self.host.inner.stop.store(true, Ordering::SeqCst);
        self.host.inner.available.notify_all();
        for t in self.threads {
            t.join().expect("serve worker panicked");
        }
    }
}

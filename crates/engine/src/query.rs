//! The typed query surface: requests, answers, errors, and the internal
//! cache keys queries normalise to.

use tricount_core::config::Algorithm;
use tricount_core::result::DistError;
use tricount_graph::VertexId;

/// Handle of a submitted query, returned by
/// [`Engine::submit`](crate::Engine::submit) and echoed with the answer by
/// [`Engine::tick`](crate::Engine::tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TicketId(pub u64);

/// A request against the resident graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Exact global triangle count under a specific algorithm variant.
    GlobalTriangles {
        /// The variant to execute (counts are identical across variants;
        /// the choice matters for the metered communication statistics).
        algorithm: Algorithm,
    },
    /// Local clustering coefficients of specific vertices.
    VertexLcc {
        /// Global vertex ids to answer for.
        vertices: Vec<VertexId>,
    },
    /// Edge support (`|N(a) ∩ N(b)|`, the edge's triangle count) for a
    /// batch of edges.
    EdgeSupport {
        /// Global endpoint pairs to answer for.
        edges: Vec<(VertexId, VertexId)>,
    },
    /// AMQ-approximate global triangle count.
    ApproxTriangles {
        /// Target relative error of the type-3 estimate; the engine sizes
        /// the Bloom sketch (bits per key) from it.
        max_rel_error: f64,
    },
}

impl Query {
    /// Short kind name for metrics and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::GlobalTriangles { .. } => "global",
            Query::VertexLcc { .. } => "lcc",
            Query::EdgeSupport { .. } => "support",
            Query::ApproxTriangles { .. } => "approx",
        }
    }
}

/// Answer to a [`Query`], in the same shape as the request.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Global triangle count.
    Count(u64),
    /// `(vertex, lcc)` pairs, in request order.
    Lcc(Vec<(VertexId, f64)>),
    /// `(edge, support)` pairs, in request order.
    Support(Vec<((VertexId, VertexId), u64)>),
    /// Approximate count.
    Approx {
        /// The truthful estimate (exact type-1/2 + corrected type-3).
        estimate: f64,
        /// Bits per neighborhood key the sketch used.
        bits_per_key: f64,
    },
}

/// Errors the engine reports per query or per submission.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Admission control rejected the submission: the queue is at capacity.
    /// Back off and resubmit; already queued queries are unaffected.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The distributed execution failed (deadlock watchdog, memory limit).
    Dist(DistError),
    /// A query referenced a vertex outside the resident graph.
    UnknownVertex {
        /// The offending global id.
        vertex: VertexId,
        /// Number of vertices in the resident graph.
        num_vertices: u64,
    },
}

impl From<DistError> for EngineError {
    fn from(e: DistError) -> Self {
        EngineError::Dist(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            EngineError::Dist(e) => write!(f, "distributed run failed: {e}"),
            EngineError::UnknownVertex {
                vertex,
                num_vertices,
            } => write!(f, "unknown vertex {vertex} (graph has {num_vertices})"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The unit of cached (and batched) work a query normalises to. Distinct
/// queries mapping to the same key share one execution: every `VertexLcc`
/// query needs the full per-vertex vector, so they all collapse onto
/// [`QueryKey::LccFull`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum QueryKey {
    /// Global count under the algorithm with this index in
    /// [`Algorithm::all`].
    Global(u8),
    /// The full per-vertex LCC vector.
    LccFull,
    /// Edge support for this exact edge batch.
    Support(Vec<(VertexId, VertexId)>),
    /// Approximate count with this many bits per key (an integer — the
    /// resolution the rel-error heuristic quantises to, which is what makes
    /// nearby error targets share cache entries).
    Approx(u32),
}

/// Index of `alg` in [`Algorithm::all`] (the `Ord`-able stand-in for the
/// algorithm in cache keys).
pub(crate) fn algorithm_index(alg: Algorithm) -> u8 {
    Algorithm::all()
        .iter()
        .position(|a| *a == alg)
        .expect("Algorithm::all is exhaustive") as u8
}

/// Sizes the Bloom sketch for a target relative error: with false-positive
/// rate `fpr ≈ 0.6185^bits_per_key` and the truthful estimator removing the
/// *expected* false positives, the residual relative error tracks the fpr —
/// so pick the smallest integer `b` with `0.6185^b ≤ max_rel_error`,
/// clamped to `[4, 24]`.
pub(crate) fn bits_for_rel_error(max_rel_error: f64) -> u32 {
    let e = max_rel_error.clamp(1.0e-8, 0.5);
    let b = (e.ln() / 0.6185f64.ln()).ceil();
    (b as u32).clamp(4, 24)
}

/// The result of one key's execution, stored in the epoch-keyed cache.
#[derive(Debug, Clone)]
pub(crate) enum CachedValue {
    /// Global count.
    Count(u64),
    /// Full LCC vector, indexed by global vertex id.
    LccFull(Vec<f64>),
    /// Supports in the key's edge order.
    Support(Vec<u64>),
    /// `(estimate, bits_per_key)`.
    Approx(f64, f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_index_roundtrips() {
        for (i, alg) in Algorithm::all().into_iter().enumerate() {
            assert_eq!(algorithm_index(alg) as usize, i);
        }
    }

    #[test]
    fn bits_heuristic_is_monotone_and_clamped() {
        assert_eq!(bits_for_rel_error(0.9), 4);
        assert_eq!(bits_for_rel_error(1.0e-12), 24);
        let mut last = 0;
        for e in [0.5, 0.1, 0.01, 0.001, 1.0e-6] {
            let b = bits_for_rel_error(e);
            assert!(b >= last, "smaller error must not shrink the sketch");
            last = b;
        }
    }
}

//! Concurrency check hooks: one call that turns the correctness tooling —
//! happens-before analysis (`tricount-verify`), protocol conformance, and
//! bounded schedule-space exploration (`tricount-mc`) — loose on a real
//! workload.
//!
//! This is what `tricount check` runs. The suite is deliberately layered:
//!
//! 1. **Trace analysis** — run the chosen algorithm traced and feed the
//!    recording through the happens-before analyzer and the conformance
//!    linter. One schedule, real workload, full protocol.
//! 2. **Pool exploration** — exhaustively interleave small work-stealing
//!    batches whose tasks do real intersection counting on the input
//!    graph, asserting bit-identical results and no deadlock on *every*
//!    schedule within the preemption bound.
//! 3. **Delivery exploration** — re-run an all-to-all exchange under every
//!    reachable message delivery order, watchdog-supervised.
//!
//! Layers 2 and 3 use small fixtures (pool width 2–3, p ≤ 4) because
//! exhaustiveness is the point: the schedule space must be walkable, and
//! the bugs these layers hunt — lock cycles, delivery-order dependence —
//! already manifest at minimal scale.

use std::time::Duration;

use tricount_comm::{Ctx, SimOptions};
use tricount_core::config::Algorithm;
use tricount_core::result::DistError;
use tricount_graph::dist::DistGraph;
use tricount_graph::Csr;
use tricount_mc::{explore_delivery, explore_pool, DeliveryReport, ExploreConfig, PoolReport};
use tricount_verify::{check_hb, check_trace, ConformanceReport, HbReport};

/// What [`check_concurrency`] should run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Simulated PEs for the traced run.
    pub p: usize,
    /// Algorithm variant for the traced run.
    pub algorithm: Algorithm,
    /// Pool widths to explore exhaustively.
    pub pool_widths: Vec<usize>,
    /// Exploration bounds for the pool layer.
    pub explore: ExploreConfig,
    /// Delivery-order schedule budget.
    pub delivery_schedules: usize,
}

impl CheckOptions {
    /// The default suite for `p` PEs and `algorithm`.
    pub fn new(p: usize, algorithm: Algorithm) -> CheckOptions {
        CheckOptions {
            p,
            algorithm,
            pool_widths: vec![2, 3],
            explore: ExploreConfig {
                // Width-3 spaces explode under deeper preemption bounds;
                // one preemption already covers every single-context-switch
                // bug (the PR 2 class included).
                max_preemptions: Some(1),
                max_schedules: 5_000,
                ..ExploreConfig::default()
            },
            delivery_schedules: 200,
        }
    }
}

/// The combined verdict of one [`check_concurrency`] run.
#[derive(Debug)]
pub struct CheckReport {
    /// Triangles counted by the traced run (sanity anchor).
    pub triangles: u64,
    /// Happens-before analysis of the traced run.
    pub hb: HbReport,
    /// Protocol conformance of the traced run.
    pub conformance: ConformanceReport,
    /// Per pool width, the exhaustive interleaving verdict.
    pub pool: Vec<(usize, PoolReport)>,
    /// The delivery-order exploration verdict.
    pub delivery: DeliveryReport,
}

impl CheckReport {
    /// Whether every layer came back clean.
    pub fn passed(&self) -> bool {
        self.hb.is_clean()
            && self.conformance.is_clean()
            && self.pool.iter().all(|(_, r)| r.passed())
            && self.delivery.passed()
    }
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.hb)?;
        write!(f, "{}", self.conformance)?;
        for (w, r) in &self.pool {
            writeln!(
                f,
                "pool width {w}: {} schedule(s): {}",
                r.schedules,
                match (&r.deadlock, &r.divergence, r.exhausted) {
                    (Some((s, reason)), _, _) => format!("DEADLOCK at schedule {s}: {reason:?}"),
                    (_, Some(d), _) => format!("DIVERGENCE: {d}"),
                    (None, None, true) => "exhaustive, bit-identical".to_string(),
                    (None, None, false) => "budget exhausted before the space was".to_string(),
                }
            )?;
        }
        writeln!(
            f,
            "delivery orders: {} schedule(s): {}",
            self.delivery.schedules,
            match (&self.delivery.deadlock, &self.delivery.divergence) {
                (Some((s, d)), _) => format!("DEADLOCK at schedule {s}:\n{d}"),
                (_, Some(d)) => format!("DIVERGENCE: {d}"),
                (None, None) => "bit-identical".to_string(),
            }
        )?;
        writeln!(
            f,
            "verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Triangles incident to `v` (ordered pairs of neighbours that are
/// themselves adjacent) — a real, pure intersection workload for the pool
/// exploration layer.
fn triangles_at(g: &Csr, v: u64) -> u64 {
    let adj = g.neighbors(v);
    let mut count = 0;
    for (i, &a) in adj.iter().enumerate() {
        for &b in &adj[i + 1..] {
            if g.neighbors(a).binary_search(&b).is_ok() {
                count += 1;
            }
        }
    }
    count
}

/// Runs the full concurrency suite on `g`. See the module docs for the
/// layers; the pool tasks do intersection counting on the first vertices
/// of `g` itself, so the explored computation is the algorithm's inner
/// kernel, not a toy.
pub fn check_concurrency(g: &Csr, opts: &CheckOptions) -> Result<CheckReport, DistError> {
    // Layer 1: one real traced run, analyzed.
    let dg = DistGraph::new_balanced_vertices(g, opts.p);
    let (res, trace) = tricount_core::dist::run_on(
        dg,
        opts.algorithm,
        &opts.algorithm.config(),
        &SimOptions::traced(),
    )?;
    let trace = trace.unwrap_or_default();
    let hb = check_hb(&trace);
    let conformance = check_trace(&trace);

    // Layer 2: exhaustive pool interleavings over real intersection tasks.
    let span = g.num_vertices().min(24);
    let mut pool = Vec::new();
    for &w in &opts.pool_widths {
        let chunk = (span / (2 * w as u64 + 1)).max(1);
        let report = explore_pool(
            w,
            || {
                (0..span)
                    .step_by(chunk as usize)
                    .map(|lo| (lo, (lo + chunk).min(span)))
                    .collect()
            },
            |_, (lo, hi)| (lo..hi).map(|v| triangles_at(g, v)).sum::<u64>(),
            &opts.explore,
        );
        pool.push((w, report));
    }

    // Layer 3: delivery orders of an all-to-all exchange.
    let dp = opts.p.clamp(1, 4);
    let delivery = explore_delivery(
        dp,
        |ctx: &mut Ctx| {
            let p = ctx.num_ranks();
            let me = ctx.rank();
            for to in 0..p {
                if to != me {
                    ctx.send_raw(to, vec![(me * 31 + to) as u64]);
                }
            }
            let mut acc = 0u64;
            let mut got = 0;
            while got < p - 1 {
                if let Some(m) = ctx.try_recv_raw() {
                    acc = acc.wrapping_add(m.words[0].wrapping_mul(m.src as u64 + 1));
                    got += 1;
                }
            }
            acc
        },
        opts.delivery_schedules,
        Duration::from_secs(5),
    );

    Ok(CheckReport {
        triangles: res.triangles,
        hb,
        conformance,
        pool,
        delivery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_passes_on_a_small_graph() {
        let g = tricount_gen::rgg2d_default(120, 11);
        let opts = CheckOptions::new(4, Algorithm::Cetric);
        let report = check_concurrency(&g, &opts).expect("run succeeds");
        assert!(report.passed(), "{report}");
        assert!(report.triangles > 0);
        assert!(report.pool.iter().all(|(_, r)| r.schedules > 1));
        assert!(report.delivery.schedules > 1);
    }
}

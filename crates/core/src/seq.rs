//! Sequential triangle counting: EDGEITERATOR (Algorithm 1) /
//! COMPACT-FORWARD, triangle enumeration, per-vertex counts and local
//! clustering coefficients. These serve three roles: the single-PE baseline,
//! the kernel run on CETRIC's expanded local graphs, and the ground truth
//! every distributed variant is tested against.

use tricount_graph::intersect::{merge_collect, merge_count};
use tricount_graph::ordering::{orient, OrderingKind};
use tricount_graph::{Csr, VertexId};

/// Result of a sequential count: triangles and metered work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqCount {
    /// Number of triangles.
    pub triangles: u64,
    /// Intersection candidate comparisons performed.
    pub ops: u64,
}

/// EDGEITERATOR (Algorithm 1): orients `g` by `kind` and sums
/// `|N_v⁺ ∩ N_u⁺|` over directed edges `(v, u)`. With
/// [`OrderingKind::Degree`] this is COMPACT-FORWARD.
pub fn edge_iterator(g: &Csr, kind: OrderingKind) -> SeqCount {
    let o = orient(g, kind);
    let mut triangles = 0u64;
    let mut ops = 0u64;
    for v in o.vertices() {
        let av = o.neighbors(v);
        for &u in av {
            let (c, w) = merge_count(av, o.neighbors(u));
            triangles += c;
            ops += w;
        }
    }
    SeqCount { triangles, ops }
}

/// COMPACT-FORWARD: EDGEITERATOR under the degree order (the paper's
/// sequential default).
pub fn compact_forward(g: &Csr) -> SeqCount {
    edge_iterator(g, OrderingKind::Degree)
}

/// Enumerates all triangles as `(v, u, w)` triples (each triangle exactly
/// once; vertices ordered by the chosen total order, reported by id).
pub fn enumerate_triangles(g: &Csr, kind: OrderingKind) -> Vec<(VertexId, VertexId, VertexId)> {
    let o = orient(g, kind);
    let mut out = Vec::new();
    let mut common = Vec::new();
    for v in o.vertices() {
        let av = o.neighbors(v);
        for &u in av {
            common.clear();
            merge_collect(av, o.neighbors(u), &mut common);
            for &w in &common {
                out.push((v, u, w));
            }
        }
    }
    out
}

/// Per-vertex triangle counts `Δ(v)` (each triangle contributes 1 to each of
/// its three corners).
pub fn per_vertex_counts(g: &Csr, kind: OrderingKind) -> Vec<u64> {
    let mut delta = vec![0u64; g.num_vertices() as usize];
    for (v, u, w) in enumerate_triangles(g, kind) {
        delta[v as usize] += 1;
        delta[u as usize] += 1;
        delta[w as usize] += 1;
    }
    delta
}

/// Local clustering coefficients `LCC(v) = Δ(v) / (d_v·(d_v−1)/2)` —
/// the fraction of closed wedges at `v`, normalised to `[0, 1]`
/// (0 for vertices of degree < 2).
pub fn local_clustering_coefficients(g: &Csr, kind: OrderingKind) -> Vec<f64> {
    let delta = per_vertex_counts(g, kind);
    g.vertices()
        .map(|v| {
            let d = g.degree(v);
            if d < 2 {
                0.0
            } else {
                delta[v as usize] as f64 / (d * (d - 1) / 2) as f64
            }
        })
        .collect()
}

/// COMPACT-FORWARD over a compressed graph: orientation and counting happen
/// on streaming varint-decoded neighborhoods (the compressed-graph
/// processing of Dhulipala et al. that §III-A1 cites). Several-fold smaller
/// working set on id-local graphs, at extra decode work per comparison.
pub fn compact_forward_compressed(g: &tricount_graph::compressed::CompressedCsr) -> SeqCount {
    use tricount_graph::compressed::{merge_count_iter, CompressedCsr};
    // orient by (degree, id) with streaming filters
    let degs: Vec<u64> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
    let key = |v: VertexId| (degs[v as usize], v);
    let oriented: Vec<Vec<VertexId>> = (0..g.num_vertices())
        .map(|v| g.neighbors(v).filter(|&u| key(u) > key(v)).collect())
        .collect();
    let oriented = CompressedCsr::from_csr(&Csr::from_neighbor_lists(oriented));
    let mut triangles = 0u64;
    let mut ops = 0u64;
    for v in 0..oriented.num_vertices() {
        for u in oriented.neighbors(v) {
            let (c, w) = merge_count_iter(oriented.neighbors(v), oriented.neighbors(u));
            triangles += c;
            ops += w;
        }
    }
    SeqCount { triangles, ops }
}

/// Reference O(n³)-ish brute force over vertex triples restricted to
/// neighborhoods; for tests only.
pub fn brute_force_count(g: &Csr) -> u64 {
    let mut t = 0u64;
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            if u <= v {
                continue;
            }
            for &w in g.neighbors(u) {
                if w > u && g.has_edge(v, w) {
                    t += 1;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricount_graph::EdgeList;

    fn graph(edges: &[(u64, u64)], n: u64) -> Csr {
        let mut el = EdgeList::from_pairs(edges.to_vec());
        el.canonicalize();
        Csr::from_edges(n, &el)
    }

    fn k4() -> Csr {
        graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4)
    }

    #[test]
    fn counts_on_small_graphs() {
        assert_eq!(compact_forward(&k4()).triangles, 4);
        let tri = graph(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(compact_forward(&tri).triangles, 1);
        let path = graph(&[(0, 1), (1, 2), (2, 3)], 4);
        assert_eq!(compact_forward(&path).triangles, 0);
        let empty = graph(&[], 0);
        assert_eq!(compact_forward(&empty).triangles, 0);
    }

    #[test]
    fn orderings_agree() {
        let g = k4();
        assert_eq!(
            edge_iterator(&g, OrderingKind::Degree).triangles,
            edge_iterator(&g, OrderingKind::Id).triangles
        );
    }

    #[test]
    fn matches_brute_force() {
        let g = graph(
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (0, 5),
            ],
            6,
        );
        assert_eq!(compact_forward(&g).triangles, brute_force_count(&g));
    }

    #[test]
    fn enumeration_is_unique_and_complete() {
        let g = k4();
        let mut tris: Vec<[u64; 3]> = enumerate_triangles(&g, OrderingKind::Degree)
            .into_iter()
            .map(|(a, b, c)| {
                let mut t = [a, b, c];
                t.sort_unstable();
                t
            })
            .collect();
        tris.sort_unstable();
        let before = tris.len();
        tris.dedup();
        assert_eq!(before, tris.len(), "duplicate triangles enumerated");
        assert_eq!(tris.len(), 4);
        for t in &tris {
            assert!(g.has_edge(t[0], t[1]) && g.has_edge(t[1], t[2]) && g.has_edge(t[0], t[2]));
        }
    }

    #[test]
    fn per_vertex_counts_sum_to_three_t() {
        let g = k4();
        let delta = per_vertex_counts(&g, OrderingKind::Degree);
        assert_eq!(delta.iter().sum::<u64>(), 3 * 4);
        assert!(delta.iter().all(|&d| d == 3)); // K4: every vertex in 3 triangles
    }

    #[test]
    fn lcc_values() {
        // K4: every wedge closed → LCC 1 everywhere
        let lcc = local_clustering_coefficients(&k4(), OrderingKind::Degree);
        assert!(lcc.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        // path: no triangles → 0 everywhere
        let path = graph(&[(0, 1), (1, 2)], 3);
        let lcc = local_clustering_coefficients(&path, OrderingKind::Degree);
        assert!(lcc.iter().all(|&x| x == 0.0));
        // triangle + pendant: center vertex has d=3, Δ=1 → 1/3
        let g = graph(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let lcc = local_clustering_coefficients(&g, OrderingKind::Degree);
        assert!((lcc[2] - 1.0 / 3.0).abs() < 1e-12, "{lcc:?}");
        assert_eq!(lcc[3], 0.0);
    }

    #[test]
    fn compressed_counting_matches_plain() {
        use tricount_graph::compressed::CompressedCsr;
        for g in [
            k4(),
            graph(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)], 5),
            tricount_gen::rgg2d_default(400, 5),
            tricount_gen::rmat_default(8, 2),
        ] {
            let want = compact_forward(&g).triangles;
            let c = CompressedCsr::from_csr(&g);
            assert_eq!(compact_forward_compressed(&c).triangles, want);
        }
    }

    #[test]
    fn degree_order_does_less_work_on_stars() {
        // star + rim: degree orientation points rim→center, bounding hub
        // out-degree
        let mut edges: Vec<(u64, u64)> = (1..=30).map(|i| (0u64, i)).collect();
        edges.extend((1..30).map(|i| (i, i + 1)));
        let g = graph(&edges, 31);
        let deg = edge_iterator(&g, OrderingKind::Degree);
        let id = edge_iterator(&g, OrderingKind::Id);
        assert_eq!(deg.triangles, id.triangles);
        assert!(deg.ops <= id.ops, "degree {} vs id {}", deg.ops, id.ops);
    }
}

//! Algorithm variants and their configuration knobs.
//!
//! The paper evaluates five of its own variants plus two competitors; all
//! are expressible as settings of [`DistConfig`] (plus the contraction that
//! distinguishes CETRIC from DITRIC, selected via [`Algorithm`]).

use tricount_cache::CacheConfig;
use tricount_comm::{Routing, TransportKind};
use tricount_graph::kernels::KernelPolicy;
use tricount_graph::OrderingKind;

/// Message-aggregation policy of the buffered queue (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// No aggregation: every neighborhood/message is sent immediately
    /// (the Fig. 2 baseline).
    None,
    /// Dynamic buffering with flush threshold `δ = max(64,
    /// factor·|E_i|)` words — DITRIC's linear-memory scheme.
    Dynamic {
        /// δ as a fraction of the local input size `|E_i|`.
        delta_factor: f64,
    },
    /// Static buffering: everything is aggregated up front and sent in one
    /// batch (TriC's scheme; memory grows with the total outgoing volume).
    Static,
}

/// How the ghost degree exchange of the preprocessing phase is realised
/// (paper §IV-D): a *dense* all-to-all is simple and robust under skew; a
/// *sparse* (request/response through the buffered queue) exchange pays off
/// when each PE has few communication partners but "may perform worse than a
/// dense degree exchange" on skewed degree distributions — which is why the
/// paper's evaluation uses the dense one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreeExchange {
    /// Dense irregular all-to-all (the paper's choice).
    #[default]
    Dense,
    /// Sparse asynchronous request/response via the message queue
    /// (Hoefler & Träff-style sparse collective).
    Sparse,
}

/// Configuration shared by the distributed algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistConfig {
    /// Total order used to orient the graph.
    pub ordering: OrderingKind,
    /// Aggregation policy.
    pub aggregation: Aggregation,
    /// Direct or grid-indirect message delivery (§IV-B).
    pub routing: Routing,
    /// Surrogate deduplication (Arifuzzaman et al.): send each neighborhood
    /// at most once per destination PE.
    pub dedup: bool,
    /// Ghost degree exchange flavour (§IV-D).
    pub degree_exchange: DegreeExchange,
    /// Vertex-delegate threshold for the HavoqGT-like baseline (Pearce et
    /// al.: "partition the neighborhoods of high-degree vertices among
    /// multiple PEs"): oriented neighborhoods larger than this are broadcast
    /// to delegate PEs which generate the wedge visitors in parallel,
    /// flattening the wedge-generation hotspot. `None` = no delegation.
    pub delegate_threshold: Option<u64>,
    /// Per-PE memory limit in buffered words (`None` = unlimited). Runs
    /// whose buffers would exceed it fail with
    /// [`DistError::OutOfMemory`](crate::result::DistError::OutOfMemory),
    /// reproducing the TriC crashes the paper reports.
    pub memory_limit_words: Option<u64>,
    /// Intersection-kernel selection and intra-PE parallelism policy
    /// (adaptive dispatch, hub index threshold, chunked counting).
    pub kernels: KernelPolicy,
    /// Which data plane carries the run's communication:
    /// [`TransportKind::Sim`] (default) is the metered simulator,
    /// [`TransportKind::Threads`] executes the same protocol in real
    /// parallel over shared memory. Counts and comm meters are identical on
    /// both; the threads backend additionally yields honest per-phase wall
    /// clock. Explicit `SimOptions.transport` overrides this field.
    pub transport: TransportKind,
    /// Remote-adjacency caching (`tricount-cache`): bounded per-PE caching
    /// of shipped lists, consulted by the count/LCC/support/delta
    /// request–response paths and kept coherent by `update_route`.
    /// Disabled by default; when disabled, runs are bit-identical to a
    /// build without the cache subsystem.
    pub cache: CacheConfig,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            ordering: OrderingKind::Degree,
            aggregation: Aggregation::Dynamic { delta_factor: 0.25 },
            routing: Routing::Direct,
            dedup: true,
            degree_exchange: DegreeExchange::Dense,
            delegate_threshold: None,
            memory_limit_words: None,
            kernels: KernelPolicy::default(),
            transport: TransportKind::Sim,
            cache: CacheConfig::default(),
        }
    }
}

impl DistConfig {
    /// Resolves the queue flush threshold for a PE with `local_entries`
    /// adjacency words. `None` means "never auto-flush" (static).
    pub fn resolve_delta(&self, local_entries: u64) -> Option<usize> {
        match self.aggregation {
            Aggregation::None => Some(0),
            Aggregation::Dynamic { delta_factor } => {
                Some(((local_entries as f64 * delta_factor) as usize).max(64))
            }
            Aggregation::Static => None,
        }
    }
}

/// The algorithm variants of the paper's evaluation (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Distributed EDGEITERATOR without aggregation or dedup — the
    /// "no aggregation" baseline of Fig. 2.
    Unaggregated,
    /// DITRIC: dynamic aggregation, direct delivery.
    Ditric,
    /// DITRIC²: DITRIC + grid-indirect delivery.
    Ditric2,
    /// CETRIC: DITRIC + locality exploitation (expanded local graph +
    /// contraction, §IV-C).
    Cetric,
    /// CETRIC²: CETRIC + grid-indirect delivery.
    Cetric2,
    /// TriC-like competitor: no orientation, static single-batch
    /// aggregation.
    TricLike,
    /// HavoqGT-like competitor: vertex-centric wedge visitors with
    /// aggregation and rerouting.
    HavoqgtLike,
}

impl Algorithm {
    /// The paper's own variants (Fig. 5/6 legend order).
    pub fn ours() -> [Algorithm; 4] {
        [
            Algorithm::Ditric,
            Algorithm::Ditric2,
            Algorithm::Cetric,
            Algorithm::Cetric2,
        ]
    }

    /// Everything compared in the scaling plots.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::Unaggregated,
            Algorithm::Ditric,
            Algorithm::Ditric2,
            Algorithm::Cetric,
            Algorithm::Cetric2,
            Algorithm::TricLike,
            Algorithm::HavoqgtLike,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Unaggregated => "EdgeIterator-unagg",
            Algorithm::Ditric => "DITRIC",
            Algorithm::Ditric2 => "DITRIC2",
            Algorithm::Cetric => "CETRIC",
            Algorithm::Cetric2 => "CETRIC2",
            Algorithm::TricLike => "TriC-like",
            Algorithm::HavoqgtLike => "HavoqGT-like",
        }
    }

    /// Whether this variant runs the CETRIC contraction pipeline.
    pub fn uses_contraction(self) -> bool {
        matches!(self, Algorithm::Cetric | Algorithm::Cetric2)
    }

    /// The default configuration realising this variant.
    pub fn config(self) -> DistConfig {
        let base = DistConfig::default();
        match self {
            Algorithm::Unaggregated => DistConfig {
                aggregation: Aggregation::None,
                dedup: false,
                ..base
            },
            Algorithm::Ditric | Algorithm::Cetric => base,
            Algorithm::Ditric2 | Algorithm::Cetric2 => DistConfig {
                routing: Routing::Grid,
                ..base
            },
            Algorithm::TricLike => DistConfig {
                ordering: OrderingKind::Id,
                aggregation: Aggregation::Static,
                dedup: false,
                ..base
            },
            Algorithm::HavoqgtLike => DistConfig {
                routing: Routing::Grid,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_resolution() {
        let cfg = DistConfig {
            aggregation: Aggregation::Dynamic { delta_factor: 0.5 },
            ..DistConfig::default()
        };
        assert_eq!(cfg.resolve_delta(1000), Some(500));
        assert_eq!(cfg.resolve_delta(10), Some(64)); // floor
        let none = DistConfig {
            aggregation: Aggregation::None,
            ..DistConfig::default()
        };
        assert_eq!(none.resolve_delta(1000), Some(0));
        let st = DistConfig {
            aggregation: Aggregation::Static,
            ..DistConfig::default()
        };
        assert_eq!(st.resolve_delta(1000), None);
    }

    #[test]
    fn presets_match_paper_variants() {
        assert_eq!(Algorithm::Ditric2.config().routing, Routing::Grid);
        assert_eq!(Algorithm::Ditric.config().routing, Routing::Direct);
        assert!(Algorithm::Cetric.uses_contraction());
        assert!(!Algorithm::Ditric.uses_contraction());
        assert_eq!(
            Algorithm::TricLike.config().aggregation,
            Aggregation::Static
        );
        assert!(!Algorithm::Unaggregated.config().dedup);
        assert_eq!(Algorithm::all().len(), 7);
    }
}

//! Result and error types of the distributed runs.

use tricount_comm::{CostModel, DeadlockReport, RunStats};

/// Errors a distributed run can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A PE's aggregation buffers would exceed the configured memory limit
    /// (the failure mode the paper observes for TriC on skewed inputs).
    OutOfMemory {
        /// Words the most loaded PE would need to buffer.
        needed_words: u64,
        /// The configured limit.
        limit_words: u64,
    },
    /// The deadlock watchdog diagnosed a stalled run
    /// ([`tricount_comm::run_guarded`]): no PE made progress for the guard
    /// timeout. Instead of hanging, the run is abandoned and the watchdog's
    /// per-PE state dump plus wait-for graph are carried here.
    Deadlock {
        /// Rendered [`DeadlockReport`]: per-PE op/buffer/delivery state and
        /// the wait-for edges.
        report: String,
    },
}

impl DistError {
    /// Wraps a watchdog diagnosis as a [`DistError::Deadlock`].
    pub fn from_deadlock(report: &DeadlockReport) -> DistError {
        DistError::Deadlock {
            report: report.to_string(),
        }
    }
}

impl From<Box<DeadlockReport>> for DistError {
    fn from(report: Box<DeadlockReport>) -> Self {
        DistError::from_deadlock(&report)
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::OutOfMemory {
                needed_words,
                limit_words,
            } => write!(
                f,
                "out of memory: needs {needed_words} buffered words, limit {limit_words}"
            ),
            DistError::Deadlock { report } => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Outcome of a distributed triangle count.
#[derive(Debug, Clone)]
pub struct CountResult {
    /// Global number of triangles.
    pub triangles: u64,
    /// Full per-phase, per-rank execution statistics.
    pub stats: RunStats,
}

impl CountResult {
    /// Modeled running time under `cost`.
    pub fn modeled_time(&self, cost: &CostModel) -> f64 {
        self.stats.modeled_time(cost)
    }
}

/// Outcome of a distributed per-vertex count / LCC computation.
#[derive(Debug, Clone)]
pub struct LccResult {
    /// Global number of triangles.
    pub triangles: u64,
    /// Per-vertex triangle counts `Δ(v)`, indexed by global vertex id.
    pub per_vertex: Vec<u64>,
    /// Local clustering coefficients, indexed by global vertex id.
    pub lcc: Vec<f64>,
    /// Execution statistics.
    pub stats: RunStats,
}

/// Outcome of the AMQ-approximate count (§IV-E).
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// Exactly counted type-1 + type-2 triangles.
    pub exact_local: u64,
    /// Raw (overestimating) type-3 count: positive AMQ queries.
    pub type3_raw: u64,
    /// Truthful type-3 estimate after false-positive correction.
    pub type3_corrected: f64,
    /// Total estimate (`exact_local + type3_corrected`).
    pub estimate: f64,
    /// Execution statistics.
    pub stats: RunStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_variant_renders_report() {
        let e = DistError::Deadlock {
            report: "deadlock: no progress for 1s on 2 PEs\n  wait-for: 1→0\n".into(),
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("wait-for"));
    }
}

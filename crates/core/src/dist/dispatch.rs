//! Per-phase kernel-dispatch reporting for the `_stats` counting variants.
//!
//! The adaptive kernel layer (`tricount_graph::kernels`) tallies which
//! intersection kernel served each call site. Those tallies are *not* part
//! of the communication [`Counters`](tricount_comm::Counters) — they change
//! with the [`KernelPolicy`](tricount_graph::kernels::KernelPolicy) while
//! comm counters must not — so the counting paths expose them through
//! `_stats` twins (`count_prepared_stats`, `lcc_prepared_stats`,
//! `run_rank_stats`, `edge_support_rank_stats`) returning a
//! [`DispatchReport`] per rank, folded here in canonical (phase, rank)
//! order so every aggregate is schedule-independent.

use tricount_graph::kernels::KernelCounters;

/// Kernel-dispatch tallies grouped by counting phase, in the order the
/// phases ran. Phase names come from [`super::phases`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchReport {
    /// `(phase name, tallies)` in first-seen phase order.
    pub phases: Vec<(&'static str, KernelCounters)>,
}

impl DispatchReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// A report with a single phase entry.
    pub fn of(phase: &'static str, counters: KernelCounters) -> Self {
        let mut r = Self::default();
        r.add(phase, counters);
        r
    }

    /// Folds `counters` into the entry for `phase` (appending the phase if
    /// unseen).
    pub fn add(&mut self, phase: &'static str, counters: KernelCounters) {
        if let Some((_, c)) = self.phases.iter_mut().find(|(p, _)| *p == phase) {
            c.absorb(&counters);
        } else {
            self.phases.push((phase, counters));
        }
    }

    /// Folds another report into this one, phase by phase.
    pub fn absorb(&mut self, other: &DispatchReport) {
        for (phase, counters) in &other.phases {
            self.add(phase, *counters);
        }
    }

    /// Tallies summed over all phases.
    pub fn total(&self) -> KernelCounters {
        let mut t = KernelCounters::default();
        for (_, c) in &self.phases {
            t.absorb(c);
        }
        t
    }

    /// True when no dispatch was recorded.
    pub fn is_empty(&self) -> bool {
        self.total().total() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(merge: u64, gallop: u64) -> KernelCounters {
        KernelCounters {
            merge,
            gallop,
            ..KernelCounters::default()
        }
    }

    #[test]
    fn add_folds_by_phase_name() {
        let mut r = DispatchReport::new();
        r.add("local", c(1, 0));
        r.add("global", c(0, 2));
        r.add("local", c(3, 1));
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0], ("local", c(4, 1)));
        assert_eq!(r.total(), c(4, 3));
    }

    #[test]
    fn absorb_merges_reports() {
        let mut a = DispatchReport::of("local", c(1, 1));
        let b = DispatchReport::of("global", c(2, 0));
        a.absorb(&b);
        a.absorb(&DispatchReport::of("local", c(1, 0)));
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.total().total(), 5);
        assert!(!a.is_empty());
        assert!(DispatchReport::new().is_empty());
    }
}

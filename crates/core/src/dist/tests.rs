//! Cross-variant correctness tests: every distributed algorithm must agree
//! with the sequential ground truth on every graph family and PE count.

use tricount_gen::{gnm, rgg2d_default, rhg_default, rmat_default, road_default, Dataset};
use tricount_graph::{Csr, DistGraph, EdgeList};

use crate::config::{Aggregation, Algorithm, DistConfig};
use crate::dist::{approx, count, count_with, hybrid, lcc};
use crate::seq;

fn graph(edges: &[(u64, u64)], n: u64) -> Csr {
    let mut el = EdgeList::from_pairs(edges.to_vec());
    el.canonicalize();
    Csr::from_edges(n, &el)
}

fn check_all_algorithms(g: &Csr, ps: &[usize]) {
    let truth = seq::compact_forward(g).triangles;
    assert_eq!(truth, seq::brute_force_count(g), "sequential self-check");
    for &p in ps {
        for alg in Algorithm::all() {
            let r = count(g, p, alg).unwrap_or_else(|e| panic!("{alg:?} p={p}: {e}"));
            assert_eq!(
                r.triangles,
                truth,
                "{} with p={p} (n={} m={})",
                alg.name(),
                g.num_vertices(),
                g.num_edges()
            );
        }
    }
}

#[test]
fn tiny_graphs_all_algorithms() {
    // triangle, K4, triangle+tail, two disjoint triangles spanning PEs
    check_all_algorithms(&graph(&[(0, 1), (1, 2), (0, 2)], 3), &[1, 2, 3]);
    check_all_algorithms(
        &graph(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4),
        &[1, 2, 4],
    );
    check_all_algorithms(
        &graph(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], 6),
        &[2, 3, 6],
    );
}

#[test]
fn type3_only_graph() {
    // a triangle whose corners land on three different PEs of a 3-way
    // partition of 0..6: vertices 0, 2, 4
    let g = graph(&[(0, 2), (2, 4), (0, 4)], 6);
    check_all_algorithms(&g, &[3]);
}

#[test]
fn triangle_free_graph() {
    let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)], 6);
    check_all_algorithms(&g, &[1, 2, 4]);
}

#[test]
fn gnm_all_algorithms_various_p() {
    let g = gnm(200, 1200, 42);
    check_all_algorithms(&g, &[1, 2, 3, 5, 8]);
}

#[test]
fn rmat_skewed_all_algorithms() {
    let g = rmat_default(9, 7); // 512 vertices, hubs
    check_all_algorithms(&g, &[4, 7]);
}

#[test]
fn rgg_local_heavy_all_algorithms() {
    let g = rgg2d_default(400, 3);
    check_all_algorithms(&g, &[4, 6]);
}

#[test]
fn rhg_all_algorithms() {
    let g = rhg_default(400, 5);
    check_all_algorithms(&g, &[3, 8]);
}

#[test]
fn road_all_algorithms() {
    let g = road_default(400, 1);
    check_all_algorithms(&g, &[4]);
}

#[test]
fn dataset_proxies_count_correctly() {
    for ds in Dataset::all() {
        let g = ds.generate(256, 11);
        let truth = seq::compact_forward(&g).triangles;
        for alg in [Algorithm::Ditric, Algorithm::Cetric2] {
            let r = count(&g, 4, alg).unwrap();
            assert_eq!(r.triangles, truth, "{ds:?} {alg:?}");
        }
    }
}

#[test]
fn p_larger_than_n() {
    let g = graph(&[(0, 1), (1, 2), (0, 2)], 3);
    for alg in [Algorithm::Ditric, Algorithm::Cetric, Algorithm::TricLike] {
        let r = count(&g, 6, alg).unwrap();
        assert_eq!(r.triangles, 1, "{alg:?}");
    }
}

#[test]
fn edge_balanced_partition_also_correct() {
    let g = rmat_default(8, 3);
    let truth = seq::compact_forward(&g).triangles;
    for alg in [Algorithm::Ditric, Algorithm::Cetric] {
        let dg = DistGraph::new_balanced_edges(&g, 5);
        let r = crate::dist::run_on_default(dg, alg, &alg.config()).unwrap();
        assert_eq!(r.triangles, truth, "{alg:?}");
    }
}

#[test]
fn tric_like_oom_reproduction() {
    // on a skewed graph with a tiny memory cap, the static-buffer baseline
    // must fail with OutOfMemory while DITRIC (dynamic, linear memory) works
    let g = rmat_default(9, 2);
    let cfg = DistConfig {
        memory_limit_words: Some(500),
        ..Algorithm::TricLike.config()
    };
    let err = count_with(&g, 8, Algorithm::TricLike, &cfg).unwrap_err();
    match err {
        crate::result::DistError::OutOfMemory {
            needed_words,
            limit_words,
        } => {
            assert!(needed_words > limit_words);
        }
        other => panic!("expected OutOfMemory, got {other}"),
    }
    let ok = count(&g, 8, Algorithm::Ditric).unwrap();
    assert_eq!(ok.triangles, seq::compact_forward(&g).triangles);
}

#[test]
fn ditric_memory_stays_linear() {
    let g = gnm(256, 2048, 9);
    let cfg = DistConfig {
        aggregation: Aggregation::Dynamic { delta_factor: 0.25 },
        ..DistConfig::default()
    };
    let r = count_with(&g, 8, Algorithm::Ditric, &cfg).unwrap();
    // per-PE peak buffer ≤ δ + one record; δ = max(64, |E_i|/4);
    // |E_i| ≈ 2m/p = 512 words → δ ≈ 128; a record can be ~A(v)+2
    let max_entries = (0..8)
        .map(|r| {
            DistGraph::new_balanced_vertices(&g, 8)
                .local(r)
                .num_local_entries()
        })
        .max()
        .unwrap();
    let bound = (max_entries / 4).max(64) + 2 + 64;
    assert!(
        r.stats.max_peak_buffered() <= bound,
        "peak {} > bound {}",
        r.stats.max_peak_buffered(),
        bound
    );
}

#[test]
fn static_aggregation_buffers_superlinearly_vs_dynamic() {
    let g = rmat_default(9, 5);
    let dyn_r = count(&g, 8, Algorithm::Ditric).unwrap();
    let static_r = count(&g, 8, Algorithm::TricLike).unwrap();
    assert!(
        static_r.stats.max_peak_buffered() > 4 * dyn_r.stats.max_peak_buffered(),
        "static {} vs dynamic {}",
        static_r.stats.max_peak_buffered(),
        dyn_r.stats.max_peak_buffered()
    );
}

#[test]
fn aggregation_reduces_messages() {
    let g = gnm(300, 3000, 4);
    let unagg = count(&g, 6, Algorithm::Unaggregated).unwrap();
    let agg = count(&g, 6, Algorithm::Ditric).unwrap();
    assert!(
        agg.stats.total_messages() * 4 < unagg.stats.total_messages(),
        "agg {} vs unagg {}",
        agg.stats.total_messages(),
        unagg.stats.total_messages()
    );
}

#[test]
fn contraction_reduces_global_volume_on_local_graphs() {
    // RGG with locality: CETRIC's global phase must move far fewer words
    // than DITRIC's
    let g = rgg2d_default(2000, 8);
    let d = count(&g, 4, Algorithm::Ditric).unwrap();
    let c = count(&g, 4, Algorithm::Cetric).unwrap();
    let dv: u64 = d
        .stats
        .phases
        .iter()
        .filter(|ph| ph.name == "global")
        .map(|ph| ph.total_volume())
        .sum();
    let cv: u64 = c
        .stats
        .phases
        .iter()
        .filter(|ph| ph.name == "global")
        .map(|ph| ph.total_volume())
        .sum();
    assert!(cv < dv, "CETRIC global volume {cv} !< DITRIC {dv}");
}

#[test]
fn indirect_routing_still_correct_and_bounds_fanout() {
    let g = rmat_default(8, 1);
    let truth = seq::compact_forward(&g).triangles;
    let r2 = count(&g, 16, Algorithm::Ditric2).unwrap();
    assert_eq!(r2.triangles, truth);
    let r1 = count(&g, 16, Algorithm::Ditric).unwrap();
    // grid routing may double volume but not more
    assert!(r2.stats.total_volume() <= 2 * r1.stats.total_volume() + 1000);
}

#[test]
fn phase_names_match_figure7() {
    let g = gnm(128, 512, 2);
    let r = count(&g, 4, Algorithm::Cetric).unwrap();
    let names: Vec<&str> = r.stats.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, vec!["preprocessing", "local", "global"]);
}

#[test]
fn lcc_matches_sequential() {
    for (g, p) in [
        (gnm(150, 900, 3), 4usize),
        (rmat_default(8, 9), 5),
        (rgg2d_default(300, 2), 3),
    ] {
        let truth_delta = seq::per_vertex_counts(&g, tricount_graph::OrderingKind::Degree);
        let truth_lcc =
            seq::local_clustering_coefficients(&g, tricount_graph::OrderingKind::Degree);
        let r = lcc::lcc(&g, p, &DistConfig::default());
        assert_eq!(r.per_vertex, truth_delta);
        for (a, b) in r.lcc.iter().zip(&truth_lcc) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(r.triangles, seq::compact_forward(&g).triangles);
    }
}

#[test]
fn approx_estimates_within_tolerance() {
    let g = gnm(300, 3600, 8);
    let truth = seq::compact_forward(&g).triangles as f64;
    for filter in [approx::FilterKind::Bloom, approx::FilterKind::SingleShot] {
        let r = approx::approx(
            &g,
            6,
            &DistConfig::default(),
            &approx::ApproxConfig {
                bits_per_key: 12.0,
                filter,
            },
        );
        // type-1/2 exact, type-3 approximated: total within 10%
        let rel = (r.estimate - truth).abs() / truth.max(1.0);
        assert!(
            rel < 0.10,
            "{filter:?}: estimate {} truth {truth}",
            r.estimate
        );
        // raw count never underestimates type-3 (no false negatives)
        assert!(r.exact_local as f64 + r.type3_raw as f64 >= truth);
    }
}

#[test]
fn approx_volume_below_exact_for_large_neighborhoods() {
    // approximate global phase should move fewer words than exact CETRIC
    // when contracted neighborhoods are sizable
    let g = gnm(400, 8000, 10);
    let exact = count(&g, 4, Algorithm::Cetric).unwrap();
    let apx = approx::approx(
        &g,
        4,
        &DistConfig::default(),
        &approx::ApproxConfig {
            bits_per_key: 4.0,
            filter: approx::FilterKind::SingleShot,
        },
    );
    let ev: u64 = exact
        .stats
        .phases
        .iter()
        .filter(|ph| ph.name == "global")
        .map(|ph| ph.total_volume())
        .sum();
    let av: u64 = apx
        .stats
        .phases
        .iter()
        .filter(|ph| ph.name == "global")
        .map(|ph| ph.total_volume())
        .sum();
    assert!(av < ev, "approx volume {av} !< exact {ev}");
}

#[test]
fn hybrid_counts_correctly_and_cuts_volume() {
    let g = rgg2d_default(1500, 4);
    let truth = seq::compact_forward(&g).triangles;
    let cfg = DistConfig::default();
    let flat = hybrid::count_hybrid(&g, 8, 1, &cfg);
    let hy = hybrid::count_hybrid(&g, 8, 4, &cfg);
    assert_eq!(flat.triangles, truth);
    assert_eq!(hy.triangles, truth);
    // fewer ranks (2 instead of 8) → smaller cut → less communication
    assert!(
        hy.stats.total_volume() < flat.stats.total_volume(),
        "hybrid {} !< flat {}",
        hy.stats.total_volume(),
        flat.stats.total_volume()
    );
}

#[test]
fn timed_runs_produce_overlap_aware_makespans() {
    use tricount_comm::CostModel;
    let g = gnm(400, 4800, 21);
    let cost = CostModel::supermuc();
    for alg in [Algorithm::Ditric, Algorithm::Cetric2] {
        let dg = DistGraph::new_balanced_vertices(&g, 6);
        let r = crate::dist::run_on_timed(dg, alg, &alg.config(), cost).unwrap();
        assert_eq!(r.triangles, seq::compact_forward(&g).triangles, "{alg:?}");
        let makespan = r.stats.makespan();
        let modeled = r.stats.modeled_time(&cost);
        assert!(makespan > 0.0, "{alg:?}: timed run must advance the clock");
        // the causal clock and the phase-max bound agree within an order of
        // magnitude: overlap can shrink the makespan below the bound, while
        // cross-rank arrival chains (which the per-rank bound cannot see)
        // can stretch it above
        assert!(
            makespan < 10.0 * modeled && modeled < 10.0 * makespan,
            "{alg:?}: makespan {makespan} vs modeled {modeled}"
        );
        // untimed runs leave the clock at zero
        let untimed = count(&g, 6, alg).unwrap();
        assert_eq!(untimed.stats.makespan(), 0.0);
    }
}

#[test]
fn timed_runs_are_deterministic_in_counters_not_clock_order() {
    use tricount_comm::CostModel;
    let g = rgg2d_default(500, 4);
    let cost = CostModel::cloud();
    let mk = || {
        let dg = DistGraph::new_balanced_vertices(&g, 4);
        crate::dist::run_on_timed(dg, Algorithm::Ditric, &Algorithm::Ditric.config(), cost).unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.triangles, b.triangles);
    assert_eq!(a.stats.total_volume(), b.stats.total_volume());
    // makespans may differ slightly through flush-timing races, but stay
    // within a tight band
    let (ma, mb) = (a.stats.makespan(), b.stats.makespan());
    assert!((ma - mb).abs() / ma.max(mb) < 0.2, "{ma} vs {mb}");
}

#[test]
fn golden_trace_on_fixed_graph() {
    // Locks the exact protocol behaviour on the Fig.-1-style example (two
    // triangles, two cut edges, p = 2). Any change to message framing,
    // dedup, orientation or the degree exchange shows up here first.
    let g = graph(
        &[
            (0, 1),
            (0, 2),
            (1, 2),
            (3, 4),
            (3, 5),
            (4, 5),
            (2, 3),
            (1, 4),
        ],
        6,
    );
    let d = count(&g, 2, Algorithm::Ditric).unwrap();
    assert_eq!(d.triangles, 2);
    // preprocessing: 2 request + 2 response messages of 2 ghost ids/degrees
    let pre = &d.stats.phases[0];
    assert_eq!(pre.name, "preprocessing");
    assert_eq!(pre.per_rank.iter().map(|c| c.sent_messages).sum::<u64>(), 4);
    assert_eq!(pre.total_volume(), 8);
    // global: PE0 ships one aggregated message; A(1)={2,4} and A(2)={3} go
    // to PE1 as [v,A(v)] records → 2+3 + 2+2 = 9 words; PE1 ships nothing
    // (its oriented cut heads point backwards under the degree order).
    let glob = d.stats.phases.last().unwrap();
    assert_eq!(
        glob.per_rank.iter().map(|c| c.sent_messages).sum::<u64>(),
        1
    );
    assert_eq!(glob.total_volume(), 9);
    assert_eq!(d.stats.total_work(), 17);
    assert_eq!(d.stats.max_peak_buffered(), 9);

    let c = count(&g, 2, Algorithm::Cetric).unwrap();
    assert_eq!(c.triangles, 2);
    // contraction drops the intra-PE entry of A(1): one fewer payload word
    assert_eq!(c.stats.phases.last().unwrap().total_volume(), 8);
    // expanded-graph local phase does strictly more local work than DITRIC's
    assert_eq!(c.stats.total_work(), 21);
}

#[test]
fn havoqgt_delegates_count_correctly_and_flatten_hotspots() {
    // correctness first, across graphs and thresholds
    for (g, p) in [(rmat_default(9, 3), 8usize), (gnm(300, 3000, 5), 5)] {
        let truth = seq::compact_forward(&g).triangles;
        for threshold in [0u64, 4, 32] {
            let cfg = DistConfig {
                delegate_threshold: Some(threshold),
                ..Algorithm::HavoqgtLike.config()
            };
            let r = count_with(&g, p, Algorithm::HavoqgtLike, &cfg).unwrap();
            assert_eq!(r.triangles, truth, "threshold {threshold}");
        }
    }
    // the delegation payoff: wedge generation for hubs is spread over ~√p
    // PEs, so the hottest PE posts fewer visitors
    let g = rmat_default(10, 7);
    let p = 16;
    let plain = count(&g, p, Algorithm::HavoqgtLike).unwrap();
    let cfg = DistConfig {
        delegate_threshold: Some(16),
        ..Algorithm::HavoqgtLike.config()
    };
    let delegated = count_with(&g, p, Algorithm::HavoqgtLike, &cfg).unwrap();
    assert_eq!(plain.triangles, delegated.triangles);
    let hot = |r: &crate::result::CountResult| {
        (0..p)
            .map(|rk| {
                r.stats
                    .phases
                    .iter()
                    .map(|ph| ph.per_rank[rk].work_ops)
                    .sum::<u64>()
            })
            .max()
            .unwrap()
    };
    assert!(
        hot(&delegated) < hot(&plain),
        "delegation should flatten the hot PE's wedge work: {} !< {}",
        hot(&delegated),
        hot(&plain)
    );
}

#[test]
fn sparse_degree_exchange_matches_dense() {
    let g = rmat_default(9, 12);
    let truth = seq::compact_forward(&g).triangles;
    for alg in [Algorithm::Ditric, Algorithm::Cetric] {
        let cfg = DistConfig {
            degree_exchange: crate::config::DegreeExchange::Sparse,
            ..alg.config()
        };
        let r = count_with(&g, 7, alg, &cfg).unwrap();
        assert_eq!(r.triangles, truth, "{alg:?} sparse exchange");
    }
    // on a low-partner road graph the sparse exchange sends fewer
    // preprocessing messages than the dense one
    let road = road_default(2000, 2);
    let mk = |de| {
        let cfg = DistConfig {
            degree_exchange: de,
            ..DistConfig::default()
        };
        let r = count_with(&road, 16, Algorithm::Ditric, &cfg).unwrap();
        r.stats
            .phases
            .iter()
            .filter(|ph| ph.name == "preprocessing")
            .map(|ph| ph.per_rank.iter().map(|c| c.sent_messages).sum::<u64>())
            .sum::<u64>()
    };
    let dense = mk(crate::config::DegreeExchange::Dense);
    let sparse = mk(crate::config::DegreeExchange::Sparse);
    assert!(
        sparse <= dense,
        "sparse exchange should not send more messages on a road graph: {sparse} vs {dense}"
    );
}

#[test]
fn deterministic_stats_across_runs() {
    // counters (not timings) must be bit-identical between runs
    let g = gnm(200, 1600, 6);
    let a = count(&g, 5, Algorithm::Cetric).unwrap();
    let b = count(&g, 5, Algorithm::Cetric).unwrap();
    assert_eq!(a.triangles, b.triangles);
    assert_eq!(a.stats.total_volume(), b.stats.total_volume());
    assert_eq!(a.stats.total_work(), b.stats.total_work());
    // message counts can differ only through flush timing races in relayed
    // routing; direct DITRIC is fully deterministic
    let c = count(&g, 5, Algorithm::Ditric).unwrap();
    let d = count(&g, 5, Algorithm::Ditric).unwrap();
    assert_eq!(c.stats.total_messages(), d.stats.total_messages());
}

//! CETRIC (paper §IV-C, Algorithm 3): the communication-efficient,
//! contraction-based two-phase variant of DITRIC.
//!
//! * **Local phase** — runs on the *expanded local graph* (owned vertices
//!   plus ghosts, ghost neighborhoods rewired from incoming cut edges) and
//!   finds every type-1 and type-2 triangle without any communication.
//! * **Contraction** — drops all non-cut oriented edges; by Lemma 1 the
//!   remaining cut graph `∂G` contains exactly the type-3 triangles.
//! * **Global phase** — DITRIC's sparse all-to-all over the *contracted*
//!   neighborhoods, making the communication volume proportional to the cut
//!   instead of the full input.
//!
//! The setup (ghost exchange + orientation + contraction) is factored into
//! [`crate::dist::residency::prepare_rank`] so the one-shot path here and
//! the resident query engine share it; [`count_prepared`] is the pure
//! counting part, reusable against long-lived [`PreparedRank`] state.

use tricount_comm::{Ctx, Envelope, MessageQueue, QueueConfig};
use tricount_graph::dist::{ContractedGraph, LocalGraph};
use tricount_graph::intersect::merge_count;

use crate::config::DistConfig;
use crate::dist::phases;
use crate::dist::residency::{prepare_rank, PreparedRank};

/// Runs CETRIC on this rank; returns the global triangle count.
pub fn run_rank(ctx: &mut Ctx, lg: LocalGraph, cfg: &DistConfig) -> u64 {
    let prep = prepare_rank(ctx, lg, cfg);
    count_prepared(ctx, &prep, cfg)
}

/// CETRIC's counting phases on already prepared per-rank state (local phase
/// on the expanded graph, global phase on the contracted cut graph, final
/// all-reduce). No setup communication happens here — the resident engine
/// calls this directly against state kept alive across queries.
pub fn count_prepared(ctx: &mut Ctx, prep: &PreparedRank, cfg: &DistConfig) -> u64 {
    let o = &prep.oriented;

    // Local phase (Algorithm 3 lines 5–7): every v ∈ V_i ∪ ∂V_i, every
    // u ∈ A(v); both neighborhoods are locally available by construction.
    let mut local_count = 0u64;
    for v in o.owned_range() {
        let av = o.a_owned(v);
        for &u in av {
            let au = o.a_of(u).expect("head must be owned or ghost");
            let (c, ops) = merge_count(av, au);
            local_count += c;
            ctx.add_work(ops + 1);
        }
    }
    for gi in 0..o.ghost_ids().len() {
        let av = o.a_ghost(gi);
        for &u in av {
            // ghosts' A(v) only contains owned vertices
            let (c, ops) = merge_count(av, o.a_owned(u));
            local_count += c;
            ctx.add_work(ops + 1);
        }
    }
    let contracted = &prep.contracted;
    ctx.end_phase(phases::LOCAL);

    // Global phase (lines 9–16) on the contracted graph.
    let delta = cfg.resolve_delta(prep.local.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = o.partition().clone();
    let owned = o.owned_range();
    let mut remote_count = 0u64;
    let handler = |c: &ContractedGraph,
                   owned: &std::ops::Range<u64>,
                   ctx: &mut Ctx,
                   env: Envelope<'_>,
                   acc: &mut u64| {
        // payload = [v, A(v)...] with A(v) contracted; intersect with the
        // contracted neighborhoods of local heads (line 15–16)
        let a = &env.payload[1..];
        for &u in a {
            if owned.contains(&u) {
                let (cnt, ops) = merge_count(a, c.a_of(u));
                *acc += cnt;
                ctx.add_work(ops + 1);
            }
        }
    };

    let mut scratch: Vec<u64> = Vec::new();
    for (v, a) in contracted.nonempty() {
        // Surrogate deduplication is not optional here: the receive handler
        // scans the whole payload for local heads, so a duplicate copy per
        // head would double count. (`cfg.dedup` only toggles the DITRIC
        // formats.)
        let mut last_rank: Option<usize> = None;
        for &u in a {
            let j = part.rank_of(u);
            if last_rank == Some(j) {
                continue;
            }
            last_rank = Some(j);
            scratch.clear();
            scratch.push(v);
            scratch.extend_from_slice(a);
            q.post(ctx, j, &scratch);
            while q.poll(ctx, &mut |ctx, env| {
                handler(contracted, &owned, ctx, env, &mut remote_count)
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        handler(contracted, &owned, ctx, env, &mut remote_count)
    });

    let total = ctx.allreduce_sum(&[local_count + remote_count])[0];
    ctx.end_phase(phases::GLOBAL);
    total
}

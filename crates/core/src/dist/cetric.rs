//! CETRIC (paper §IV-C, Algorithm 3): the communication-efficient,
//! contraction-based two-phase variant of DITRIC.
//!
//! * **Local phase** — runs on the *expanded local graph* (owned vertices
//!   plus ghosts, ghost neighborhoods rewired from incoming cut edges) and
//!   finds every type-1 and type-2 triangle without any communication.
//! * **Contraction** — drops all non-cut oriented edges; by Lemma 1 the
//!   remaining cut graph `∂G` contains exactly the type-3 triangles.
//! * **Global phase** — DITRIC's sparse all-to-all over the *contracted*
//!   neighborhoods, making the communication volume proportional to the cut
//!   instead of the full input.
//!
//! The setup (ghost exchange + orientation + contraction) is factored into
//! [`crate::dist::residency::prepare_rank`] so the one-shot path here and
//! the resident query engine share it; [`count_prepared`] is the pure
//! counting part, reusable against long-lived [`PreparedRank`] state.
//!
//! Intersections go through the adaptive kernel [`Dispatcher`] configured
//! by `cfg.kernels`, and the local phase optionally runs degree-aware
//! chunked on the `par` pool — the sequential and chunked paths share one
//! per-item function and reduce partial sums in canonical chunk order, so
//! counts and `ops` totals are bit-identical either way.

use tricount_cache::{CacheSession, ListKind};
use tricount_comm::{Ctx, Envelope, MessageQueue, QueueConfig};
use tricount_graph::dist::{ContractedGraph, LocalGraph, OrientedLocalGraph};
use tricount_graph::kernels::{balanced_chunks, Dispatcher, KernelCounters};
use tricount_graph::Partition;
use tricount_graph::VertexId;
use tricount_par::Pool;

use crate::config::DistConfig;
use crate::dist::dispatch::DispatchReport;
use crate::dist::phases;
use crate::dist::residency::{prepare_rank, PreparedRank};

/// Runs CETRIC on this rank; returns the global triangle count.
pub fn run_rank(ctx: &mut Ctx, lg: LocalGraph, cfg: &DistConfig) -> u64 {
    let prep = prepare_rank(ctx, lg, cfg);
    count_prepared(ctx, &prep, cfg)
}

/// [`run_rank`] plus this rank's per-phase kernel-dispatch tallies.
pub fn run_rank_stats(ctx: &mut Ctx, lg: LocalGraph, cfg: &DistConfig) -> (u64, DispatchReport) {
    let prep = prepare_rank(ctx, lg, cfg);
    count_prepared_stats(ctx, &prep, cfg)
}

/// [`run_rank_stats`] with a live adjacency-cache session (one-shot prepare
/// followed by [`count_prepared_cached`]).
pub fn run_rank_cached(
    ctx: &mut Ctx,
    lg: LocalGraph,
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> (u64, DispatchReport) {
    let prep = prepare_rank(ctx, lg, cfg);
    count_prepared_cached(ctx, &prep, cfg, session)
}

/// The local phase's canonical work list: owned vertices in id order, then
/// ghosts in ghost-index order. Item `i` resolves to `(v, A(v))`.
#[inline]
fn local_item(o: &OrientedLocalGraph, idx: usize) -> (VertexId, &[VertexId]) {
    let start = o.owned_range().start;
    let owned_len = (o.owned_range().end - start) as usize;
    if idx < owned_len {
        let v = start + idx as u64;
        (v, o.a_owned(v))
    } else {
        let gi = idx - owned_len;
        (o.ghost_ids()[gi], o.a_ghost(gi))
    }
}

/// Counts one item's triangles (Algorithm 3 lines 5–7 for a single `v`):
/// intersects `A(v)` with `A(u)` for every `u ∈ A(v)`. Returns the triangle
/// count and the metered work (`ops + 1` per directed edge, as the
/// sequential loop has always charged). Shared by the sequential and
/// chunked drivers — bit-identity between them is by construction.
#[inline]
fn count_local_item(
    o: &OrientedLocalGraph,
    v: VertexId,
    av: &[VertexId],
    d: &mut Dispatcher<'_>,
) -> (u64, u64) {
    let mut count = 0u64;
    let mut work = 0u64;
    for &u in av {
        let au = o.a_of(u).expect("head must be owned or ghost");
        let (c, ops) = d.count(av, Some(v), au, Some(u));
        count += c;
        work += ops + 1;
    }
    (count, work)
}

/// The local phase: every `v ∈ V_i ∪ ∂V_i`, every `u ∈ A(v)`, both
/// neighborhoods locally available by construction. Runs sequentially or
/// chunked on the pool per `cfg.kernels`; returns `(count, dispatch)`.
fn local_phase(ctx: &mut Ctx, prep: &PreparedRank, cfg: &DistConfig) -> (u64, KernelCounters) {
    let o = &prep.oriented;
    let policy = cfg.kernels;
    let owned_len = (o.owned_range().end - o.owned_range().start) as usize;
    let n = owned_len + o.ghost_ids().len();

    if policy.chunking && policy.pool_workers > 1 && n > 0 {
        // Degree-aware chunking: weight each item by its oriented degree
        // (the prefix-sum proxy for its intersection work), so chunks carry
        // balanced work, not balanced item counts.
        let weights: Vec<u64> = (0..n).map(|i| local_item(o, i).1.len() as u64).collect();
        let ranges = balanced_chunks(&weights, policy.pool_workers.saturating_mul(4));
        let pool = Pool::new(policy.pool_workers);
        let results = pool.run_tasks(ranges, |_, (s, e)| {
            let mut d = Dispatcher::with_hubs(policy, &prep.hubs_oriented);
            let mut count = 0u64;
            let mut work = 0u64;
            for i in s..e {
                let (v, av) = local_item(o, i);
                let (c, w) = count_local_item(o, v, av, &mut d);
                count += c;
                work += w;
            }
            (count, work, d.counters())
        });
        // `run_tasks` returns results sorted by task index — the canonical
        // chunk order — so this reduction is schedule-independent.
        let mut count = 0u64;
        let mut work = 0u64;
        let mut counters = KernelCounters::default();
        for r in results {
            count += r.result.0;
            work += r.result.1;
            counters.absorb(&r.result.2);
        }
        ctx.add_work(work);
        (count, counters)
    } else {
        let mut d = Dispatcher::with_hubs(policy, &prep.hubs_oriented);
        let mut count = 0u64;
        for i in 0..n {
            let (v, av) = local_item(o, i);
            let (c, w) = count_local_item(o, v, av, &mut d);
            count += c;
            ctx.add_work(w);
        }
        (count, d.counters())
    }
}

/// CETRIC's counting phases on already prepared per-rank state (local phase
/// on the expanded graph, global phase on the contracted cut graph, final
/// all-reduce). No setup communication happens here — the resident engine
/// calls this directly against state kept alive across queries.
pub fn count_prepared(ctx: &mut Ctx, prep: &PreparedRank, cfg: &DistConfig) -> u64 {
    count_prepared_stats(ctx, prep, cfg).0
}

/// [`count_prepared`] plus this rank's per-phase kernel-dispatch tallies.
pub fn count_prepared_stats(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    cfg: &DistConfig,
) -> (u64, DispatchReport) {
    count_prepared_cached(ctx, prep, cfg, &mut CacheSession::off())
}

/// Receive side of the global phase. Wire formats:
///
/// * session inactive — `[v, A(v)...]` (the original format, bit-identical
///   to a build without the cache);
/// * session active   — `[v, 0, A(v)...]` full send (staged for caching) or
///   `[v, 1]` reference resolved against the held entry from `v`'s owner.
#[allow(clippy::too_many_arguments)]
fn global_handler(
    c: &ContractedGraph,
    owned: &std::ops::Range<u64>,
    part: &Partition,
    ctx: &mut Ctx,
    env: Envelope<'_>,
    acc: &mut u64,
    d: &mut Dispatcher<'_>,
    session: &mut CacheSession<'_>,
) {
    let resolved: Vec<u64>;
    let a: &[u64] = if session.active() {
        let v = env.payload[0];
        let owner = part.rank_of(v);
        if env.payload[1] == 1 {
            resolved = session.recv_ref(owner, ListKind::Contracted, v);
            &resolved
        } else {
            let a = &env.payload[2..];
            session.recv_full(owner, ListKind::Contracted, v, a);
            a
        }
    } else {
        &env.payload[1..]
    };
    // Intersect with the contracted neighborhoods of local heads
    // (Algorithm 3 lines 15–16).
    for &u in a {
        if owned.contains(&u) {
            let (cnt, ops) = d.count(a, None, c.a_of(u), Some(u));
            *acc += cnt;
            ctx.add_work(ops + 1);
        }
    }
}

/// [`count_prepared_stats`] with a live adjacency-cache session: the owner
/// consults its mirror before posting a contracted list and sends a
/// two-word reference on a hit. With an off session this *is* the original
/// protocol, wire format and meters included.
pub fn count_prepared_cached(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> (u64, DispatchReport) {
    // Local phase (Algorithm 3 lines 5–7).
    let (local_count, local_dispatch) = local_phase(ctx, prep, cfg);
    let contracted = &prep.contracted;
    ctx.end_phase(phases::LOCAL);

    // Global phase (lines 9–16) on the contracted graph.
    let delta = cfg.resolve_delta(prep.local.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = prep.oriented.partition().clone();
    let owned = prep.oriented.owned_range();
    let mut remote_count = 0u64;
    let mut gd = Dispatcher::with_hubs(cfg.kernels, &prep.hubs_contracted);

    let mut scratch: Vec<u64> = Vec::new();
    for (v, a) in contracted.nonempty() {
        // Surrogate deduplication is not optional here: the receive handler
        // scans the whole payload for local heads, so a duplicate copy per
        // head would double count. (`cfg.dedup` only toggles the DITRIC
        // formats.)
        let mut last_rank: Option<usize> = None;
        for &u in a {
            let j = part.rank_of(u);
            if last_rank == Some(j) {
                continue;
            }
            last_rank = Some(j);
            scratch.clear();
            scratch.push(v);
            if session.active() {
                if session.sender_check(j, ListKind::Contracted, v, a.len() as u64) {
                    scratch.push(1);
                } else {
                    scratch.push(0);
                    scratch.extend_from_slice(a);
                }
            } else {
                session.sender_check(j, ListKind::Contracted, v, a.len() as u64);
                scratch.extend_from_slice(a);
            }
            q.post(ctx, j, &scratch);
            while q.poll(ctx, &mut |ctx, env| {
                global_handler(
                    contracted,
                    &owned,
                    &part,
                    ctx,
                    env,
                    &mut remote_count,
                    &mut gd,
                    session,
                )
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        global_handler(
            contracted,
            &owned,
            &part,
            ctx,
            env,
            &mut remote_count,
            &mut gd,
            session,
        )
    });

    let total = ctx.allreduce_sum(&[local_count + remote_count])[0];
    ctx.end_phase(phases::GLOBAL);

    let mut report = DispatchReport::of(phases::LOCAL, local_dispatch);
    report.add(phases::GLOBAL, gd.counters());
    (total, report)
}

//! A 2D, matrix-multiplication-based distributed triangle counter — the
//! algebraic alternative the paper's related work cites (Tom & Karypis' 2D
//! algorithm; Azad, Buluç & Gilbert's masked SpGEMM) and dismisses because
//! "they only scale up to a couple of hundred PEs" (§III-A2).
//!
//! The count is `sum((L·L) ∘ L)` where `L` is the id-oriented adjacency
//! matrix (edge `(u,v)` stored at row `u`, column `v` for `v < u`): the
//! `(i,j)` entry of `L·L` counts paths `i→k→j` with `j < k < i`, and the
//! mask keeps exactly the closed ones — each triangle once.
//!
//! Execution is SUMMA-style on a `q × q` PE grid (`p = q²`): vertices are
//! split into `q` ranges; PE `(I,J)` owns block `L_{I,J}`. In stage `k` the
//! block `L_{I,k}` travels along row `I` and `L_{k,J}` along column `J`;
//! every PE multiplies the pair masked by its own block. Each block is
//! replicated `q−1` times per stage direction, so the total communication
//! volume is `Θ(m·√p)` — *growing* with the machine size. This is precisely
//! the scaling wall the paper attributes to the 2D algorithms, and the
//! reason its own 1D + aggregation + contraction design wins at scale
//! (compare in `scaling_shapes` tests / `ablations` bench).

use tricount_comm::run;
use tricount_graph::hash::FxHashSet;
use tricount_graph::{Csr, Partition, VertexId};

use crate::dist::phases;
use crate::result::CountResult;

/// One sparse block of `L`, stored row-major as `(row, cols...)` lists.
#[derive(Debug, Clone, Default)]
struct Block {
    /// Sorted rows with their sorted column lists.
    rows: Vec<(VertexId, Vec<VertexId>)>,
}

impl Block {
    fn from_edges(mut edges: Vec<(VertexId, VertexId)>) -> Self {
        edges.sort_unstable();
        let mut rows: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
        for (u, v) in edges {
            match rows.last_mut() {
                Some((r, cols)) if *r == u => cols.push(v),
                _ => rows.push((u, vec![v])),
            }
        }
        Block { rows }
    }

    fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (r, cols) in &self.rows {
            out.push(*r);
            out.push(cols.len() as u64);
            out.extend_from_slice(cols);
        }
        out
    }

    fn from_words(words: &[u64]) -> Self {
        let mut rows = Vec::new();
        let mut i = 0;
        while i < words.len() {
            let r = words[i];
            let len = words[i + 1] as usize;
            rows.push((r, words[i + 2..i + 2 + len].to_vec()));
            i += 2 + len;
        }
        Block { rows }
    }

    fn cols_of(&self, row: VertexId) -> Option<&[VertexId]> {
        self.rows
            .binary_search_by_key(&row, |(r, _)| *r)
            .ok()
            .map(|i| self.rows[i].1.as_slice())
    }
}

/// Counts triangles with the 2D masked-SpGEMM algorithm on a `q×q` grid.
/// `p` must be a perfect square. Phases: `"preprocessing"` (block setup) and
/// `"global"` (the q SUMMA stages + reduction).
pub fn count_matrix2d(g: &Csr, p: usize) -> CountResult {
    let q = (p as f64).sqrt().round() as usize;
    assert_eq!(q * q, p, "matrix2d requires a square PE count, got {p}");
    let part = Partition::balanced_vertices(g.num_vertices(), q);

    // carve the oriented matrix into q×q blocks (setup outside the timed
    // region, like graph loading)
    let mut blocks: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); p];
    for (a, b) in g.edges() {
        let (v, u) = (a.min(b), a.max(b)); // row u > col v
        let bi = part.rank_of(u);
        let bj = part.rank_of(v);
        blocks[bi * q + bj].push((u, v));
    }
    let blocks: Vec<Block> = blocks.into_iter().map(Block::from_edges).collect();
    let blocks_ref = &blocks;

    let out = run(p, move |ctx| {
        let me = ctx.rank();
        let (bi, bj) = (me / q, me % q);
        let mine = &blocks_ref[me];
        // mask index of the local block for O(1) closed-wedge checks
        let mask: FxHashSet<(VertexId, VertexId)> = mine
            .rows
            .iter()
            .flat_map(|(r, cols)| cols.iter().map(move |&c| (*r, c)))
            .collect();
        ctx.end_phase(phases::PREPROCESSING);

        let mut count = 0u64;
        for stage in 0..q {
            // distribute: the owner of L_{bi,stage} sends along its row,
            // the owner of L_{stage,bj} along its column
            if bj == stage {
                let words = mine.to_words();
                for j in 0..q {
                    if j != bj {
                        let mut payload = vec![0u64]; // tag 0 = row block
                        payload.extend_from_slice(&words);
                        ctx.send_raw(bi * q + j, payload);
                    }
                }
            }
            if bi == stage {
                let words = mine.to_words();
                for i in 0..q {
                    if i != bi {
                        let mut payload = vec![1u64]; // tag 1 = col block
                        payload.extend_from_slice(&words);
                        ctx.send_raw(i * q + bj, payload);
                    }
                }
            }
            // collect the two operands of this stage
            let mut row_block: Option<Block> = if bj == stage {
                Some(mine.clone())
            } else {
                None
            };
            let mut col_block: Option<Block> = if bi == stage {
                Some(mine.clone())
            } else {
                None
            };
            while row_block.is_none() || col_block.is_none() {
                if let Some(msg) = ctx.try_recv_raw() {
                    let block = Block::from_words(&msg.words[1..]);
                    if msg.words[0] == 0 {
                        row_block = Some(block);
                    } else {
                        col_block = Some(block);
                    }
                } else {
                    std::thread::yield_now();
                }
            }
            let a = row_block.unwrap(); // L_{bi, stage}: rows i, cols k
            let b = col_block.unwrap(); // L_{stage, bj}: rows k, cols j
                                        // masked product: for (i,k) in A, (k,j) in B, count if (i,j) in mask
            for (i, ks) in &a.rows {
                for &k in ks {
                    if let Some(js) = b.cols_of(k) {
                        for &j in js {
                            ctx.add_work(1);
                            if mask.contains(&(*i, j)) {
                                count += 1;
                            }
                        }
                    }
                }
            }
            // stages are bulk-synchronous
            ctx.barrier();
        }
        let total = ctx.allreduce_sum(&[count])[0];
        ctx.end_phase(phases::GLOBAL);
        total
    });
    CountResult {
        triangles: out.results[0],
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use crate::Algorithm;

    #[test]
    fn matches_sequential_on_families() {
        for (g, ps) in [
            (tricount_gen::gnm(300, 2400, 3), vec![1usize, 4, 9]),
            (tricount_gen::rmat_default(8, 5), vec![4, 16]),
            (tricount_gen::rgg2d_default(300, 2), vec![9]),
            (tricount_gen::road_default(300, 1), vec![4]),
        ] {
            let truth = seq::compact_forward(&g).triangles;
            for p in ps {
                let r = count_matrix2d(&g, p);
                assert_eq!(r.triangles, truth, "p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "square PE count")]
    fn rejects_non_square_p() {
        let g = tricount_gen::gnm(50, 200, 1);
        let _ = count_matrix2d(&g, 6);
    }

    #[test]
    fn volume_grows_with_sqrt_p_unlike_ditric() {
        // the §III-A2 claim: 2D algebraic counting replicates blocks √p
        // times, so its volume *grows* with the machine while DITRIC's
        // communication stays input-bound
        let g = tricount_gen::gnm(512, 8192, 7);
        let v4 = count_matrix2d(&g, 4).stats.total_volume();
        let v16 = count_matrix2d(&g, 16).stats.total_volume();
        let v64 = count_matrix2d(&g, 64).stats.total_volume();
        assert!(v16 > 3 * v4 / 2, "volume must grow: {v4} → {v16}");
        assert!(v64 > 3 * v16 / 2, "volume must grow: {v16} → {v64}");
        let d16 = crate::dist::count(&g, 16, Algorithm::Ditric)
            .unwrap()
            .stats
            .total_volume();
        let d64 = crate::dist::count(&g, 64, Algorithm::Ditric)
            .unwrap()
            .stats
            .total_volume();
        // DITRIC's volume saturates near the input size; the 2D scheme keeps
        // climbing past it
        assert!(
            v64 as f64 / d64 as f64 > v16 as f64 / d16 as f64,
            "2D/1D volume ratio must widen with p: {v16}/{d16} vs {v64}/{d64}"
        );
    }

    #[test]
    fn empty_graph_and_p1() {
        let g = Csr::from_edges(10, &tricount_graph::EdgeList::new());
        assert_eq!(count_matrix2d(&g, 1).triangles, 0);
        let tri = {
            let mut el = tricount_graph::EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 2)]);
            el.canonicalize();
            Csr::from_edges(3, &el)
        };
        assert_eq!(count_matrix2d(&tri, 1).triangles, 1);
        assert_eq!(count_matrix2d(&tri, 4).triangles, 1);
    }
}

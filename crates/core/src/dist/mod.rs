//! The distributed algorithms: drivers, preprocessing, and the per-variant
//! rank programs.

pub mod approx;
pub mod baselines;
pub mod cetric;
pub mod delta;
pub mod dispatch;
pub mod ditric;
pub mod enumerate;
pub mod hybrid;
pub mod lcc;
pub mod matrix2d;
pub mod phases;
pub mod rebalance;
pub mod residency;
pub mod support;

#[cfg(test)]
mod tests;

use std::sync::{Arc, Mutex};

use tricount_comm::{
    run_guarded, run_sim, Ctx, MessageQueue, QueueConfig, SimOptions, Trace, TransportKind,
};
use tricount_graph::dist::{DistGraph, LocalGraph};
use tricount_graph::OrderingKind;

use crate::config::{Algorithm, DegreeExchange, DistConfig};
use crate::result::{CountResult, DistError};

/// The ghost degree exchange of Algorithm 3 line 1 (`exchange_ghost_degree`):
/// a dense all-to-all of ghost-id requests followed by a dense all-to-all of
/// degree responses, as in the paper's implementation notes (§IV-D, which
/// found a dense exchange more robust than a sparse one under skew).
pub fn exchange_ghost_degrees(ctx: &mut Ctx, lg: &mut LocalGraph) {
    if lg.ghosts().degrees_known() {
        return;
    }
    ctx.with_span("ghost_degree_exchange_dense", |ctx| {
        let p = ctx.num_ranks();
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); p];
        for (rank, ids) in lg.ghost_ids_by_owner() {
            requests[rank] = ids;
        }
        let incoming_requests = ctx.alltoallv(requests);
        let responses: Vec<Vec<u64>> = incoming_requests
            .into_iter()
            .map(|ids| ids.into_iter().map(|v| lg.degree(v)).collect())
            .collect();
        let incoming_degrees = ctx.alltoallv(responses);
        // ghost ids are sorted and ranks own contiguous id ranges, so
        // concatenating the responses in rank order restores ghost-id order
        let mut degrees = Vec::with_capacity(lg.ghosts().len());
        for part in incoming_degrees {
            degrees.extend(part);
        }
        lg.set_ghost_degrees(degrees);
    });
}

/// The sparse variant of the ghost degree exchange (§IV-D / Hoefler & Träff):
/// requests and responses travel as direct messages through the buffered
/// queue instead of a dense collective. Wins when each PE has few
/// communication partners; loses under degree skew (the paper's observation
/// and the reason the dense variant is the default).
pub fn exchange_ghost_degrees_sparse(ctx: &mut Ctx, lg: &mut LocalGraph) {
    if lg.ghosts().degrees_known() {
        return;
    }
    ctx.with_span("ghost_degree_exchange_sparse", |ctx| {
        exchange_ghost_degrees_sparse_body(ctx, lg)
    });
}

fn exchange_ghost_degrees_sparse_body(ctx: &mut Ctx, lg: &mut LocalGraph) {
    let me = ctx.rank() as u64;
    let delta = (lg.num_local_entries() as usize / 4).max(64);
    let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(delta));

    // round 1: requests [requester, ids...] to each ghost owner
    let requests = lg.ghost_ids_by_owner();
    let mut incoming_requests: Vec<(u64, Vec<u64>)> = Vec::new();
    for (rank, ids) in &requests {
        let mut payload = Vec::with_capacity(ids.len() + 1);
        payload.push(me);
        payload.extend_from_slice(ids);
        q.post(ctx, *rank, &payload);
    }
    q.finish(ctx, &mut |_ctx, env| {
        incoming_requests.push((env.payload[0], env.payload[1..].to_vec()));
    });

    // round 2: responses [owner, degrees...] back to each requester
    let mut responses: Vec<(usize, Vec<u64>)> = Vec::new();
    for (requester, ids) in incoming_requests {
        let mut payload = Vec::with_capacity(ids.len() + 1);
        payload.push(me);
        payload.extend(ids.iter().map(|&v| lg.degree(v)));
        responses.push((requester as usize, payload));
    }
    let mut by_owner: Vec<(u64, Vec<u64>)> = Vec::new();
    for (requester, payload) in responses {
        q.post(ctx, requester, &payload);
    }
    q.finish(ctx, &mut |_ctx, env| {
        by_owner.push((env.payload[0], env.payload[1..].to_vec()));
    });

    // reassemble in owner-rank order == sorted ghost-id order
    by_owner.sort_by_key(|(owner, _)| *owner);
    let mut degrees = Vec::with_capacity(lg.ghosts().len());
    for (_, degs) in by_owner {
        degrees.extend(degs);
    }
    lg.set_ghost_degrees(degrees);
}

/// Runs preprocessing common to the oriented algorithms: ghost degree
/// exchange when the ordering needs it.
pub fn preprocess(ctx: &mut Ctx, lg: &mut LocalGraph, cfg: &DistConfig) {
    if cfg.ordering == OrderingKind::Degree {
        match cfg.degree_exchange {
            DegreeExchange::Dense => exchange_ghost_degrees(ctx, lg),
            DegreeExchange::Sparse => exchange_ghost_degrees_sparse(ctx, lg),
        }
    }
}

/// Wraps per-rank local graphs so rank threads can each take ownership of
/// theirs from a shared closure.
pub(crate) fn into_cells(dg: DistGraph) -> Vec<Mutex<Option<LocalGraph>>> {
    dg.into_locals()
        .into_iter()
        .map(|l| Mutex::new(Some(l)))
        .collect()
}

/// Resolves the options a run actually executes under: an explicitly
/// non-default `opts.transport` wins; otherwise [`DistConfig::transport`]
/// selects the backend. (Requesting the default `Sim` through `opts` and
/// `Threads` through the config is a config-driven threads run — the CLI
/// and engine plumb `--transport` through the config.)
fn resolve_opts(cfg: &DistConfig, opts: &SimOptions) -> SimOptions {
    let mut opts = opts.clone();
    if opts.transport == TransportKind::Sim {
        opts.transport = cfg.transport;
    }
    opts
}

/// Runs `alg` on an already partitioned graph under explicit
/// [`SimOptions`] (transport backend, timing, trace recording, schedule
/// perturbation) and returns the global triangle count with full
/// statistics, alongside the recorded trace if one was requested (requires
/// `tricount-comm`'s `trace` feature to be non-`None`). This is the entry
/// point of the CLI drivers and the `tricount-verify` conformance,
/// determinism and transport-equivalence harnesses.
///
/// (Previously `run_on_sim`; renamed when the runtime grew a real parallel
/// backend — the run is only a simulation on [`TransportKind::Sim`].)
pub fn run_on(
    dg: DistGraph,
    alg: Algorithm,
    cfg: &DistConfig,
    opts: &SimOptions,
) -> Result<(CountResult, Option<Trace>), DistError> {
    let opts = resolve_opts(cfg, opts);
    let p = dg.num_ranks();
    let cells = into_cells(dg);
    let body = |ctx: &mut Ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        match alg {
            Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => {
                Ok(ditric::run_rank(ctx, lg, cfg))
            }
            Algorithm::Cetric | Algorithm::Cetric2 => Ok(cetric::run_rank(ctx, lg, cfg)),
            Algorithm::TricLike => baselines::tric_like_rank(ctx, lg, cfg),
            Algorithm::HavoqgtLike => Ok(baselines::havoqgt_like_rank(ctx, lg, cfg)),
        }
    };
    let sim = run_sim(p, &opts, body);
    let triangles = sim.output.results.into_iter().next().unwrap()?;
    Ok((
        CountResult {
            triangles,
            stats: sim.output.stats,
        },
        sim.trace,
    ))
}

/// Like [`run_on`] under default options, returning just the count record
/// (the common case of the simple drivers and benches).
pub fn run_on_default(
    dg: DistGraph,
    alg: Algorithm,
    cfg: &DistConfig,
) -> Result<CountResult, DistError> {
    run_on(dg, alg, cfg, &SimOptions::default()).map(|(r, _)| r)
}

/// Like [`run_on_default`] with the overlap-aware simulated clock enabled
/// under `cost` (see `tricount_comm::runtime::run_timed`); the result's
/// [`RunStats::makespan`](tricount_comm::RunStats::makespan) is populated.
pub fn run_on_timed(
    dg: DistGraph,
    alg: Algorithm,
    cfg: &DistConfig,
    cost: tricount_comm::CostModel,
) -> Result<CountResult, DistError> {
    let opts = SimOptions {
        timing: Some(cost),
        ..SimOptions::default()
    };
    run_on(dg, alg, cfg, &opts).map(|(r, _)| r)
}

/// Like [`run_on`], additionally returning the kernel-dispatch tallies
/// of every rank folded in rank order (empty for the baseline algorithms,
/// which intersect without the dispatcher). (Previously
/// `run_on_sim_stats`.)
pub fn run_on_stats(
    dg: DistGraph,
    alg: Algorithm,
    cfg: &DistConfig,
    opts: &SimOptions,
) -> Result<(CountResult, Option<Trace>, dispatch::DispatchReport), DistError> {
    let opts = resolve_opts(cfg, opts);
    let p = dg.num_ranks();
    let cells = into_cells(dg);
    let body = |ctx: &mut Ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        match alg {
            Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => {
                Ok(ditric::run_rank_stats(ctx, lg, cfg))
            }
            Algorithm::Cetric | Algorithm::Cetric2 => Ok(cetric::run_rank_stats(ctx, lg, cfg)),
            Algorithm::TricLike => baselines::tric_like_rank(ctx, lg, cfg)
                .map(|c| (c, dispatch::DispatchReport::new())),
            Algorithm::HavoqgtLike => Ok((
                baselines::havoqgt_like_rank(ctx, lg, cfg),
                dispatch::DispatchReport::new(),
            )),
        }
    };
    let sim = run_sim(p, &opts, body);
    let mut triangles = 0u64;
    let mut report = dispatch::DispatchReport::new();
    for (i, r) in sim.output.results.into_iter().enumerate() {
        let (c, d) = r?;
        if i == 0 {
            triangles = c;
        }
        report.absorb(&d);
    }
    Ok((
        CountResult {
            triangles,
            stats: sim.output.stats,
        },
        sim.trace,
        report,
    ))
}

/// Like [`run_on_stats`], additionally returning the drained wall-clock
/// profile when the resolved options enable [`SimOptions::wall_profile`]
/// on the threads backend (`None` otherwise — the sim backend has no wall
/// clock worth measuring). This is the `tricount profile` dual-clock path.
#[allow(clippy::type_complexity)]
pub fn run_on_profiled(
    dg: DistGraph,
    alg: Algorithm,
    cfg: &DistConfig,
    opts: &SimOptions,
) -> Result<
    (
        CountResult,
        Option<Trace>,
        dispatch::DispatchReport,
        Option<tricount_comm::WallProfile>,
    ),
    DistError,
> {
    let opts = resolve_opts(cfg, opts);
    let p = dg.num_ranks();
    let cells = into_cells(dg);
    let body = |ctx: &mut Ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        match alg {
            Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => {
                Ok(ditric::run_rank_stats(ctx, lg, cfg))
            }
            Algorithm::Cetric | Algorithm::Cetric2 => Ok(cetric::run_rank_stats(ctx, lg, cfg)),
            Algorithm::TricLike => baselines::tric_like_rank(ctx, lg, cfg)
                .map(|c| (c, dispatch::DispatchReport::new())),
            Algorithm::HavoqgtLike => Ok((
                baselines::havoqgt_like_rank(ctx, lg, cfg),
                dispatch::DispatchReport::new(),
            )),
        }
    };
    let sim = run_sim(p, &opts, body);
    let mut triangles = 0u64;
    let mut report = dispatch::DispatchReport::new();
    for (i, r) in sim.output.results.into_iter().enumerate() {
        let (c, d) = r?;
        if i == 0 {
            triangles = c;
        }
        report.absorb(&d);
    }
    Ok((
        CountResult {
            triangles,
            stats: sim.output.stats,
        },
        sim.trace,
        report,
        sim.wall,
    ))
}

/// Like [`run_on_stats`], threading a persistent per-rank adjacency cache
/// through the run: rank `i` opens a [`CacheSession`] over `caches[i]`
/// (exclusive writer — entries admitted this run become visible to the
/// *next* run over the same cells, so repeated counts on a warm graph turn
/// shipped adjacency lists into two-word references). The folded
/// [`CacheReport`] of all ranks rides along. `caches` must hold exactly one
/// cell per rank of `dg`; baselines ([`Algorithm::TricLike`] /
/// [`Algorithm::HavoqgtLike`]) have no cached protocol and run with the
/// session off.
pub fn run_on_cached(
    dg: DistGraph,
    alg: Algorithm,
    cfg: &DistConfig,
    opts: &SimOptions,
    caches: &[Mutex<tricount_cache::RankCache>],
) -> Result<
    (
        CountResult,
        dispatch::DispatchReport,
        tricount_cache::CacheReport,
    ),
    DistError,
> {
    use tricount_cache::CacheSession;
    let opts = resolve_opts(cfg, opts);
    let p = dg.num_ranks();
    assert_eq!(caches.len(), p, "one cache cell per rank");
    let cells = into_cells(dg);
    let body = |ctx: &mut Ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        let mut cache = caches[ctx.rank()].lock().unwrap();
        let generation = cache.generation();
        let mut session = CacheSession::write(&mut cache, generation);
        let counted = match alg {
            Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => {
                Ok(ditric::run_rank_cached(ctx, lg, cfg, &mut session))
            }
            Algorithm::Cetric | Algorithm::Cetric2 => {
                Ok(cetric::run_rank_cached(ctx, lg, cfg, &mut session))
            }
            Algorithm::TricLike => baselines::tric_like_rank(ctx, lg, cfg)
                .map(|c| (c, dispatch::DispatchReport::new())),
            Algorithm::HavoqgtLike => Ok((
                baselines::havoqgt_like_rank(ctx, lg, cfg),
                dispatch::DispatchReport::new(),
            )),
        };
        let outcome = session.finish();
        counted.map(|(c, d)| (c, d, outcome.report))
    };
    let sim = run_sim(p, &opts, body);
    let mut triangles = 0u64;
    let mut report = dispatch::DispatchReport::new();
    let mut cache_report = tricount_cache::CacheReport::default();
    for (i, r) in sim.output.results.into_iter().enumerate() {
        let (c, d, cr) = r?;
        if i == 0 {
            triangles = c;
        }
        report.absorb(&d);
        cache_report.absorb(&cr);
    }
    Ok((
        CountResult {
            triangles,
            stats: sim.output.stats,
        },
        report,
        cache_report,
    ))
}

/// Like [`run_on`], but under the deadlock watchdog
/// ([`tricount_comm::run_guarded`]): if no PE makes progress for `timeout`,
/// the run is abandoned and the watchdog's wait-for-graph diagnosis comes
/// back as [`DistError::Deadlock`] instead of the process hanging. This is
/// the execution path of the resident query engine, where a wedged query
/// must surface as a failed request rather than take the server down.
pub fn run_on_guarded(
    dg: DistGraph,
    alg: Algorithm,
    cfg: &DistConfig,
    opts: &SimOptions,
    timeout: std::time::Duration,
) -> Result<CountResult, DistError> {
    let opts = resolve_opts(cfg, opts);
    let p = dg.num_ranks();
    let cells = Arc::new(into_cells(dg));
    let cfg = *cfg;
    let body = move |ctx: &mut Ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        match alg {
            Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => {
                Ok(ditric::run_rank(ctx, lg, &cfg))
            }
            Algorithm::Cetric | Algorithm::Cetric2 => Ok(cetric::run_rank(ctx, lg, &cfg)),
            Algorithm::TricLike => baselines::tric_like_rank(ctx, lg, &cfg),
            Algorithm::HavoqgtLike => Ok(baselines::havoqgt_like_rank(ctx, lg, &cfg)),
        }
    };
    let out = run_guarded(p, &opts, timeout, body)?;
    let triangles = out.output.results.into_iter().next().unwrap()?;
    Ok(CountResult {
        triangles,
        stats: out.output.stats,
    })
}

/// Convenience driver: partitions `g` over `p` PEs (vertex-balanced) and
/// runs `alg` with its default configuration.
pub fn count(g: &tricount_graph::Csr, p: usize, alg: Algorithm) -> Result<CountResult, DistError> {
    run_on_default(DistGraph::new_balanced_vertices(g, p), alg, &alg.config())
}

/// Like [`count`] with an explicit configuration.
pub fn count_with(
    g: &tricount_graph::Csr,
    p: usize,
    alg: Algorithm,
    cfg: &DistConfig,
) -> Result<CountResult, DistError> {
    run_on_default(DistGraph::new_balanced_vertices(g, p), alg, cfg)
}

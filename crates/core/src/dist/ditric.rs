//! DITRIC (paper §IV-A/§IV-B): the distributed EDGEITERATOR of Algorithm 2
//! with dynamically buffered message aggregation, surrogate deduplication,
//! and optional grid-indirect delivery. Also covers the unaggregated
//! baseline of Fig. 2 (`Aggregation::None`, `dedup = false`).
//!
//! Phase structure (matching the break-down of Fig. 7):
//! 1. `preprocessing` — ghost degree exchange + orientation.
//! 2. `local` — intersections for directed edges whose head is local.
//! 3. `global` — neighborhoods streamed to the owners of cut-edge heads via
//!    the sparse all-to-all; receivers intersect; final all-reduce.

use tricount_comm::{Ctx, Envelope, MessageQueue, QueueConfig};
use tricount_graph::dist::LocalGraph;
use tricount_graph::intersect::merge_count;

use crate::config::DistConfig;
use crate::dist::phases;
use crate::dist::preprocess;

/// Runs DITRIC on this rank; returns the *global* triangle count (identical
/// on every rank after the final reduction).
pub fn run_rank(ctx: &mut Ctx, mut lg: LocalGraph, cfg: &DistConfig) -> u64 {
    preprocess(ctx, &mut lg, cfg);
    let o = lg.orient(cfg.ordering, false);
    ctx.end_phase(phases::PREPROCESSING);

    // Local pass: directed edges (v, u) with u local are intersected
    // in place (lines 2–4 of Algorithm 2).
    let mut local_count = 0u64;
    for v in o.owned_range() {
        let av = o.a_owned(v);
        for &u in av {
            if o.is_owned(u) {
                let (c, ops) = merge_count(av, o.a_owned(u));
                local_count += c;
                ctx.add_work(ops + 1);
            }
        }
    }
    ctx.end_phase(phases::LOCAL);

    // Global pass: stream A(v) to owners of remote heads (line 5), process
    // incoming neighborhoods (lines 6–7).
    let delta = cfg.resolve_delta(lg.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = o.partition().clone();
    let mut remote_count = 0u64;
    let dedup = cfg.dedup;
    let handler = |o: &tricount_graph::dist::OrientedLocalGraph,
                   ctx: &mut Ctx,
                   env: Envelope<'_>,
                   acc: &mut u64| {
        if dedup {
            // payload = [v, A(v)...]: intersect with every local head u
            let a = &env.payload[1..];
            for &u in a {
                if o.is_owned(u) {
                    let (c, ops) = merge_count(a, o.a_owned(u));
                    *acc += c;
                    ctx.add_work(ops + 1);
                }
            }
        } else {
            // payload = [v, u, A(v)...]: intersect with the named edge head
            let u = env.payload[1];
            debug_assert!(o.is_owned(u));
            let a = &env.payload[2..];
            let (c, ops) = merge_count(a, o.a_owned(u));
            *acc += c;
            ctx.add_work(ops + 1);
        }
    };

    let mut scratch: Vec<u64> = Vec::new();
    for v in o.owned_range() {
        let av = o.a_owned(v);
        let mut last_rank: Option<usize> = None;
        for &u in av {
            if o.is_owned(u) {
                continue;
            }
            let j = part.rank_of(u);
            if dedup {
                if last_rank == Some(j) {
                    continue;
                }
                last_rank = Some(j);
                scratch.clear();
                scratch.push(v);
                scratch.extend_from_slice(av);
            } else {
                scratch.clear();
                scratch.push(v);
                scratch.push(u);
                scratch.extend_from_slice(av);
            }
            q.post(ctx, j, &scratch);
            // interleaved polling keeps receive buffers drained (the paper:
            // "each PE continuously polls for incoming messages")
            while q.poll(ctx, &mut |ctx, env| {
                handler(&o, ctx, env, &mut remote_count)
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        handler(&o, ctx, env, &mut remote_count)
    });

    let total = ctx.allreduce_sum(&[local_count + remote_count])[0];
    ctx.end_phase(phases::GLOBAL);
    total
}

//! DITRIC (paper §IV-A/§IV-B): the distributed EDGEITERATOR of Algorithm 2
//! with dynamically buffered message aggregation, surrogate deduplication,
//! and optional grid-indirect delivery. Also covers the unaggregated
//! baseline of Fig. 2 (`Aggregation::None`, `dedup = false`).
//!
//! Phase structure (matching the break-down of Fig. 7):
//! 1. `preprocessing` — ghost degree exchange + orientation.
//! 2. `local` — intersections for directed edges whose head is local.
//! 3. `global` — neighborhoods streamed to the owners of cut-edge heads via
//!    the sparse all-to-all; receivers intersect; final all-reduce.
//!
//! Intersections go through the adaptive kernel dispatcher (without a hub
//! index — DITRIC is the one-shot path and builds no resident state), and
//! the local pass optionally runs degree-aware chunked on the `par` pool
//! with a canonical-order reduction, exactly like CETRIC's.

use tricount_cache::{CacheSession, ListKind};
use tricount_comm::{Ctx, Envelope, MessageQueue, QueueConfig};
use tricount_graph::dist::{LocalGraph, OrientedLocalGraph};
use tricount_graph::kernels::{balanced_chunks, Dispatcher, KernelCounters};
use tricount_graph::Partition;
use tricount_graph::VertexId;
use tricount_par::Pool;

use crate::config::DistConfig;
use crate::dist::dispatch::DispatchReport;
use crate::dist::phases;
use crate::dist::preprocess;

/// Runs DITRIC on this rank; returns the *global* triangle count (identical
/// on every rank after the final reduction).
pub fn run_rank(ctx: &mut Ctx, lg: LocalGraph, cfg: &DistConfig) -> u64 {
    run_rank_stats(ctx, lg, cfg).0
}

/// One owned vertex's local-pass work: intersect `A(v)` with `A(u)` for
/// every locally-owned head `u ∈ A(v)`. Shared by the sequential and
/// chunked drivers.
#[inline]
fn count_local_vertex(o: &OrientedLocalGraph, v: VertexId, d: &mut Dispatcher<'_>) -> (u64, u64) {
    let av = o.a_owned(v);
    let mut count = 0u64;
    let mut work = 0u64;
    for &u in av {
        if o.is_owned(u) {
            let (c, ops) = d.count(av, Some(v), o.a_owned(u), Some(u));
            count += c;
            work += ops + 1;
        }
    }
    (count, work)
}

/// [`run_rank`] plus this rank's per-phase kernel-dispatch tallies.
pub fn run_rank_stats(ctx: &mut Ctx, lg: LocalGraph, cfg: &DistConfig) -> (u64, DispatchReport) {
    run_rank_cached(ctx, lg, cfg, &mut CacheSession::off())
}

/// Receive side of the global pass. Wire formats:
///
/// * inactive, dedup      — `[v, A(v)...]` (original);
/// * inactive, non-dedup  — `[v, u, A(v)...]` (original);
/// * active, dedup        — `[v, 0, A(v)...]` or reference `[v, 1]`;
/// * active, non-dedup    — `[v, u, 0, A(v)...]` or reference `[v, u, 1]`.
///
/// References resolve the oriented list cached from `v`'s owner.
#[allow(clippy::too_many_arguments)]
fn global_handler(
    o: &OrientedLocalGraph,
    part: &Partition,
    dedup: bool,
    ctx: &mut Ctx,
    env: Envelope<'_>,
    acc: &mut u64,
    d: &mut Dispatcher<'_>,
    session: &mut CacheSession<'_>,
) {
    let head_words = if dedup { 1 } else { 2 };
    let resolved: Vec<u64>;
    let a: &[u64] = if session.active() {
        let v = env.payload[0];
        let owner = part.rank_of(v);
        if env.payload[head_words] == 1 {
            resolved = session.recv_ref(owner, ListKind::Oriented, v);
            &resolved
        } else {
            let a = &env.payload[head_words + 1..];
            session.recv_full(owner, ListKind::Oriented, v, a);
            a
        }
    } else {
        &env.payload[head_words..]
    };
    if dedup {
        // Intersect with every local head u ∈ A(v).
        for &u in a {
            if o.is_owned(u) {
                let (c, ops) = d.count(a, None, o.a_owned(u), Some(u));
                *acc += c;
                ctx.add_work(ops + 1);
            }
        }
    } else {
        // Intersect with the named edge head only.
        let u = env.payload[1];
        debug_assert!(o.is_owned(u));
        let (c, ops) = d.count(a, None, o.a_owned(u), Some(u));
        *acc += c;
        ctx.add_work(ops + 1);
    }
}

/// [`run_rank_stats`] with a live adjacency-cache session over the oriented
/// lists the global pass ships. With an off session this *is* the original
/// protocol, wire format and meters included.
pub fn run_rank_cached(
    ctx: &mut Ctx,
    mut lg: LocalGraph,
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> (u64, DispatchReport) {
    preprocess(ctx, &mut lg, cfg);
    let o = lg.orient(cfg.ordering, false);
    ctx.end_phase(phases::PREPROCESSING);

    // Local pass: directed edges (v, u) with u local are intersected
    // in place (lines 2–4 of Algorithm 2).
    let policy = cfg.kernels;
    let owned: Vec<VertexId> = o.owned_range().collect();
    let (local_count, local_dispatch) =
        if policy.chunking && policy.pool_workers > 1 && !owned.is_empty() {
            let weights: Vec<u64> = owned.iter().map(|&v| o.a_owned(v).len() as u64).collect();
            let ranges = balanced_chunks(&weights, policy.pool_workers.saturating_mul(4));
            let pool = Pool::new(policy.pool_workers);
            let results = pool.run_tasks(ranges, |_, (s, e)| {
                let mut d = Dispatcher::new(policy);
                let mut count = 0u64;
                let mut work = 0u64;
                for &v in &owned[s..e] {
                    let (c, w) = count_local_vertex(&o, v, &mut d);
                    count += c;
                    work += w;
                }
                (count, work, d.counters())
            });
            let mut count = 0u64;
            let mut work = 0u64;
            let mut counters = KernelCounters::default();
            for r in results {
                count += r.result.0;
                work += r.result.1;
                counters.absorb(&r.result.2);
            }
            ctx.add_work(work);
            (count, counters)
        } else {
            let mut d = Dispatcher::new(policy);
            let mut count = 0u64;
            for &v in &owned {
                let (c, w) = count_local_vertex(&o, v, &mut d);
                count += c;
                ctx.add_work(w);
            }
            (count, d.counters())
        };
    ctx.end_phase(phases::LOCAL);

    // Global pass: stream A(v) to owners of remote heads (line 5), process
    // incoming neighborhoods (lines 6–7).
    let delta = cfg.resolve_delta(lg.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = o.partition().clone();
    let mut remote_count = 0u64;
    let mut gd = Dispatcher::new(policy);
    let dedup = cfg.dedup;

    let mut scratch: Vec<u64> = Vec::new();
    for v in o.owned_range() {
        let av = o.a_owned(v);
        let mut last_rank: Option<usize> = None;
        for &u in av {
            if o.is_owned(u) {
                continue;
            }
            let j = part.rank_of(u);
            if dedup && last_rank == Some(j) {
                continue;
            }
            last_rank = Some(j);
            scratch.clear();
            scratch.push(v);
            if !dedup {
                scratch.push(u);
            }
            if session.active() {
                if session.sender_check(j, ListKind::Oriented, v, av.len() as u64) {
                    scratch.push(1);
                } else {
                    scratch.push(0);
                    scratch.extend_from_slice(av);
                }
            } else {
                session.sender_check(j, ListKind::Oriented, v, av.len() as u64);
                scratch.extend_from_slice(av);
            }
            q.post(ctx, j, &scratch);
            // interleaved polling keeps receive buffers drained (the paper:
            // "each PE continuously polls for incoming messages")
            while q.poll(ctx, &mut |ctx, env| {
                global_handler(
                    &o,
                    &part,
                    dedup,
                    ctx,
                    env,
                    &mut remote_count,
                    &mut gd,
                    session,
                )
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        global_handler(
            &o,
            &part,
            dedup,
            ctx,
            env,
            &mut remote_count,
            &mut gd,
            session,
        )
    });

    let total = ctx.allreduce_sum(&[local_count + remote_count])[0];
    ctx.end_phase(phases::GLOBAL);

    let mut report = DispatchReport::of(phases::LOCAL, local_dispatch);
    report.add(phases::GLOBAL, gd.counters());
    (total, report)
}

//! The distributed edge-update protocol: incremental triangle maintenance
//! over the resident per-rank state.
//!
//! An update run applies one canonicalised batch (see
//! `tricount_delta::batch`) to every rank's adjacency overlay and returns
//! the exact global triangle delta, in three registered phases:
//!
//! 1. **`update_route`** — the ingress rank (rank 0) holds the batch and
//!    routes each edge `{u, v}` to the owner of `u` *and* the owner of `v`
//!    via one `alltoallv`. Each owner then filters no-ops against its
//!    current (base ⊕ overlay) adjacency: an insert of a present edge or a
//!    delete of an absent one is discarded. Both owners reach the same
//!    verdict independently — undirected adjacency is symmetric — so no
//!    agreement round is needed.
//! 2. **`update_count`** — the triangle delta. With `D` the effective
//!    deletions and `I` the effective insertions, the post-state is
//!    `G' = (G − D) + I` and
//!    `Δ = |{triangles of G' with an I-edge}| − |{triangles of G with a
//!    D-edge}|`: deleting `D` from `G` destroys exactly the triangles of
//!    `G` using a `D`-edge, and adding `I` to `G − D` creates exactly the
//!    triangles of `G'` using an `I`-edge. Each pass counts per batch edge
//!    `(u, v)` (initiated by the owner of the canonical tail `u`, answered
//!    locally or shipped to the owner of `v` through the §IV-A buffered
//!    queue) the distributed intersection `|N(u) ∩ N(v)|` — against the
//!    pre-state for deletions, the post-state for insertions — with the
//!    **min-edge correction** for same-batch edge pairs: a triangle whose
//!    batch edges are `S` is counted only by the lexicographically smallest
//!    edge of `S`, so triangles closed by two or three batch edges are
//!    neither double-counted nor missed. The correction is decidable at the
//!    counting rank: of the triangle's other two edges, one is incident to
//!    `u` (checked against the shipped batch-neighbor list of `u`) and one
//!    to `v` (checked against the local batch-neighbor list of `v`).
//!    Between the passes the batch is applied to the overlay, and the
//!    partial deltas are combined by one `allreduce`.
//! 3. **`update_ghost_refresh`** — every rank broadcasts `(v, degree)` for
//!    its *touched* owned vertices (endpoints of effective edges); ranks
//!    ghosting a touched vertex — or gaining it as a new ghost through an
//!    inserted cut edge — record the override in their overlay. This keeps
//!    ghost degrees current for exactly the vertices whose degrees
//!    changed, so a later compaction re-orients by degree with **no**
//!    communication.
//!
//! [`compact_rank`] is that compaction: merge the overlay into a fresh
//! base, re-orient, re-contract — the `compaction` phase, communication
//! free.

use std::collections::BTreeMap;
use std::sync::Mutex;

use tricount_cache::{CachePass, CacheSession, ListKind};
use tricount_comm::{
    run_sim, Ctx, Envelope, MessageQueue, QueueConfig, RunStats, SimOptions, Trace,
};
use tricount_delta::{CanonicalBatch, CanonicalOp, Overlay};
use tricount_graph::dist::LocalGraph;
use tricount_graph::kernels::{Dispatcher, KernelCounters};
use tricount_graph::VertexId;

use crate::config::DistConfig;
use crate::dist::phases;
use crate::dist::residency::PreparedRank;

/// One rank's result of an update run. The `inserted` / `deleted` /
/// `noops` / `triangles_*` fields are global (identical on every rank,
/// combined by the final allreduce); the rest are rank-local.
#[derive(Debug, Clone, Default)]
pub struct DeltaOutcome {
    /// Effective insertions applied, globally.
    pub inserted: u64,
    /// Effective deletions applied, globally.
    pub deleted: u64,
    /// Canonical operations filtered as no-ops, globally.
    pub noops: u64,
    /// Triangles gained by the insertions, globally.
    pub triangles_added: u64,
    /// Triangles lost to the deletions, globally.
    pub triangles_removed: u64,
    /// The effective edges whose canonical tail this rank owns
    /// (`(is_insert, u, v)`, `u < v`) — each effective edge appears in
    /// exactly one rank's list, so consumers can fold degree changes
    /// without double counting.
    pub tail_effective: Vec<(bool, VertexId, VertexId)>,
    /// Overlay entries on this rank after applying the batch.
    pub overlay_entries: u64,
    /// Base adjacency entries on this rank (the compaction denominator).
    pub base_entries: u64,
    /// Kernel-dispatch tallies of this rank's counting passes (deletions +
    /// insertions), rank-local.
    pub kernels: KernelCounters,
}

/// Applies one canonical batch on this rank: routes, filters, counts the
/// triangle delta, mutates the overlay, refreshes touched ghost degrees.
/// Collective — every rank must call it with the same `batch` and `cfg`.
pub fn apply_batch_rank(
    ctx: &mut Ctx,
    lg: &LocalGraph,
    ov: &mut Overlay,
    batch: &CanonicalBatch,
    cfg: &DistConfig,
) -> DeltaOutcome {
    apply_batch_rank_cached(ctx, lg, ov, batch, cfg, &mut CacheSession::off())
}

/// [`apply_batch_rank`] with a live adjacency-cache session. The update
/// protocol is the cache's single *writer*: after the effectiveness filter
/// of `update_route`, each owner looks its touched vertices up in its
/// mirror partitions and sends every holder of a `(Full, v)` entry either a
/// targeted invalidation or an in-place patch (the inserted/deleted
/// neighbor ids) through one extra `alltoallv` inside the `update_route`
/// phase — a patched entry equals the post-state merged list, so later
/// reference sends stay bit-exact. The deletion count pass streams
/// *pre-state* lists, so it runs with lookups and staging disabled
/// ([`CachePass::Pre`]); the insertion pass runs post-state and
/// participates fully. With an off session this *is* the original
/// protocol — no extra collective, identical meters.
pub fn apply_batch_rank_cached(
    ctx: &mut Ctx,
    lg: &LocalGraph,
    ov: &mut Overlay,
    batch: &CanonicalBatch,
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> DeltaOutcome {
    let p = ctx.num_ranks();
    let part = lg.partition().clone();

    // Phase 1: route each edge to the owner(s) of its endpoints. Only the
    // ingress rank holds the batch.
    let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
    if ctx.rank() == 0 {
        for op in &batch.ops {
            let ru = part.rank_of(op.u);
            let rv = part.rank_of(op.v);
            let msg = [u64::from(op.insert), op.u, op.v];
            outgoing[ru].extend_from_slice(&msg);
            if rv != ru {
                outgoing[rv].extend_from_slice(&msg);
            }
        }
    }
    let incoming = ctx.alltoallv(outgoing);
    let mut my_ops: Vec<CanonicalOp> = Vec::new();
    for msg in incoming {
        for c in msg.chunks_exact(3) {
            my_ops.push(CanonicalOp {
                insert: c[0] == 1,
                u: c[1],
                v: c[2],
            });
        }
    }

    // Effectiveness filter + per-owned-vertex batch-neighbor lists (both
    // directions — the min-edge correction needs every effective batch
    // edge incident to a vertex, not just the ones it is the tail of).
    let mut ins_nbrs: BTreeMap<VertexId, Vec<VertexId>> = BTreeMap::new();
    let mut del_nbrs: BTreeMap<VertexId, Vec<VertexId>> = BTreeMap::new();
    let mut effective: Vec<CanonicalOp> = Vec::new();
    let mut tail_effective: Vec<(bool, VertexId, VertexId)> = Vec::new();
    let (mut ins_tail, mut del_tail, mut noop_tail) = (0u64, 0u64, 0u64);
    for op in &my_ops {
        let (owned_end, other) = if lg.is_owned(op.u) {
            (op.u, op.v)
        } else {
            (op.v, op.u)
        };
        let present = ov.has_edge(lg, owned_end, other);
        let am_tail = lg.is_owned(op.u);
        if op.insert == present {
            // insert of a present edge / delete of an absent one: no-op
            if am_tail {
                noop_tail += 1;
            }
            continue;
        }
        effective.push(*op);
        if am_tail {
            if op.insert {
                ins_tail += 1;
            } else {
                del_tail += 1;
            }
            tail_effective.push((op.insert, op.u, op.v));
        }
        let nbrs = if op.insert {
            &mut ins_nbrs
        } else {
            &mut del_nbrs
        };
        if lg.is_owned(op.u) {
            nbrs.entry(op.u).or_default().push(op.v);
        }
        if lg.is_owned(op.v) {
            nbrs.entry(op.v).or_default().push(op.u);
        }
    }
    for l in ins_nbrs.values_mut() {
        l.sort_unstable();
    }
    for l in del_nbrs.values_mut() {
        l.sort_unstable();
    }
    ctx.add_work(my_ops.len() as u64 + 1);

    // Coherence: the owners of the touched vertices tell every PE holding
    // a cached `(Full, v)` list to invalidate or patch it, before any
    // counting consumes cache state. Runs only with an active session, so
    // cache-off meters are untouched.
    if session.active() && cfg.cache.coherence {
        ctx.with_span("cache_coherence", |ctx| {
            let mut out: Vec<Vec<u64>> = vec![Vec::new(); p];
            let patch = cfg.cache.patch;
            let empty: &[VertexId] = &[];
            let keys: std::collections::BTreeSet<VertexId> =
                ins_nbrs.keys().chain(del_nbrs.keys()).copied().collect();
            for &v in &keys {
                let holders = session.holders_of_full(v);
                if holders.is_empty() {
                    continue;
                }
                let ins = ins_nbrs.get(&v).map(|l| l.as_slice()).unwrap_or(empty);
                let del = del_nbrs.get(&v).map(|l| l.as_slice()).unwrap_or(empty);
                for j in holders {
                    if patch {
                        for &w in ins {
                            out[j].extend_from_slice(&[v, 1, w]);
                        }
                        for &w in del {
                            out[j].extend_from_slice(&[v, 2, w]);
                        }
                        session.mirror_patch(j, v, ins.len() as u64, del.len() as u64);
                    } else {
                        out[j].extend_from_slice(&[v, 0, 0]);
                        session.mirror_invalidate(j, v);
                    }
                }
            }
            let incoming = ctx.alltoallv(out);
            for (owner, recs) in incoming.iter().enumerate() {
                for r in recs.chunks_exact(3) {
                    session.apply_coherence(owner, r[0], r[1], r[2]);
                }
            }
        });
    }
    ctx.end_phase(phases::UPDATE_ROUTE);

    // Phase 2: count the triangle delta. Deletions intersect the
    // pre-state; then the batch lands in the overlay; insertions intersect
    // the post-state.
    let queue_cfg = QueueConfig {
        delta: cfg.resolve_delta(lg.num_local_entries().max(64)),
        routing: cfg.routing,
    };
    let del_edges: Vec<(VertexId, VertexId)> = tail_effective
        .iter()
        .filter(|(ins, _, _)| !ins)
        .map(|&(_, u, v)| (u, v))
        .collect();
    let ins_edges: Vec<(VertexId, VertexId)> = tail_effective
        .iter()
        .filter(|(ins, _, _)| *ins)
        .map(|&(_, u, v)| (u, v))
        .collect();

    let mut disp = Dispatcher::new(cfg.kernels);
    session.set_pass(CachePass::Pre);
    let removed_partial = ctx.with_span("count_deletions", |ctx| {
        count_pass(
            ctx, lg, ov, &del_edges, &del_nbrs, queue_cfg, &mut disp, session,
        )
    });
    session.set_pass(CachePass::Post);
    ctx.with_span("apply_overlay", |ctx| {
        let mut applied = 0u64;
        for op in &effective {
            for (a, b) in [(op.u, op.v), (op.v, op.u)] {
                if lg.is_owned(a) {
                    if op.insert {
                        ov.insert(lg, a, b);
                    } else {
                        ov.delete(lg, a, b);
                    }
                    applied += 1;
                }
            }
        }
        ctx.add_work(applied + 1);
    });
    let added_partial = ctx.with_span("count_insertions", |ctx| {
        count_pass(
            ctx, lg, ov, &ins_edges, &ins_nbrs, queue_cfg, &mut disp, session,
        )
    });
    let global = ctx.allreduce_sum(&[
        removed_partial,
        added_partial,
        del_tail,
        ins_tail,
        noop_tail,
    ]);
    ctx.end_phase(phases::UPDATE_COUNT);

    // Phase 3: targeted ghost-degree refresh. Owners broadcast the new
    // degrees of their touched vertices; ghosting ranks record overrides.
    let touched: std::collections::BTreeSet<VertexId> =
        ins_nbrs.keys().chain(del_nbrs.keys()).copied().collect();
    let mut announce: Vec<u64> = Vec::with_capacity(touched.len() * 2);
    for &v in &touched {
        announce.push(v);
        announce.push(ov.degree_after(lg, v));
    }
    let gathered = ctx.allgatherv(announce);
    for (r, pairs) in gathered.iter().enumerate() {
        if r == ctx.rank() {
            continue;
        }
        for pair in pairs.chunks_exact(2) {
            if ov.tracks_remote(lg, pair[0]) {
                ov.set_ghost_degree(pair[0], pair[1]);
            }
        }
    }
    ctx.end_phase(phases::UPDATE_GHOST_REFRESH);

    DeltaOutcome {
        triangles_removed: global[0],
        triangles_added: global[1],
        deleted: global[2],
        inserted: global[3],
        noops: global[4],
        tail_effective,
        overlay_entries: ov.entries(),
        base_entries: lg.num_local_entries(),
        kernels: disp.counters(),
    }
}

/// One counting pass (deletion or insertion): for every batch edge
/// `(u, v)` whose tail this rank owns, the distributed intersection of the
/// *current* merged neighborhoods, with the min-edge same-batch
/// correction. Returns this rank's partial triangle count.
///
/// Intersections dispatch adaptively where a side is *clean* (its merged
/// view equals the base CSR slice, so probe kernels have a random-access
/// table); dirty sides stream through the merge kernel. The clean/dirty
/// verdict is overlay state — deterministic, schedule-independent.
#[allow(clippy::too_many_arguments)]
fn count_pass(
    ctx: &mut Ctx,
    lg: &LocalGraph,
    ov: &Overlay,
    tail_edges: &[(VertexId, VertexId)],
    batch_nbrs: &BTreeMap<VertexId, Vec<VertexId>>,
    queue_cfg: QueueConfig,
    disp: &mut Dispatcher<'_>,
    session: &mut CacheSession<'_>,
) -> u64 {
    let part = lg.partition().clone();
    let mut count = 0u64;
    let mut q = MessageQueue::new(ctx, queue_cfg);

    // Remote request — answered against the receiver's merged N(v) and
    // local B(v). Wire formats: `[u, v, |B(u)|, B(u)…, N(u)…]` with an off
    // session; with an active one, `[u, v, 0, |B(u)|, B(u)…, N(u)…]` full
    // sends or `[u, v, 1, |B(u)|, B(u)…]` references resolving the cached
    // `(Full, u)` merged list (patched to the post-state by coherence).
    let handler = |ctx: &mut Ctx,
                   env: Envelope<'_>,
                   acc: &mut u64,
                   d: &mut Dispatcher<'_>,
                   session: &mut CacheSession<'_>| {
        let u = env.payload[0];
        let v = env.payload[1];
        let resolved: Vec<u64>;
        let (bu, nu): (&[u64], &[u64]) = if session.active() {
            let blen = env.payload[3] as usize;
            let bu = &env.payload[4..4 + blen];
            if env.payload[2] == 1 {
                resolved = session.recv_ref(part.rank_of(u), ListKind::Full, u);
                (bu, &resolved)
            } else {
                let nu = &env.payload[4 + blen..];
                session.recv_full(part.rank_of(u), ListKind::Full, u, nu);
                (bu, nu)
            }
        } else {
            let blen = env.payload[2] as usize;
            (&env.payload[3..3 + blen], &env.payload[3 + blen..])
        };
        let bv = batch_nbrs.get(&v).map(|l| l.as_slice()).unwrap_or(&[]);
        let mut common = Vec::new();
        let ops = if ov.is_clean_at(v) {
            // N(v) is exactly the base slice — probe kernels are available.
            d.collect(nu, None, lg.neighbors(v), None, &mut common)
        } else {
            // Merged N(v) only streams; probe the stream into the shipped
            // slice (falls back to streaming merge when nu is the smaller).
            d.collect_iter(
                ov.merged_neighbors(lg, v),
                ov.degree_after(lg, v) as usize,
                nu,
                None,
                &mut common,
            )
        };
        let (delta, checks) = min_edge_filter(u, v, &common, bu, bv);
        ctx.add_work(ops + checks + 1);
        *acc += delta;
    };

    let mut scratch: Vec<u64> = Vec::new();
    let mut common: Vec<VertexId> = Vec::new();
    let empty: &[VertexId] = &[];
    for &(u, v) in tail_edges {
        let bu = batch_nbrs
            .get(&u)
            .map(|l| l.as_slice())
            .expect("tail of an effective edge has a batch-neighbor list");
        if lg.is_owned(v) {
            let bv = batch_nbrs.get(&v).map(|l| l.as_slice()).unwrap_or(empty);
            common.clear();
            let (u_clean, v_clean) = (ov.is_clean_at(u), ov.is_clean_at(v));
            let ops = if u_clean && v_clean {
                disp.collect(lg.neighbors(u), None, lg.neighbors(v), None, &mut common)
            } else if v_clean {
                disp.collect_iter(
                    ov.merged_neighbors(lg, u),
                    ov.degree_after(lg, u) as usize,
                    lg.neighbors(v),
                    None,
                    &mut common,
                )
            } else if u_clean {
                disp.collect_iter(
                    ov.merged_neighbors(lg, v),
                    ov.degree_after(lg, v) as usize,
                    lg.neighbors(u),
                    None,
                    &mut common,
                )
            } else {
                disp.merge_iters_collect(
                    ov.merged_neighbors(lg, u),
                    ov.merged_neighbors(lg, v),
                    &mut common,
                )
            };
            let (d, checks) = min_edge_filter(u, v, &common, bu, bv);
            ctx.add_work(ops + checks + 1);
            count += d;
        } else {
            let j = part.rank_of(v);
            scratch.clear();
            scratch.push(u);
            scratch.push(v);
            if session.active() {
                if session.sender_check(j, ListKind::Full, u, ov.degree_after(lg, u)) {
                    scratch.push(1);
                    scratch.push(bu.len() as u64);
                    scratch.extend_from_slice(bu);
                } else {
                    scratch.push(0);
                    scratch.push(bu.len() as u64);
                    scratch.extend_from_slice(bu);
                    scratch.extend(ov.merged_neighbors(lg, u));
                }
            } else {
                session.sender_check(j, ListKind::Full, u, ov.degree_after(lg, u));
                scratch.push(bu.len() as u64);
                scratch.extend_from_slice(bu);
                scratch.extend(ov.merged_neighbors(lg, u));
            }
            q.post(ctx, j, &scratch);
            while q.poll(ctx, &mut |ctx, env| {
                handler(ctx, env, &mut count, disp, session)
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        handler(ctx, env, &mut count, disp, session)
    });
    count
}

/// The same-batch correction: of the triangle `(u, v, w)` discovered via
/// batch edge `e = (u, v)`, count it iff `e` is the lexicographically
/// smallest batch edge of the triangle. `bu` / `bv` are the sorted
/// effective batch neighbors of `u` / `v` (for the pass's kind), which is
/// exactly the membership oracle for the triangle's other two edges
/// `{u, w}` and `{v, w}`. Returns `(count, comparisons)`.
fn min_edge_filter(
    u: VertexId,
    v: VertexId,
    common: &[VertexId],
    bu: &[VertexId],
    bv: &[VertexId],
) -> (u64, u64) {
    let e = (u, v);
    let mut count = 0u64;
    let mut checks = 0u64;
    for &w in common {
        checks += 2;
        let uw_in_batch = bu.binary_search(&w).is_ok();
        let vw_in_batch = bv.binary_search(&w).is_ok();
        let smaller_batch_edge =
            (uw_in_batch && (u.min(w), u.max(w)) < e) || (vw_in_batch && (v.min(w), v.max(w)) < e);
        if !smaller_batch_edge {
            count += 1;
        }
    }
    (count, checks)
}

/// Compacts this rank's overlay into fresh prepared state: merge the delta
/// lists into a new base local graph (ghost degrees installed from the
/// base exchange plus the refresh overrides — no communication), then
/// re-orient and re-contract. Resets the overlay. Collective only in the
/// phase-accounting sense: every rank must call it, but no messages flow.
pub fn compact_rank(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    ov: &mut Overlay,
    cfg: &DistConfig,
) -> PreparedRank {
    let merged = ctx.with_span("merge_overlay", |ctx| {
        ctx.add_work(prep.local.num_local_entries() + ov.entries() + 1);
        ov.merged_local_graph(&prep.local)
    });
    let oriented = ctx.with_span("orient_expand", |_| merged.orient(cfg.ordering, true));
    let contracted = ctx.with_span("contract_cut_graph", |_| oriented.contracted());
    let (hubs_oriented, hubs_contracted) = ctx.with_span("build_hub_index", |_| {
        super::residency::build_hub_indexes(&oriented, &contracted, cfg.kernels.hub_threshold)
    });
    ov.reset();
    ctx.end_phase(phases::COMPACTION);
    PreparedRank {
        local: merged,
        oriented,
        contracted,
        hubs_oriented,
        hubs_contracted,
        generation: prep.generation + 1,
    }
}

/// Test/driver convenience: runs [`apply_batch_rank`] on every rank of a
/// prepared residency under the simulated machine, with overlays passed in
/// shared cells. Returns per-rank outcomes, the run's metered statistics
/// and (when `opts.record_trace`) the message trace.
pub fn apply_batch_sim(
    ranks: &[PreparedRank],
    overlays: &[Mutex<Overlay>],
    batch: &CanonicalBatch,
    cfg: &DistConfig,
    opts: &SimOptions,
) -> (Vec<DeltaOutcome>, RunStats, Option<Trace>) {
    assert_eq!(ranks.len(), overlays.len());
    let sim = run_sim(ranks.len(), opts, |ctx: &mut Ctx| {
        let mut ov = overlays[ctx.rank()].lock().unwrap();
        apply_batch_rank(ctx, &ranks[ctx.rank()].local, &mut ov, batch, cfg)
    });
    (sim.output.results, sim.output.stats, sim.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::cetric;
    use crate::dist::residency::build_residency;
    use crate::seq;
    use tricount_delta::{apply_to_csr, random_batch};
    use tricount_graph::dist::DistGraph;
    use tricount_graph::Csr;

    fn residency_of(g: &Csr, p: usize, cfg: &DistConfig) -> Vec<PreparedRank> {
        let dg = DistGraph::new_balanced_vertices(g, p);
        build_residency(dg, cfg, &SimOptions::default()).0
    }

    fn count_ranks(ranks: &[PreparedRank], cfg: &DistConfig) -> u64 {
        let prepared: Vec<Mutex<Option<PreparedRank>>> =
            ranks.iter().map(|r| Mutex::new(Some(r.clone()))).collect();
        let cfg = *cfg;
        let sim = run_sim(ranks.len(), &SimOptions::default(), move |ctx: &mut Ctx| {
            let prep = prepared[ctx.rank()].lock().unwrap().take().unwrap();
            cetric::count_prepared(ctx, &prep, &cfg)
        });
        sim.output.results[0]
    }

    #[test]
    fn incremental_delta_matches_rebuild_across_pe_counts() {
        let cfg = DistConfig::default();
        let g0 = tricount_gen::rgg2d_default(300, 17);
        let before = seq::compact_forward(&g0).triangles;
        for p in [1usize, 2, 3, 4] {
            let ranks = residency_of(&g0, p, &cfg);
            let overlays: Vec<Mutex<Overlay>> = ranks
                .iter()
                .map(|r| Mutex::new(Overlay::for_local(&r.local)))
                .collect();
            let mut cur = g0.clone();
            let mut resident = before;
            for round in 0..3u64 {
                let batch = random_batch(&cur, 25, 1000 * round + p as u64).canonicalize();
                let (outs, _, _) =
                    apply_batch_sim(&ranks, &overlays, &batch, &cfg, &SimOptions::default());
                let next = apply_to_csr(&cur, &batch);
                let expect = seq::compact_forward(&next).triangles;
                for o in &outs {
                    assert_eq!(o.triangles_added, outs[0].triangles_added);
                    assert_eq!(o.triangles_removed, outs[0].triangles_removed);
                }
                resident = resident + outs[0].triangles_added - outs[0].triangles_removed;
                assert_eq!(
                    resident, expect,
                    "p={p} round={round}: incremental count diverged from rebuild"
                );
                cur = next;
            }
        }
    }

    #[test]
    fn same_batch_corrections_are_exact() {
        // A hand-built case where intra-batch pairs would double-count
        // without the min-edge rule: insert all three edges of a fresh
        // triangle in one batch, plus a second triangle sharing an edge.
        let lists: Vec<Vec<u64>> = vec![vec![], vec![], vec![], vec![], vec![4], vec![3]];
        let g = Csr::from_neighbor_lists(lists);
        assert_eq!(seq::compact_forward(&g).triangles, 0);
        let cfg = DistConfig::default();
        let mut batch = tricount_delta::UpdateBatch::new();
        // triangle {0,1,2} entirely new; triangle {0,1,3} reusing edge (0,1)
        for (a, b) in [(0, 1), (1, 2), (0, 2), (1, 3), (0, 3)] {
            batch.insert(a, b);
        }
        let batch = batch.canonicalize();
        for p in [1usize, 2, 3] {
            let ranks = residency_of(&g, p, &cfg);
            let overlays: Vec<Mutex<Overlay>> = ranks
                .iter()
                .map(|r| Mutex::new(Overlay::for_local(&r.local)))
                .collect();
            let (outs, _, _) =
                apply_batch_sim(&ranks, &overlays, &batch, &cfg, &SimOptions::default());
            assert_eq!(outs[0].triangles_added, 2, "p={p}");
            assert_eq!(outs[0].triangles_removed, 0, "p={p}");
            assert_eq!(outs[0].inserted, 5, "p={p}");

            // now delete the shared edge: both triangles die, counted once
            let mut del = tricount_delta::UpdateBatch::new();
            del.delete(0, 1);
            let del = del.canonicalize();
            let (outs, _, _) =
                apply_batch_sim(&ranks, &overlays, &del, &cfg, &SimOptions::default());
            assert_eq!(outs[0].triangles_removed, 2, "p={p}");
            assert_eq!(outs[0].triangles_added, 0, "p={p}");
        }
    }

    #[test]
    fn compaction_preserves_count_without_communication() {
        let cfg = DistConfig::default();
        let g0 = tricount_gen::rgg2d_default(240, 23);
        let p = 4;
        let ranks = residency_of(&g0, p, &cfg);
        let overlays: Vec<Mutex<Overlay>> = ranks
            .iter()
            .map(|r| Mutex::new(Overlay::for_local(&r.local)))
            .collect();
        let batch = random_batch(&g0, 40, 99).canonicalize();
        let (_, _, _) = apply_batch_sim(&ranks, &overlays, &batch, &cfg, &SimOptions::default());
        let expect = seq::compact_forward(&apply_to_csr(&g0, &batch)).triangles;

        let prepared: Vec<Mutex<Option<PreparedRank>>> =
            ranks.iter().map(|r| Mutex::new(Some(r.clone()))).collect();
        let sim = run_sim(p, &SimOptions::default(), |ctx: &mut Ctx| {
            let prep = prepared[ctx.rank()].lock().unwrap().take().unwrap();
            let mut ov = overlays[ctx.rank()].lock().unwrap();
            compact_rank(ctx, &prep, &mut ov, &cfg)
        });
        let compacted = sim.output.results;
        let t = sim.output.stats.totals();
        assert_eq!(t.sent_messages, 0, "compaction must not send messages");
        assert_eq!(t.sent_words, 0);
        assert_eq!(t.coll_word_units, 0, "compaction must not use collectives");
        for ov in &overlays {
            assert!(ov.lock().unwrap().is_clean());
        }
        assert_eq!(count_ranks(&compacted, &cfg), expect);
    }
}

//! Distributed triangle *enumeration* (paper §IV-E: "Since each triangle is
//! found exactly once, this can be easily generalized to the case of
//! triangle enumeration"). The CETRIC pipeline, but instead of counting,
//! every rank emits the triangles it discovers; since discovery is unique,
//! the union over ranks is the exact triangle set.

use tricount_comm::{run_sim, Ctx, Envelope, MessageQueue, QueueConfig, SimOptions};
use tricount_graph::dist::{DistGraph, LocalGraph};
use tricount_graph::intersect::merge_collect;
use tricount_graph::VertexId;

use crate::config::DistConfig;
use crate::dist::phases;
use crate::dist::{into_cells, preprocess};

/// A triangle as an id-sorted triple.
pub type Triangle = (VertexId, VertexId, VertexId);

#[inline]
fn sorted(a: VertexId, b: VertexId, c: VertexId) -> Triangle {
    let mut t = [a, b, c];
    t.sort_unstable();
    (t[0], t[1], t[2])
}

/// Enumerates this rank's share of the triangles (each global triangle is
/// emitted by exactly one rank).
fn run_rank(ctx: &mut Ctx, mut lg: LocalGraph, cfg: &DistConfig) -> Vec<Triangle> {
    preprocess(ctx, &mut lg, cfg);
    let o = lg.orient(cfg.ordering, true);
    ctx.end_phase(phases::PREPROCESSING);

    let mut out: Vec<Triangle> = Vec::new();
    let mut commons: Vec<VertexId> = Vec::new();
    // local phase: type-1/2 triangles
    for v in o.owned_range() {
        let av = o.a_owned(v);
        for &u in av {
            let au = o.a_of(u).expect("head must be owned or ghost");
            commons.clear();
            let ops = merge_collect(av, au, &mut commons);
            ctx.add_work(ops + 1);
            out.extend(commons.iter().map(|&w| sorted(v, u, w)));
        }
    }
    for gi in 0..o.ghost_ids().len() {
        let gv = o.ghost_ids()[gi];
        let av = o.a_ghost(gi);
        for &u in av {
            commons.clear();
            let ops = merge_collect(av, o.a_owned(u), &mut commons);
            ctx.add_work(ops + 1);
            out.extend(commons.iter().map(|&w| sorted(gv, u, w)));
        }
    }
    let contracted = o.contracted();
    ctx.end_phase(phases::LOCAL);

    // global phase: type-3 triangles
    let delta = cfg.resolve_delta(lg.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = o.partition().clone();
    let owned = o.owned_range();
    let handler = |contracted: &tricount_graph::dist::ContractedGraph,
                   owned: &std::ops::Range<u64>,
                   ctx: &mut Ctx,
                   env: Envelope<'_>,
                   out: &mut Vec<Triangle>,
                   commons: &mut Vec<VertexId>| {
        let v = env.payload[0];
        let a = &env.payload[1..];
        for &u in a {
            if owned.contains(&u) {
                commons.clear();
                let ops = merge_collect(a, contracted.a_of(u), commons);
                ctx.add_work(ops + 1);
                out.extend(commons.iter().map(|&w| sorted(v, u, w)));
            }
        }
    };
    let mut scratch: Vec<u64> = Vec::new();
    let mut commons2: Vec<VertexId> = Vec::new();
    for (v, a) in contracted.nonempty() {
        let mut last_rank: Option<usize> = None;
        for &u in a {
            let j = part.rank_of(u);
            if last_rank == Some(j) {
                continue;
            }
            last_rank = Some(j);
            scratch.clear();
            scratch.push(v);
            scratch.extend_from_slice(a);
            q.post(ctx, j, &scratch);
            while q.poll(ctx, &mut |ctx, env| {
                handler(&contracted, &owned, ctx, env, &mut out, &mut commons2)
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        handler(&contracted, &owned, ctx, env, &mut out, &mut commons2)
    });
    ctx.end_phase(phases::GLOBAL);
    out
}

/// Enumerates all triangles of a partitioned graph. Returns the sorted,
/// duplicate-free list of id-sorted triples.
pub fn enumerate_on(dg: DistGraph, cfg: &DistConfig) -> Vec<Triangle> {
    let p = dg.num_ranks();
    let cells = into_cells(dg);
    let out = run_sim(p, &SimOptions::on(cfg.transport), |ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        run_rank(ctx, lg, cfg)
    });
    let mut all: Vec<Triangle> = out.output.results.into_iter().flatten().collect();
    all.sort_unstable();
    debug_assert!(
        all.windows(2).all(|w| w[0] != w[1]),
        "duplicate triangle emitted"
    );
    all
}

/// Convenience driver over a vertex-balanced partition.
pub fn enumerate(g: &tricount_graph::Csr, p: usize, cfg: &DistConfig) -> Vec<Triangle> {
    enumerate_on(DistGraph::new_balanced_vertices(g, p), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use tricount_graph::OrderingKind;

    fn expect(g: &tricount_graph::Csr) -> Vec<Triangle> {
        let mut t: Vec<Triangle> = seq::enumerate_triangles(g, OrderingKind::Degree)
            .into_iter()
            .map(|(a, b, c)| sorted(a, b, c))
            .collect();
        t.sort_unstable();
        t
    }

    #[test]
    fn matches_sequential_enumeration() {
        for (g, ps) in [
            (tricount_gen::gnm(200, 1600, 3), vec![1usize, 3, 6]),
            (tricount_gen::rmat_default(8, 5), vec![4, 7]),
            (tricount_gen::rgg2d_default(300, 2), vec![5]),
        ] {
            let want = expect(&g);
            for p in ps {
                let got = enumerate(&g, p, &DistConfig::default());
                assert_eq!(got, want, "p={p}");
            }
        }
    }

    #[test]
    fn every_emitted_triple_is_a_triangle() {
        let g = tricount_gen::rhg_default(300, 9);
        let tris = enumerate(&g, 4, &DistConfig::default());
        for (a, b, c) in &tris {
            assert!(a < b && b < c);
            assert!(g.has_edge(*a, *b) && g.has_edge(*b, *c) && g.has_edge(*a, *c));
        }
        assert_eq!(tris.len() as u64, seq::compact_forward(&g).triangles);
    }

    #[test]
    fn no_duplicates_across_ranks() {
        let g = tricount_gen::gnm(150, 2000, 8);
        let tris = enumerate(&g, 8, &DistConfig::default());
        let mut dedup = tris.clone();
        dedup.dedup();
        assert_eq!(tris.len(), dedup.len());
    }
}

//! The central registry of phase names emitted by the distributed drivers.
//!
//! Every `ctx.end_phase(..)` in `core::dist` must pass one of these
//! constants — the `tricount-verify` conformance check
//! (`check_phase_names`) scans recorded traces and flags any phase name
//! outside this list, so exporters, reports and dashboards can rely on a
//! closed vocabulary.

/// Setup work before counting: ghost degree exchange, orientation,
/// contraction (Algorithm 3 lines 1–4).
pub const PREPROCESSING: &str = "preprocessing";

/// Local counting over owned + ghost-expanded neighborhoods.
pub const LOCAL: &str = "local";

/// The distributed phase: cut-triangle queries/aggregation and the final
/// count reduction.
pub const GLOBAL: &str = "global";

/// Answer assembly after the global phase (e.g. LCC division).
pub const POSTPROCESS: &str = "postprocess";

/// Edge-support (truss-style) counting over cut edges.
pub const SUPPORT: &str = "support";

/// Cost-model-driven edge re-assignment before counting.
pub const REBALANCE: &str = "rebalance";

/// Routing each update edge of a batch to the owners of its endpoints
/// (`dist::delta`, phase 1 of an update run).
pub const UPDATE_ROUTE: &str = "update_route";

/// Incremental triangle-delta counting: deletion intersections on the
/// pre-state, overlay application, insertion intersections on the
/// post-state, final delta reduction (`dist::delta`, phase 2).
pub const UPDATE_COUNT: &str = "update_count";

/// Targeted ghost-degree refresh: new global degrees of the batch's
/// touched vertices, broadcast so compaction needs no communication
/// (`dist::delta`, phase 3).
pub const UPDATE_GHOST_REFRESH: &str = "update_ghost_refresh";

/// Overlay compaction: merging delta lists into a fresh base local graph
/// and re-running orientation + contraction, communication-free.
pub const COMPACTION: &str = "compaction";

/// The runtime-added trailing phase covering work after the last explicit
/// `end_phase` (named by `tricount-comm`, not by the drivers, but part of
/// the vocabulary consumers see in `RunStats`).
pub const REST: &str = "rest";

/// Every phase name that may appear in a `RunStats` / `PhaseEnded` event.
pub const ALL: &[&str] = &[
    PREPROCESSING,
    LOCAL,
    GLOBAL,
    POSTPROCESS,
    SUPPORT,
    REBALANCE,
    UPDATE_ROUTE,
    UPDATE_COUNT,
    UPDATE_GHOST_REFRESH,
    COMPACTION,
    REST,
];

/// Whether `name` is part of the registered phase vocabulary.
pub fn is_registered(name: &str) -> bool {
    ALL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free_and_closed() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a, b, "duplicate phase name");
            }
            assert!(is_registered(a));
        }
        assert!(!is_registered("warmup"));
        assert!(!is_registered(""));
        assert!(!is_registered("Local"), "registry is case-sensitive");
    }
}

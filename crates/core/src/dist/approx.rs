//! AMQ-approximate type-3 counting (paper §IV-E): CETRIC's global phase
//! sends an approximate-membership sketch `A'(v)` instead of the exact
//! contracted neighborhood. The receiver approximates `|A(u) ∩ A(v)|` by
//! querying every member of its contracted `A(u)` against `A'(v)` and
//! counting positives — an overestimate, corrected by subtracting the
//! expected false positives (the *truthful estimator*).
//!
//! Type-1/2 triangles are still counted exactly (they never leave the PE).

use tricount_amq::{truthful_estimate_unclamped, Amq, BloomFilter, SingleShotBloom};
use tricount_comm::{run_sim, Ctx, Envelope, MessageQueue, QueueConfig, SimOptions};
use tricount_graph::dist::{DistGraph, LocalGraph};
use tricount_graph::intersect::merge_count;

use crate::config::DistConfig;
use crate::dist::into_cells;
use crate::dist::phases;
use crate::dist::residency::{prepare_rank, PreparedRank};
use crate::result::ApproxResult;

/// Which AMQ to ship in the global phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Textbook Bloom filter.
    Bloom,
    /// Blocked single-probe filter (footnote 2's recommendation).
    SingleShot,
}

/// Configuration of the approximate global phase.
#[derive(Debug, Clone, Copy)]
pub struct ApproxConfig {
    /// Filter bits per neighborhood element.
    pub bits_per_key: f64,
    /// AMQ implementation.
    pub filter: FilterKind,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            bits_per_key: 8.0,
            filter: FilterKind::Bloom,
        }
    }
}

const TAG_BLOOM: u64 = 0;
const TAG_SINGLE_SHOT: u64 = 1;

/// One rank's contribution to the approximate count, aggregated by
/// [`approx_on`] (or by the query engine serving an `ApproxTriangles`
/// query against resident state).
#[derive(Debug, Clone, Copy)]
pub struct ApproxRankOutput {
    /// Exactly counted type-1/2 triangles on this rank.
    pub exact_local: u64,
    /// Raw positive AMQ queries (overestimate) on this rank.
    pub type3_raw: u64,
    /// This rank's truthful (false-positive corrected) type-3 contribution.
    pub type3_corrected: f64,
}

fn run_rank(
    ctx: &mut Ctx,
    lg: LocalGraph,
    cfg: &DistConfig,
    acfg: &ApproxConfig,
) -> ApproxRankOutput {
    let prep = prepare_rank(ctx, lg, cfg);
    approx_prepared(ctx, &prep, cfg, acfg)
}

/// The approximate counting phases on already prepared per-rank state:
/// exact local phase plus the sketched global phase. No setup communication
/// happens here.
pub fn approx_prepared(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    cfg: &DistConfig,
    acfg: &ApproxConfig,
) -> ApproxRankOutput {
    let o = &prep.oriented;

    // exact local phase (identical to CETRIC's)
    let mut exact_local = 0u64;
    for v in o.owned_range() {
        let av = o.a_owned(v);
        for &u in av {
            let au = o.a_of(u).expect("head must be owned or ghost");
            let (c, ops) = merge_count(av, au);
            exact_local += c;
            ctx.add_work(ops + 1);
        }
    }
    for gi in 0..o.ghost_ids().len() {
        let av = o.a_ghost(gi);
        for &u in av {
            let (c, ops) = merge_count(av, o.a_owned(u));
            exact_local += c;
            ctx.add_work(ops + 1);
        }
    }
    let contracted = &prep.contracted;
    ctx.end_phase(phases::LOCAL);

    // approximate global phase: per destination PE j, send the heads
    // A(v) ∩ V_j explicitly plus a sketch of the full contracted A(v):
    // payload = [tag, v, |heads|, heads..., filter words...]
    let delta = cfg.resolve_delta(prep.local.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = o.partition().clone();
    let mut raw = 0u64;
    // Per-intersection corrections are collected (not summed on arrival)
    // and reduced in a canonical order below: f64 addition is not
    // associative, and message arrival order depends on the schedule — the
    // deferred sorted sum keeps the estimate bit-identical across
    // schedules (the property `check_schedule_independence` asserts).
    let mut corrected = Vec::<f64>::new();
    let handler = |contracted: &tricount_graph::dist::ContractedGraph,
                   ctx: &mut Ctx,
                   env: Envelope<'_>,
                   raw: &mut u64,
                   corrected: &mut Vec<f64>| {
        let tag = env.payload[0];
        let nheads = env.payload[2] as usize;
        let heads = &env.payload[3..3 + nheads];
        let fwords = &env.payload[3 + nheads..];
        enum AnyAmq {
            B(BloomFilter),
            S(SingleShotBloom),
        }
        let amq = if tag == TAG_BLOOM {
            AnyAmq::B(BloomFilter::from_words(fwords))
        } else {
            AnyAmq::S(SingleShotBloom::from_words(fwords))
        };
        let (contains, fpr): (Box<dyn Fn(u64) -> bool>, f64) = match &amq {
            AnyAmq::B(f) => (Box::new(move |k| f.contains(k)), f.false_positive_rate()),
            AnyAmq::S(f) => (Box::new(move |k| f.contains(k)), f.false_positive_rate()),
        };
        for &u in heads {
            let au = contracted.a_of(u);
            let mut pos = 0u64;
            for &w in au {
                ctx.add_work(1);
                if contains(w) {
                    pos += 1;
                }
            }
            *raw += pos;
            corrected.push(truthful_estimate_unclamped(pos, au.len() as u64, fpr));
        }
    };

    let mut scratch: Vec<u64> = Vec::new();
    for (v, a) in contracted.nonempty() {
        // build the sketch of A(v) once per vertex
        let filter_words: Vec<u64> = match acfg.filter {
            FilterKind::Bloom => {
                let mut f = BloomFilter::new(a.len(), acfg.bits_per_key);
                for &w in a {
                    f.insert(w);
                }
                f.to_words()
            }
            FilterKind::SingleShot => {
                let mut f = SingleShotBloom::new(a.len(), acfg.bits_per_key, 4);
                for &w in a {
                    f.insert(w);
                }
                f.to_words()
            }
        };
        let tag = match acfg.filter {
            FilterKind::Bloom => TAG_BLOOM,
            FilterKind::SingleShot => TAG_SINGLE_SHOT,
        };
        // group heads by destination rank (contiguous in the sorted list)
        let mut i = 0usize;
        while i < a.len() {
            let j = part.rank_of(a[i]);
            let mut k = i + 1;
            while k < a.len() && part.rank_of(a[k]) == j {
                k += 1;
            }
            scratch.clear();
            scratch.push(tag);
            scratch.push(v);
            scratch.push((k - i) as u64);
            scratch.extend_from_slice(&a[i..k]);
            scratch.extend_from_slice(&filter_words);
            q.post(ctx, j, &scratch);
            while q.poll(ctx, &mut |ctx, env| {
                handler(contracted, ctx, env, &mut raw, &mut corrected)
            }) {}
            i = k;
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        handler(contracted, ctx, env, &mut raw, &mut corrected)
    });
    ctx.end_phase(phases::GLOBAL);

    corrected.sort_by(f64::total_cmp);
    ApproxRankOutput {
        exact_local,
        type3_raw: raw,
        type3_corrected: corrected.iter().sum(),
    }
}

/// Runs the approximate count on a partitioned graph.
pub fn approx_on(dg: DistGraph, cfg: &DistConfig, acfg: &ApproxConfig) -> ApproxResult {
    let p = dg.num_ranks();
    let cells = into_cells(dg);
    let out = run_sim(p, &SimOptions::on(cfg.transport), |ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        run_rank(ctx, lg, cfg, acfg)
    });
    let exact_local: u64 = out.output.results.iter().map(|r| r.exact_local).sum();
    let type3_raw: u64 = out.output.results.iter().map(|r| r.type3_raw).sum();
    // clamp only the aggregate: per-intersection clamping would bias upward
    let type3_corrected: f64 = out
        .output
        .results
        .iter()
        .map(|r| r.type3_corrected)
        .sum::<f64>()
        .max(0.0);
    ApproxResult {
        exact_local,
        type3_raw,
        type3_corrected,
        estimate: exact_local as f64 + type3_corrected,
        stats: out.output.stats,
    }
}

/// Convenience driver: partitions `g` over `p` PEs and runs the approximate
/// count.
pub fn approx(
    g: &tricount_graph::Csr,
    p: usize,
    cfg: &DistConfig,
    acfg: &ApproxConfig,
) -> ApproxResult {
    approx_on(DistGraph::new_balanced_vertices(g, p), cfg, acfg)
}

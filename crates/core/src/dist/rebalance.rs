//! Message-passing graph redistribution — the load-balancing experiment of
//! paper §IV-D.
//!
//! Arifuzzaman et al. rebalance vertices with degree-based cost functions
//! and a prefix-sum split, then *reload the graph from disk* (and do not
//! charge that time). The paper's authors "adapted [the approach] to
//! redistribute the graph using message passing, but observed that the
//! overhead of rebalancing does not pay off". This module implements exactly
//! that adaptation: the redistribution travels through a metered dense
//! all-to-all, so the trade — rebalance cost vs. better-balanced counting —
//! is measurable (and the paper's negative finding reproducible, see the
//! `ablations` bench and `rebalancing_overhead` test).

use tricount_comm::{run, Ctx};
use tricount_graph::dist::{DistGraph, LocalGraph};
use tricount_graph::{Csr, Partition, VertexId};

use crate::config::{Algorithm, DistConfig};
use crate::dist::into_cells;
use crate::dist::phases;
use crate::result::{CountResult, DistError};

/// Moves every vertex's neighborhood to its owner under `new_part`, through
/// one dense all-to-all. Wire format per vertex: `[v, deg, neighbors...]`.
pub fn redistribute(ctx: &mut Ctx, lg: &LocalGraph, new_part: &Partition) -> LocalGraph {
    assert_eq!(new_part.num_vertices(), lg.partition().num_vertices());
    let p = ctx.num_ranks();
    let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
    for v in lg.owned_vertices() {
        let ns = lg.neighbors(v);
        let dest = new_part.rank_of(v);
        let buf = &mut outgoing[dest];
        buf.push(v);
        buf.push(ns.len() as u64);
        buf.extend_from_slice(ns);
    }
    let incoming = ctx.alltoallv(outgoing);
    // old and new partitions are both contiguous in ids, so concatenating
    // the incoming streams in source-rank order restores ascending id order
    let mut neighborhoods: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
    for stream in incoming {
        let mut i = 0usize;
        while i < stream.len() {
            let v = stream[i];
            let deg = stream[i + 1] as usize;
            neighborhoods.push((v, stream[i + 2..i + 2 + deg].to_vec()));
            i += 2 + deg;
        }
    }
    LocalGraph::from_neighborhoods(new_part.clone(), ctx.rank(), neighborhoods)
}

/// Counts triangles with a metered rebalancing step in front: the graph
/// starts vertex-balanced, is redistributed to the cost-function partition
/// (recorded as a `"rebalance"` phase), and counted by `alg` afterwards.
pub fn count_rebalanced(
    g: &Csr,
    p: usize,
    alg: Algorithm,
    cfg: &DistConfig,
    cost: impl Fn(u64) -> u64,
) -> Result<CountResult, DistError> {
    let new_part = Partition::balanced_by_cost(g, p, cost);
    let dg = DistGraph::new_balanced_vertices(g, p);
    let cells = into_cells(dg);
    let out = run(p, |ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        let lg = redistribute(ctx, &lg, &new_part);
        ctx.end_phase(phases::REBALANCE);
        match alg {
            Algorithm::Unaggregated | Algorithm::Ditric | Algorithm::Ditric2 => {
                Ok(super::ditric::run_rank(ctx, lg, cfg))
            }
            Algorithm::Cetric | Algorithm::Cetric2 => Ok(super::cetric::run_rank(ctx, lg, cfg)),
            Algorithm::TricLike => super::baselines::tric_like_rank(ctx, lg, cfg),
            Algorithm::HavoqgtLike => Ok(super::baselines::havoqgt_like_rank(ctx, lg, cfg)),
        }
    });
    let triangles = out.results.into_iter().next().unwrap()?;
    Ok(CountResult {
        triangles,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use tricount_comm::CostModel;

    #[test]
    fn redistribution_preserves_the_graph() {
        let g = tricount_gen::rmat_default(8, 4);
        let p = 5;
        let new_part = Partition::balanced_by_cost(&g, p, |d| d);
        let dg = DistGraph::new_balanced_vertices(&g, p);
        let cells = into_cells(dg);
        let out = run(p, |ctx| {
            let lg = cells[ctx.rank()].lock().unwrap().take().unwrap();
            let new_lg = redistribute(ctx, &lg, &new_part);
            // return owned neighborhoods for global verification
            new_lg
                .owned_vertices()
                .map(|v| (v, new_lg.neighbors(v).to_vec()))
                .collect::<Vec<_>>()
        });
        let mut all: Vec<(u64, Vec<u64>)> = out.results.into_iter().flatten().collect();
        all.sort_by_key(|(v, _)| *v);
        assert_eq!(all.len() as u64, g.num_vertices());
        for (v, ns) in all {
            assert_eq!(ns, g.neighbors(v), "neighborhood of {v} changed");
        }
    }

    #[test]
    fn rebalanced_count_is_correct() {
        let g = tricount_gen::rmat_default(9, 6);
        let truth = seq::compact_forward(&g).triangles;
        for alg in [Algorithm::Ditric, Algorithm::Cetric] {
            let r = count_rebalanced(&g, 6, alg, &alg.config(), |d| d).unwrap();
            assert_eq!(r.triangles, truth, "{alg:?}");
            assert_eq!(r.stats.phases[0].name, "rebalance");
        }
    }

    #[test]
    fn rebalancing_overhead_does_not_pay_off() {
        // the paper's §IV-D finding: redistribution moves the whole graph
        // (volume ≈ input size), which outweighs the balance gain
        let g = tricount_gen::rmat_default(10, 2);
        let p = 8;
        let plain = crate::dist::count(&g, p, Algorithm::Ditric).unwrap();
        let rebal =
            count_rebalanced(&g, p, Algorithm::Ditric, &Algorithm::Ditric.config(), |d| d).unwrap();
        assert_eq!(plain.triangles, rebal.triangles);
        let model = CostModel::supermuc();
        assert!(
            rebal.modeled_time(&model) > plain.modeled_time(&model),
            "rebalancing should not pay off end-to-end: {} vs {}",
            rebal.modeled_time(&model),
            plain.modeled_time(&model)
        );
        // but the *load balance* of the counting work does improve — the
        // quantity the cost function optimises (end-to-end time still loses
        // because the redistribution itself moves the whole graph)
        let imbalance = |r: &CountResult| {
            let per_rank: Vec<u64> = (0..p)
                .map(|rk| {
                    r.stats
                        .phases
                        .iter()
                        .filter(|ph| ph.name == "local" || ph.name == "global")
                        .map(|ph| ph.per_rank[rk].work_ops)
                        .sum::<u64>()
                })
                .collect();
            let max = *per_rank.iter().max().unwrap() as f64;
            let mean = per_rank.iter().sum::<u64>() as f64 / p as f64;
            max / mean.max(1.0)
        };
        assert!(
            imbalance(&rebal) < imbalance(&plain),
            "cost-balanced partition should reduce work imbalance: {} vs {}",
            imbalance(&rebal),
            imbalance(&plain)
        );
    }
}

//! Reusable per-rank residency: the setup every CETRIC-family run performs
//! once and the query engine keeps alive across requests.
//!
//! A one-shot [`count`](crate::dist::count) pays the full pipeline on every
//! call: ghost degree exchange, degree orientation, ghost expansion and
//! cut-graph contraction, all discarded when the count returns. Strausz et
//! al. (*Asynchronous Distributed-Memory Triangle Counting and LCC with RMA
//! Caching*, 2022) observe that in a query-serving setting the win comes
//! from keeping exactly this state resident and amortising it over
//! requests. [`prepare_rank`] factors the setup out of the per-variant rank
//! programs so the one-shot path and the resident engine share one
//! implementation, and [`build_residency`] runs it once over a whole
//! partitioned graph, returning every rank's [`PreparedRank`] plus the
//! metered setup statistics.

use std::sync::Mutex;

use tricount_comm::{run_sim, Ctx, RunStats, SimOptions};
use tricount_graph::dist::{ContractedGraph, DistGraph, LocalGraph, OrientedLocalGraph};

use crate::config::DistConfig;
use crate::dist::phases;
use crate::dist::preprocess;

/// One rank's resident state: the local graph with ghost degrees installed,
/// its expanded degree-oriented form, and the contracted cut graph. Built by
/// [`prepare_rank`]; everything CETRIC's local and global phases (and the
/// LCC pipeline on top of them) need, with no further communication.
#[derive(Debug, Clone)]
pub struct PreparedRank {
    /// The local graph, ghost degrees exchanged (so a later `preprocess` is
    /// a communication-free no-op).
    pub local: LocalGraph,
    /// The expanded oriented local graph (owned + ghost neighborhoods).
    pub oriented: OrientedLocalGraph,
    /// The contracted cut graph (Algorithm 3 line 8).
    pub contracted: ContractedGraph,
}

/// Runs the per-rank setup shared by CETRIC, the LCC pipeline and the
/// resident engine: ghost degree exchange (when the ordering needs it),
/// orientation with ghost expansion, contraction. Ends the "preprocessing"
/// phase, exactly like the pre-factored rank programs did.
pub fn prepare_rank(ctx: &mut Ctx, mut lg: LocalGraph, cfg: &DistConfig) -> PreparedRank {
    preprocess(ctx, &mut lg, cfg);
    let oriented = ctx.with_span("orient_expand", |_| lg.orient(cfg.ordering, true));
    ctx.end_phase(phases::PREPROCESSING);
    let contracted = ctx.with_span("contract_cut_graph", |_| oriented.contracted());
    PreparedRank {
        local: lg,
        oriented,
        contracted,
    }
}

/// Performs the whole-graph setup exactly once: one simulated run in which
/// every rank executes [`prepare_rank`] and hands its [`PreparedRank`] back.
/// The returned [`RunStats`] meter the setup communication (the ghost degree
/// exchange); a consumer serving queries from the result can verify against
/// its later per-query statistics that no setup communication ever repeats.
pub fn build_residency(
    dg: DistGraph,
    cfg: &DistConfig,
    opts: &SimOptions,
) -> (Vec<PreparedRank>, RunStats) {
    let p = dg.num_ranks();
    let cells: Vec<Mutex<Option<LocalGraph>>> = dg
        .into_locals()
        .into_iter()
        .map(|l| Mutex::new(Some(l)))
        .collect();
    let sim = run_sim(p, opts, |ctx: &mut Ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        prepare_rank(ctx, lg, cfg)
    });
    (sim.output.results, sim.output.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricount_graph::OrderingKind;

    #[test]
    fn residency_is_setup_complete() {
        let g = tricount_gen::rgg2d_default(256, 3);
        let dg = DistGraph::new_balanced_vertices(&g, 4);
        let cfg = DistConfig::default();
        let (ranks, stats) = build_residency(dg, &cfg, &SimOptions::default());
        assert_eq!(ranks.len(), 4);
        for r in &ranks {
            // the exchange ran: a later preprocess has nothing to do
            assert!(r.local.ghosts().is_empty() || r.local.ghosts().degrees_known());
            assert!(r.oriented.is_expanded());
            assert_eq!(r.oriented.ordering(), OrderingKind::Degree);
        }
        // the setup run metered the ghost degree exchange
        assert!(stats.phases.iter().any(|ph| ph.name == "preprocessing"));
    }
}

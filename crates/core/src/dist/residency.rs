//! Reusable per-rank residency: the setup every CETRIC-family run performs
//! once and the query engine keeps alive across requests.
//!
//! A one-shot [`count`](crate::dist::count) pays the full pipeline on every
//! call: ghost degree exchange, degree orientation, ghost expansion and
//! cut-graph contraction, all discarded when the count returns. Strausz et
//! al. (*Asynchronous Distributed-Memory Triangle Counting and LCC with RMA
//! Caching*, 2022) observe that in a query-serving setting the win comes
//! from keeping exactly this state resident and amortising it over
//! requests. [`prepare_rank`] factors the setup out of the per-variant rank
//! programs so the one-shot path and the resident engine share one
//! implementation, and [`build_residency`] runs it once over a whole
//! partitioned graph, returning every rank's [`PreparedRank`] plus the
//! metered setup statistics.

use std::sync::Mutex;

use tricount_comm::{run_sim, Ctx, RunStats, SimOptions};
use tricount_graph::dist::{ContractedGraph, DistGraph, LocalGraph, OrientedLocalGraph};
use tricount_graph::kernels::HubIndex;

use crate::config::DistConfig;
use crate::dist::phases;
use crate::dist::preprocess;

/// One rank's resident state: the local graph with ghost degrees installed,
/// its expanded degree-oriented form, and the contracted cut graph. Built by
/// [`prepare_rank`]; everything CETRIC's local and global phases (and the
/// LCC pipeline on top of them) need, with no further communication.
#[derive(Debug, Clone)]
pub struct PreparedRank {
    /// The local graph, ghost degrees exchanged (so a later `preprocess` is
    /// a communication-free no-op).
    pub local: LocalGraph,
    /// The expanded oriented local graph (owned + ghost neighborhoods).
    pub oriented: OrientedLocalGraph,
    /// The contracted cut graph (Algorithm 3 line 8).
    pub contracted: ContractedGraph,
    /// Bitmap/hash membership index over hub neighborhoods of the oriented
    /// graph (owned + ghost lists with degree ≥ the policy's
    /// `hub_threshold`). Rebuilt on delta compaction — the overlay counting
    /// path never consults oriented lists between compactions, so
    /// rebuild-on-compaction keeps it coherent.
    pub hubs_oriented: HubIndex,
    /// Same index over the contracted cut graph's neighborhoods (used by
    /// the global-phase intersection handler).
    pub hubs_contracted: HubIndex,
    /// Generation tag, bumped by every delta compaction. The adjacency
    /// cache (`tricount-cache`) keys its derived-list validity on it:
    /// oriented/contracted entries are flushed when the generation moves,
    /// full merged lists survive (compaction preserves merged content).
    pub generation: u64,
}

/// Builds the hub indexes for a prepared rank's oriented and contracted
/// lists. Pure local work (no communication); shared by [`prepare_rank`]
/// and delta compaction so the two can never drift.
pub fn build_hub_indexes(
    oriented: &OrientedLocalGraph,
    contracted: &ContractedGraph,
    threshold: u64,
) -> (HubIndex, HubIndex) {
    let owned = oriented.owned_range().map(|v| (v, oriented.a_owned(v)));
    let ghosts = oriented
        .ghost_ids()
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, oriented.a_ghost(i)));
    let hubs_oriented = HubIndex::build(owned.chain(ghosts), threshold);
    let hubs_contracted = HubIndex::build(contracted.nonempty(), threshold);
    (hubs_oriented, hubs_contracted)
}

/// Runs the per-rank setup shared by CETRIC, the LCC pipeline and the
/// resident engine: ghost degree exchange (when the ordering needs it),
/// orientation with ghost expansion, contraction. Ends the "preprocessing"
/// phase, exactly like the pre-factored rank programs did.
pub fn prepare_rank(ctx: &mut Ctx, mut lg: LocalGraph, cfg: &DistConfig) -> PreparedRank {
    preprocess(ctx, &mut lg, cfg);
    let oriented = ctx.with_span("orient_expand", |_| lg.orient(cfg.ordering, true));
    ctx.end_phase(phases::PREPROCESSING);
    let contracted = ctx.with_span("contract_cut_graph", |_| oriented.contracted());
    let (hubs_oriented, hubs_contracted) = ctx.with_span("build_hub_index", |_| {
        build_hub_indexes(&oriented, &contracted, cfg.kernels.hub_threshold)
    });
    PreparedRank {
        local: lg,
        oriented,
        contracted,
        hubs_oriented,
        hubs_contracted,
        generation: 0,
    }
}

/// Performs the whole-graph setup exactly once: one simulated run in which
/// every rank executes [`prepare_rank`] and hands its [`PreparedRank`] back.
/// The returned [`RunStats`] meter the setup communication (the ghost degree
/// exchange); a consumer serving queries from the result can verify against
/// its later per-query statistics that no setup communication ever repeats.
pub fn build_residency(
    dg: DistGraph,
    cfg: &DistConfig,
    opts: &SimOptions,
) -> (Vec<PreparedRank>, RunStats) {
    let p = dg.num_ranks();
    let cells: Vec<Mutex<Option<LocalGraph>>> = dg
        .into_locals()
        .into_iter()
        .map(|l| Mutex::new(Some(l)))
        .collect();
    let sim = run_sim(p, opts, |ctx: &mut Ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        prepare_rank(ctx, lg, cfg)
    });
    (sim.output.results, sim.output.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricount_graph::OrderingKind;

    #[test]
    fn residency_is_setup_complete() {
        let g = tricount_gen::rgg2d_default(256, 3);
        let dg = DistGraph::new_balanced_vertices(&g, 4);
        let cfg = DistConfig::default();
        let (ranks, stats) = build_residency(dg, &cfg, &SimOptions::default());
        assert_eq!(ranks.len(), 4);
        for r in &ranks {
            // the exchange ran: a later preprocess has nothing to do
            assert!(r.local.ghosts().is_empty() || r.local.ghosts().degrees_known());
            assert!(r.oriented.is_expanded());
            assert_eq!(r.oriented.ordering(), OrderingKind::Degree);
        }
        // the setup run metered the ghost degree exchange
        assert!(stats.phases.iter().any(|ph| ph.name == "preprocessing"));
    }
}

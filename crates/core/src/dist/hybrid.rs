//! Hybrid (thread × rank) parallelism (paper §IV-D and the appendix's
//! Fig. 8): for a fixed core budget, fewer MPI ranks each drive `t` worker
//! threads. The local phase is parallelised *edge-centrically* (the local
//! directed edge list is chunked into tasks executed by the work-stealing
//! pool, after Green et al.), which both speeds up the local phase and —
//! because fewer ranks mean a smaller cut — reduces communication volume.
//! The global phase stays *funneled*: one thread per rank performs all
//! communication and the receive-side intersections, which is exactly the
//! bottleneck the paper reports for its hybrid prototype.
//!
//! Work metering: the local phase charges the *maximum* per-worker op count
//! (the modeled parallel makespan), so modeled times reflect `t`-way
//! parallel execution on the single-core host.

use tricount_comm::{run_sim, Ctx, Envelope, MessageQueue, QueueConfig, SimOptions};
use tricount_graph::dist::{DistGraph, LocalGraph};
use tricount_graph::intersect::merge_count;
use tricount_graph::VertexId;
use tricount_par::Pool;

use crate::config::DistConfig;
use crate::dist::phases;
use crate::dist::{into_cells, preprocess};
use crate::result::CountResult;

/// Edge chunk size per task (small enough for stealing to balance hubs).
const TASK_EDGES: usize = 128;

/// Runs the hybrid DITRIC variant on this rank with `threads` workers.
pub fn run_rank(ctx: &mut Ctx, mut lg: LocalGraph, cfg: &DistConfig, threads: usize) -> u64 {
    let pool = Pool::new(threads);
    preprocess(ctx, &mut lg, cfg);
    let o = lg.orient(cfg.ordering, false);
    ctx.end_phase(phases::PREPROCESSING);

    // Edge-centric local phase: all directed (v, u) with u local, chunked.
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for v in o.owned_range() {
        for &u in o.a_owned(v) {
            if o.is_owned(u) {
                edges.push((v, u));
            }
        }
    }
    let tasks: Vec<Vec<(VertexId, VertexId)>> =
        edges.chunks(TASK_EDGES).map(|c| c.to_vec()).collect();
    let o_ref = &o;
    let results = pool.run_tasks(tasks, move |_idx, chunk| {
        let mut count = 0u64;
        let mut ops = 0u64;
        for (v, u) in chunk {
            let (c, w) = merge_count(o_ref.a_owned(v), o_ref.a_owned(u));
            count += c;
            ops += w + 1;
        }
        (count, ops)
    });
    let mut local_count = 0u64;
    let mut worker_ops = vec![0u64; threads];
    for r in &results {
        local_count += r.result.0;
        worker_ops[r.worker] += r.result.1;
    }
    // modeled parallel time: the busiest worker
    ctx.add_work(worker_ops.iter().copied().max().unwrap_or(0));
    ctx.end_phase(phases::LOCAL);

    // Funneled global phase — identical to single-threaded DITRIC.
    let delta = cfg.resolve_delta(lg.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = o.partition().clone();
    let mut remote_count = 0u64;
    let handler = |o: &tricount_graph::dist::OrientedLocalGraph,
                   ctx: &mut Ctx,
                   env: Envelope<'_>,
                   acc: &mut u64| {
        let a = &env.payload[1..];
        for &u in a {
            if o.is_owned(u) {
                let (c, ops) = merge_count(a, o.a_owned(u));
                *acc += c;
                ctx.add_work(ops + 1);
            }
        }
    };
    let mut scratch: Vec<u64> = Vec::new();
    for v in o.owned_range() {
        let av = o.a_owned(v);
        let mut last_rank: Option<usize> = None;
        for &u in av {
            if o.is_owned(u) {
                continue;
            }
            let j = part.rank_of(u);
            if last_rank == Some(j) {
                continue;
            }
            last_rank = Some(j);
            scratch.clear();
            scratch.push(v);
            scratch.extend_from_slice(av);
            q.post(ctx, j, &scratch);
            while q.poll(ctx, &mut |ctx, env| {
                handler(&o, ctx, env, &mut remote_count)
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        handler(&o, ctx, env, &mut remote_count)
    });
    let total = ctx.allreduce_sum(&[local_count + remote_count])[0];
    ctx.end_phase(phases::GLOBAL);
    total
}

/// Drives a hybrid run with a fixed core budget: `cores = ranks × threads`.
/// Panics unless `threads` divides `cores`.
pub fn count_hybrid(
    g: &tricount_graph::Csr,
    cores: usize,
    threads: usize,
    cfg: &DistConfig,
) -> CountResult {
    assert!(
        threads >= 1 && cores % threads == 0,
        "cores must be ranks × threads"
    );
    let p = cores / threads;
    let dg = DistGraph::new_balanced_vertices(g, p);
    let cells = into_cells(dg);
    let out = run_sim(p, &SimOptions::on(cfg.transport), |ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        run_rank(ctx, lg, cfg, threads)
    });
    CountResult {
        triangles: out.output.results[0],
        stats: out.output.stats,
    }
}

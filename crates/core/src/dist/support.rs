//! Distributed edge support (common-neighbor counts for query edges).
//!
//! The support of an edge `{a, b}` is `|N(a) ∩ N(b)|` — the number of
//! triangles the edge participates in. It is the quantity truss
//! decompositions peel on and the natural "edge-granular" query next to the
//! vertex-granular LCC.
//!
//! The protocol is a single sparse exchange in the spirit of the ghost
//! degree exchange: the owner of `a` answers locally when it also owns `b`,
//! and otherwise ships `[query-index, b, |N(a)|, N(a)…]` to `b`'s owner via
//! one `alltoallv`; answerers intersect against their full owned
//! neighborhood `N(b)`. A final `allgatherv` of `(index, support)` pairs
//! lets every rank assemble the identical, deterministic answer vector.

use crate::config::DistConfig;
use crate::dist::dispatch::DispatchReport;
use crate::dist::phases;
use tricount_cache::{CacheSession, ListKind};
use tricount_comm::Ctx;
use tricount_graph::dist::LocalGraph;
use tricount_graph::kernels::Dispatcher;
use tricount_graph::VertexId;

/// Computes the support of each query edge on this rank. All ranks must
/// pass the same `queries` slice; all ranks return the same full answer
/// vector (indexed like `queries`).
///
/// Edges are initiated by the owner of their first endpoint, so `(a, b)`
/// and `(b, a)` yield the same support but may be answered by different
/// ranks. Vertices must be valid global ids; the support of an edge not
/// present in the graph is still the common-neighbor count of its
/// endpoints. Intersections dispatch through `cfg.kernels` (no hub index —
/// support intersects *full* neighborhoods, which the prepared hub index
/// does not cover).
pub fn edge_support_rank(
    ctx: &mut Ctx,
    lg: &LocalGraph,
    queries: &[(VertexId, VertexId)],
    cfg: &DistConfig,
) -> Vec<u64> {
    edge_support_rank_stats(ctx, lg, queries, cfg).0
}

/// [`edge_support_rank`] plus this rank's kernel-dispatch tallies.
pub fn edge_support_rank_stats(
    ctx: &mut Ctx,
    lg: &LocalGraph,
    queries: &[(VertexId, VertexId)],
    cfg: &DistConfig,
) -> (Vec<u64>, DispatchReport) {
    edge_support_rank_cached(ctx, lg, queries, cfg, &mut CacheSession::off())
}

/// [`edge_support_rank_stats`] with a live adjacency-cache session over the
/// shipped `N(a)` lists ([`ListKind::Full`] — kept coherent across updates
/// by `update_route` patches). Wire formats: the original
/// `[idx, b, |N(a)|, N(a)…]` record with an off session; with an active one,
/// `[idx, b, a, 0, |N(a)|, N(a)…]` full sends (the extra `a` keys the cache
/// on the answering rank) or `[idx, b, a, 1]` references.
pub fn edge_support_rank_cached(
    ctx: &mut Ctx,
    lg: &LocalGraph,
    queries: &[(VertexId, VertexId)],
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> (Vec<u64>, DispatchReport) {
    let p = ctx.num_ranks();
    let part = lg.partition().clone();
    let mut d = Dispatcher::new(cfg.kernels);

    // (index, support) pairs this rank can answer, flattened for the final
    // allgather.
    let mut answered: Vec<u64> = Vec::new();
    let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
    for (idx, &(a, b)) in queries.iter().enumerate() {
        if !lg.is_owned(a) {
            continue;
        }
        let na = lg.neighbors(a);
        if lg.is_owned(b) {
            let (c, ops) = d.count(na, None, lg.neighbors(b), None);
            ctx.add_work(ops + 1);
            answered.push(idx as u64);
            answered.push(c);
        } else {
            let dst = part.rank_of(b);
            outgoing[dst].push(idx as u64);
            outgoing[dst].push(b);
            if session.active() {
                outgoing[dst].push(a);
                if session.sender_check(dst, ListKind::Full, a, na.len() as u64) {
                    outgoing[dst].push(1);
                } else {
                    outgoing[dst].push(0);
                    outgoing[dst].push(na.len() as u64);
                    outgoing[dst].extend_from_slice(na);
                }
            } else {
                session.sender_check(dst, ListKind::Full, a, na.len() as u64);
                outgoing[dst].push(na.len() as u64);
                outgoing[dst].extend_from_slice(na);
            }
        }
    }

    let incoming = ctx.alltoallv(outgoing);
    for (src, req) in incoming.iter().enumerate() {
        let mut i = 0usize;
        while i < req.len() {
            let idx = req[i];
            let b = req[i + 1];
            let resolved: Vec<u64>;
            let na: &[u64] = if session.active() {
                let a = req[i + 2];
                if req[i + 3] == 1 {
                    i += 4;
                    resolved = session.recv_ref(src, ListKind::Full, a);
                    &resolved
                } else {
                    let len = req[i + 4] as usize;
                    let na = &req[i + 5..i + 5 + len];
                    i += 5 + len;
                    session.recv_full(src, ListKind::Full, a, na);
                    na
                }
            } else {
                let len = req[i + 2] as usize;
                let na = &req[i + 3..i + 3 + len];
                i += 3 + len;
                na
            };
            let (c, ops) = d.count(na, None, lg.neighbors(b), None);
            ctx.add_work(ops + 1);
            answered.push(idx);
            answered.push(c);
        }
    }

    // Everyone learns every answer and assembles the same vector.
    let gathered = ctx.allgatherv(answered);
    let mut support = vec![0u64; queries.len()];
    for pairs in gathered {
        for pair in pairs.chunks_exact(2) {
            support[pair[0] as usize] = pair[1];
        }
    }
    ctx.end_phase(phases::SUPPORT);
    (support, DispatchReport::of(phases::SUPPORT, d.counters()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use tricount_comm::run;
    use tricount_graph::dist::DistGraph;
    use tricount_graph::intersect::merge_count;

    #[test]
    fn support_matches_sequential_intersection() {
        let g = tricount_gen::rgg2d_default(200, 5);
        let mut queries: Vec<(VertexId, VertexId)> = Vec::new();
        for v in 0..g.num_vertices() as VertexId {
            for &u in g.neighbors(v) {
                if v < u && queries.len() < 64 {
                    queries.push((v, u));
                }
            }
        }
        // also a non-edge pair and a reversed edge
        queries.push((0, g.num_vertices() as VertexId - 1));
        let (a, b) = queries[0];
        queries.push((b, a));

        let expected: Vec<u64> = queries
            .iter()
            .map(|&(a, b)| merge_count(g.neighbors(a), g.neighbors(b)).0)
            .collect();

        let p = 4;
        let dg = DistGraph::new_balanced_vertices(&g, p);
        let cells: Vec<Mutex<Option<LocalGraph>>> = dg
            .into_locals()
            .into_iter()
            .map(|l| Mutex::new(Some(l)))
            .collect();
        let q = queries.clone();
        let cfg = DistConfig::default();
        let out = run(p, |ctx| {
            let lg = cells[ctx.rank()].lock().unwrap().take().unwrap();
            edge_support_rank(ctx, &lg, &q, &cfg)
        });
        for ranks_answer in &out.results {
            assert_eq!(ranks_answer, &expected);
        }
    }
}

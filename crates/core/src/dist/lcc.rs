//! Distributed per-vertex triangle counts and local clustering coefficients
//! (the extension of paper §IV-E).
//!
//! The CETRIC pipeline finds each triangle exactly once; whenever one is
//! found, all three corners' `Δ`-counters are incremented. Counters of ghost
//! vertices accumulate locally and are aggregated to their owners in a
//! postprocessing all-to-all "analogous to the initial degree exchange".
//!
//! Like the plain count, the pipeline is split into the shared setup
//! ([`crate::dist::residency::prepare_rank`]) and the counting part
//! ([`lcc_prepared`]), so the resident query engine can serve LCC queries
//! from state prepared once.
//!
//! Intersections go through the adaptive kernel dispatcher; the local phase
//! optionally runs degree-aware chunked on the `par` pool, each chunk
//! accumulating its own `Δ` vectors which are summed element-wise in
//! canonical chunk order (u64 addition — bit-identical to sequential).

use tricount_cache::{CacheSession, ListKind};
use tricount_comm::{run_sim, Ctx, Envelope, MessageQueue, QueueConfig, SimOptions};
use tricount_graph::dist::{DistGraph, LocalGraph, OrientedLocalGraph};
use tricount_graph::kernels::{balanced_chunks, Dispatcher, KernelCounters};
use tricount_graph::VertexId;
use tricount_par::Pool;

use crate::config::DistConfig;
use crate::dist::dispatch::DispatchReport;
use crate::dist::into_cells;
use crate::dist::phases;
use crate::dist::residency::{prepare_rank, PreparedRank};
use crate::result::LccResult;

/// Per-rank Δ accumulator over owned and ghost vertices.
struct DeltaAcc {
    start: VertexId,
    owned: Vec<u64>,
    ghost_ids: Vec<VertexId>,
    ghosts: Vec<u64>,
}

impl DeltaAcc {
    fn for_oriented(o: &OrientedLocalGraph) -> Self {
        let owned_range = o.owned_range();
        DeltaAcc {
            start: owned_range.start,
            owned: vec![0u64; (owned_range.end - owned_range.start) as usize],
            ghost_ids: o.ghost_ids().to_vec(),
            ghosts: vec![0u64; o.ghost_ids().len()],
        }
    }

    fn bump(&mut self, v: VertexId) {
        if v >= self.start && ((v - self.start) as usize) < self.owned.len() {
            self.owned[(v - self.start) as usize] += 1;
        } else {
            let gi = self
                .ghost_ids
                .binary_search(&v)
                .expect("triangle corner is neither owned nor ghost");
            self.ghosts[gi] += 1;
        }
    }

    /// Element-wise sum of another accumulator over the same vertex sets.
    fn absorb(&mut self, other: &DeltaAcc) {
        for (a, b) in self.owned.iter_mut().zip(&other.owned) {
            *a += b;
        }
        for (a, b) in self.ghosts.iter_mut().zip(&other.ghosts) {
            *a += b;
        }
    }
}

/// Runs the CETRIC-based per-vertex count on this rank. Returns this PE's
/// owned `Δ` values.
fn run_rank(ctx: &mut Ctx, lg: LocalGraph, cfg: &DistConfig) -> Vec<u64> {
    let prep = prepare_rank(ctx, lg, cfg);
    lcc_prepared(ctx, &prep, cfg)
}

/// One local-phase item: enumerate the triangles closing each directed edge
/// out of `v` and bump all three corners. Returns the metered work. Shared
/// by the sequential and chunked drivers.
#[inline]
fn lcc_local_item(
    o: &OrientedLocalGraph,
    v: VertexId,
    av: &[VertexId],
    acc: &mut DeltaAcc,
    commons: &mut Vec<VertexId>,
    d: &mut Dispatcher<'_>,
) -> u64 {
    let mut work = 0u64;
    for &u in av {
        let au = o.a_of(u).expect("head must be owned or ghost");
        commons.clear();
        let ops = d.collect(av, Some(v), au, Some(u), commons);
        work += ops + 1;
        for &w in commons.iter() {
            acc.bump(v);
            acc.bump(u);
            acc.bump(w);
        }
    }
    work
}

/// The per-vertex counting phases on already prepared per-rank state:
/// local and global triangle enumeration bumping all three corners, then
/// the ghost-Δ aggregation postprocessing. Returns this PE's owned `Δ`
/// values; no setup communication happens here.
pub fn lcc_prepared(ctx: &mut Ctx, prep: &PreparedRank, cfg: &DistConfig) -> Vec<u64> {
    lcc_prepared_stats(ctx, prep, cfg).0
}

/// [`lcc_prepared`] plus this rank's per-phase kernel-dispatch tallies.
pub fn lcc_prepared_stats(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    cfg: &DistConfig,
) -> (Vec<u64>, DispatchReport) {
    lcc_prepared_cached(ctx, prep, cfg, &mut CacheSession::off())
}

/// [`lcc_prepared_stats`] with a live adjacency-cache session. The global
/// phase ships the same contracted lists as CETRIC's, so LCC and count
/// queries share [`ListKind::Contracted`] cache entries. With an off
/// session this *is* the original protocol.
pub fn lcc_prepared_cached(
    ctx: &mut Ctx,
    prep: &PreparedRank,
    cfg: &DistConfig,
    session: &mut CacheSession<'_>,
) -> (Vec<u64>, DispatchReport) {
    let o = &prep.oriented;
    let owned_range = o.owned_range();
    let mut acc = DeltaAcc::for_oriented(o);

    // Local phase: enumerate type-1/2 triangles, bump all three corners.
    // Work list in canonical order: owned vertices, then ghosts.
    let mut local_pairs: Vec<(VertexId, &[VertexId])> = Vec::new();
    for v in owned_range.clone() {
        local_pairs.push((v, o.a_owned(v)));
    }
    for gi in 0..o.ghost_ids().len() {
        local_pairs.push((o.ghost_ids()[gi], o.a_ghost(gi)));
    }
    let policy = cfg.kernels;
    let local_dispatch = if policy.chunking && policy.pool_workers > 1 && !local_pairs.is_empty() {
        let weights: Vec<u64> = local_pairs.iter().map(|(_, av)| av.len() as u64).collect();
        let ranges = balanced_chunks(&weights, policy.pool_workers.saturating_mul(4));
        let pool = Pool::new(policy.pool_workers);
        let results = pool.run_tasks(ranges, |_, (s, e)| {
            let mut d = Dispatcher::with_hubs(policy, &prep.hubs_oriented);
            let mut chunk_acc = DeltaAcc::for_oriented(o);
            let mut commons: Vec<VertexId> = Vec::new();
            let mut work = 0u64;
            for &(v, av) in &local_pairs[s..e] {
                work += lcc_local_item(o, v, av, &mut chunk_acc, &mut commons, &mut d);
            }
            (chunk_acc, work, d.counters())
        });
        // Canonical chunk-order reduction: element-wise u64 sums of the
        // per-chunk Δ vectors are bit-identical to the sequential bumps.
        let mut work = 0u64;
        let mut counters = KernelCounters::default();
        for r in results {
            acc.absorb(&r.result.0);
            work += r.result.1;
            counters.absorb(&r.result.2);
        }
        ctx.add_work(work);
        counters
    } else {
        let mut d = Dispatcher::with_hubs(policy, &prep.hubs_oriented);
        let mut commons: Vec<VertexId> = Vec::new();
        for &(v, av) in &local_pairs {
            let work = lcc_local_item(o, v, av, &mut acc, &mut commons, &mut d);
            ctx.add_work(work);
        }
        d.counters()
    };
    drop(local_pairs);
    let contracted = &prep.contracted;
    ctx.end_phase(phases::LOCAL);

    // Global phase: type-3 triangles, again bumping all three corners
    // (v and w are ghosts of the receiving PE).
    let delta = cfg.resolve_delta(prep.local.num_local_entries());
    let mut q = MessageQueue::new(
        ctx,
        QueueConfig {
            delta,
            routing: cfg.routing,
        },
    );
    let part = o.partition().clone();
    let mut gd = Dispatcher::with_hubs(policy, &prep.hubs_contracted);
    // Same wire formats as CETRIC's global phase ([`crate::dist::cetric`]):
    // `[v, A(v)...]` when the session is off, `[v, 0, A(v)...]` /
    // reference `[v, 1]` when active.
    #[allow(clippy::too_many_arguments)]
    fn handler(
        acc: &mut DeltaAcc,
        contracted: &tricount_graph::dist::ContractedGraph,
        owned: &std::ops::Range<u64>,
        part: &tricount_graph::Partition,
        ctx: &mut Ctx,
        env: Envelope<'_>,
        commons: &mut Vec<VertexId>,
        d: &mut Dispatcher<'_>,
        session: &mut CacheSession<'_>,
    ) {
        let v = env.payload[0];
        let resolved: Vec<u64>;
        let a: &[u64] = if session.active() {
            let owner = part.rank_of(v);
            if env.payload[1] == 1 {
                resolved = session.recv_ref(owner, ListKind::Contracted, v);
                &resolved
            } else {
                let a = &env.payload[2..];
                session.recv_full(owner, ListKind::Contracted, v, a);
                a
            }
        } else {
            &env.payload[1..]
        };
        for &u in a {
            if owned.contains(&u) {
                commons.clear();
                let ops = d.collect(a, None, contracted.a_of(u), Some(u), commons);
                ctx.add_work(ops + 1);
                for &w in commons.iter() {
                    acc.bump(v);
                    acc.bump(u);
                    acc.bump(w);
                }
            }
        }
    }
    let mut scratch: Vec<u64> = Vec::new();
    let mut commons2: Vec<VertexId> = Vec::new();
    for (v, a) in contracted.nonempty() {
        let mut last_rank: Option<usize> = None;
        for &u in a {
            let j = part.rank_of(u);
            if last_rank == Some(j) {
                continue;
            }
            last_rank = Some(j);
            scratch.clear();
            scratch.push(v);
            if session.active() {
                if session.sender_check(j, ListKind::Contracted, v, a.len() as u64) {
                    scratch.push(1);
                } else {
                    scratch.push(0);
                    scratch.extend_from_slice(a);
                }
            } else {
                session.sender_check(j, ListKind::Contracted, v, a.len() as u64);
                scratch.extend_from_slice(a);
            }
            q.post(ctx, j, &scratch);
            while q.poll(ctx, &mut |ctx, env| {
                handler(
                    &mut acc,
                    contracted,
                    &owned_range,
                    &part,
                    ctx,
                    env,
                    &mut commons2,
                    &mut gd,
                    session,
                )
            }) {}
        }
    }
    q.finish(ctx, &mut |ctx, env| {
        handler(
            &mut acc,
            contracted,
            &owned_range,
            &part,
            ctx,
            env,
            &mut commons2,
            &mut gd,
            session,
        )
    });
    ctx.end_phase(phases::GLOBAL);

    // Postprocessing: ship ghost Δ contributions to their owners
    // ([id, delta] pairs), analogous to the degree exchange.
    let p = ctx.num_ranks();
    let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); p];
    for (gi, &g) in acc.ghost_ids.iter().enumerate() {
        if acc.ghosts[gi] > 0 {
            let r = part.rank_of(g);
            outgoing[r].push(g);
            outgoing[r].push(acc.ghosts[gi]);
        }
    }
    let incoming = ctx.alltoallv(outgoing);
    for part_in in incoming {
        for pair in part_in.chunks_exact(2) {
            let (v, d) = (pair[0], pair[1]);
            acc.owned[(v - acc.start) as usize] += d;
        }
    }
    ctx.end_phase(phases::POSTPROCESS);

    let mut report = DispatchReport::of(phases::LOCAL, local_dispatch);
    report.add(phases::GLOBAL, gd.counters());
    (acc.owned, report)
}

/// Normalises per-vertex `Δ` counts into clustering coefficients
/// `LCC(v) = Δ(v) / (d_v (d_v − 1) / 2)` under the global degree vector —
/// the exact expression the sequential reference uses, so distributed and
/// sequential answers bit-match.
pub fn normalize_lcc(per_vertex: &[u64], degrees: &[u64]) -> Vec<f64> {
    per_vertex
        .iter()
        .zip(degrees)
        .map(|(&d3, &deg)| {
            if deg < 2 {
                0.0
            } else {
                d3 as f64 / (deg * (deg - 1) / 2) as f64
            }
        })
        .collect()
}

/// Runs the distributed per-vertex count / LCC computation on a partitioned
/// graph. `degrees` must be the global degree vector (used only for the
/// final LCC normalisation).
pub fn lcc_on(dg: DistGraph, cfg: &DistConfig, degrees: &[u64]) -> LccResult {
    let p = dg.num_ranks();
    let cells = into_cells(dg);
    let out = run_sim(p, &SimOptions::on(cfg.transport), |ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        run_rank(ctx, lg, cfg)
    });
    let mut per_vertex = Vec::with_capacity(degrees.len());
    for owned in out.output.results {
        per_vertex.extend(owned);
    }
    assert_eq!(per_vertex.len(), degrees.len());
    let triangles = per_vertex.iter().sum::<u64>() / 3;
    let lcc = normalize_lcc(&per_vertex, degrees);
    LccResult {
        triangles,
        per_vertex,
        lcc,
        stats: out.output.stats,
    }
}

/// [`lcc_on`] against live adjacency-cache cells, one per rank: warm cells
/// resolve contracted lists from the cache instead of re-shipping them, and
/// staged entries survive into the next run over the same cells. The
/// per-vertex counts are bit-identical to the uncached driver; the folded
/// [`tricount_cache::CacheReport`] is returned alongside.
pub fn lcc_on_cached(
    dg: DistGraph,
    cfg: &DistConfig,
    degrees: &[u64],
    caches: &[std::sync::Mutex<tricount_cache::RankCache>],
) -> (LccResult, tricount_cache::CacheReport) {
    let p = dg.num_ranks();
    assert_eq!(caches.len(), p, "one cache cell per rank");
    let cells = into_cells(dg);
    let out = run_sim(p, &SimOptions::on(cfg.transport), |ctx| {
        let lg = cells[ctx.rank()]
            .lock()
            .unwrap()
            .take()
            .expect("local graph already taken");
        let mut cache = caches[ctx.rank()].lock().expect("cache cell");
        let generation = cache.generation();
        let mut session = CacheSession::write(&mut cache, generation);
        let prep = prepare_rank(ctx, lg, cfg);
        let (owned, _) = lcc_prepared_cached(ctx, &prep, cfg, &mut session);
        (owned, session.finish().report)
    });
    let mut per_vertex = Vec::with_capacity(degrees.len());
    let mut report = tricount_cache::CacheReport::default();
    for (owned, r) in out.output.results {
        per_vertex.extend(owned);
        report.absorb(&r);
    }
    assert_eq!(per_vertex.len(), degrees.len());
    let triangles = per_vertex.iter().sum::<u64>() / 3;
    let lcc = normalize_lcc(&per_vertex, degrees);
    (
        LccResult {
            triangles,
            per_vertex,
            lcc,
            stats: out.output.stats,
        },
        report,
    )
}

/// Convenience driver: partitions `g` over `p` PEs and computes per-vertex
/// counts and LCCs.
pub fn lcc(g: &tricount_graph::Csr, p: usize, cfg: &DistConfig) -> LccResult {
    let degrees = g.degrees();
    lcc_on(DistGraph::new_balanced_vertices(g, p), cfg, &degrees)
}

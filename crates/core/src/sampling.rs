//! Sampling-based approximate triangle counting — the §III-B baselines the
//! paper positions its AMQ approach against. Both reduce the *input* and
//! use any (distributed) exact counter as a black box:
//!
//! * **DOULION** (Tsourakakis et al.): keep each edge independently with
//!   probability `q`; every triangle survives with probability `q³`, so
//!   `T ≈ T_sampled / q³`.
//! * **Colorful counting** (Pagh & Tsourakakis): color vertices uniformly
//!   with `N` colors and keep only monochromatic edges; a triangle survives
//!   iff all three corners share a color (`1/N²` after conditioning on the
//!   first corner), so `T ≈ T_mono · N²` with lower variance than
//!   independent edge sampling at equal reduction.
//!
//! Unlike the AMQ extension (which only approximates *type-3* triangles and
//! is therefore usable for local clustering coefficients), these methods
//! only estimate the global count — exactly the trade-off §IV-E points out.

use tricount_graph::{Csr, EdgeList, VertexId};

use crate::config::Algorithm;
use crate::result::DistError;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// DOULION sparsification: keeps each edge with probability `q`
/// (deterministic in `seed`).
pub fn doulion_sparsify(g: &Csr, q: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&q));
    let el: EdgeList = g
        .edges()
        .filter(|&(u, v)| unit(mix(seed ^ (u << 32 | v))) < q)
        .collect();
    Csr::from_edges(g.num_vertices(), &el)
}

/// Runs `alg` on the DOULION-sparsified graph over `p` PEs and scales the
/// count by `1/q³`.
pub fn doulion_estimate(
    g: &Csr,
    p: usize,
    alg: Algorithm,
    q: f64,
    seed: u64,
) -> Result<f64, DistError> {
    if q == 0.0 {
        return Ok(0.0);
    }
    let sampled = doulion_sparsify(g, q, seed);
    let r = crate::dist::count(&sampled, p, alg)?;
    Ok(r.triangles as f64 / (q * q * q))
}

/// The color assigned to `v` out of `colors` under `seed`.
#[inline]
pub fn color_of(v: VertexId, colors: u64, seed: u64) -> u64 {
    mix(seed ^ v.wrapping_mul(0xA24B_AED4_963E_E407)) % colors
}

/// Colorful sparsification: keeps only edges whose endpoints share a color.
pub fn colorful_sparsify(g: &Csr, colors: u64, seed: u64) -> Csr {
    assert!(colors >= 1);
    let el: EdgeList = g
        .edges()
        .filter(|&(u, v)| color_of(u, colors, seed) == color_of(v, colors, seed))
        .collect();
    Csr::from_edges(g.num_vertices(), &el)
}

/// Runs `alg` on the monochromatic subgraph over `p` PEs and scales the
/// count by `colors²`.
pub fn colorful_estimate(
    g: &Csr,
    p: usize,
    alg: Algorithm,
    colors: u64,
    seed: u64,
) -> Result<f64, DistError> {
    let mono = colorful_sparsify(g, colors, seed);
    let r = crate::dist::count(&mono, p, alg)?;
    Ok(r.triangles as f64 * (colors * colors) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    fn test_graph() -> Csr {
        tricount_gen::gnm(500, 8000, 77)
    }

    #[test]
    fn doulion_q1_is_exact() {
        let g = test_graph();
        let est = doulion_estimate(&g, 4, Algorithm::Cetric, 1.0, 3).unwrap();
        assert_eq!(est, seq::compact_forward(&g).triangles as f64);
    }

    #[test]
    fn doulion_q0_is_zero() {
        let g = test_graph();
        let est = doulion_estimate(&g, 2, Algorithm::Ditric, 0.0, 3).unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn doulion_sparsify_keeps_about_q_edges() {
        let g = test_graph();
        let s = doulion_sparsify(&g, 0.5, 9);
        let frac = s.num_edges() as f64 / g.num_edges() as f64;
        assert!((0.42..0.58).contains(&frac), "kept {frac}");
    }

    #[test]
    fn doulion_estimate_is_in_the_right_ballpark() {
        let g = test_graph();
        let truth = seq::compact_forward(&g).triangles as f64;
        // average several seeds: the estimator is unbiased but noisy
        let est: f64 = (0..8)
            .map(|s| doulion_estimate(&g, 4, Algorithm::Ditric, 0.7, s).unwrap())
            .sum::<f64>()
            / 8.0;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.3, "est {est} truth {truth}");
    }

    #[test]
    fn colorful_one_color_is_exact() {
        let g = test_graph();
        let est = colorful_estimate(&g, 4, Algorithm::Cetric, 1, 3).unwrap();
        assert_eq!(est, seq::compact_forward(&g).triangles as f64);
    }

    #[test]
    fn colorful_sparsify_keeps_about_1_over_n_edges() {
        let g = test_graph();
        let s = colorful_sparsify(&g, 4, 9);
        let frac = s.num_edges() as f64 / g.num_edges() as f64;
        assert!((0.15..0.35).contains(&frac), "kept {frac}");
    }

    #[test]
    fn colorful_estimate_reasonable_on_triangle_rich_graph() {
        // use a denser graph so the monochromatic subgraph still holds
        // enough triangles for a stable estimate
        let g = tricount_gen::rmat_default(9, 4);
        let truth = seq::compact_forward(&g).triangles as f64;
        let est: f64 = (0..8)
            .map(|s| colorful_estimate(&g, 4, Algorithm::Ditric, 2, s).unwrap())
            .sum::<f64>()
            / 8.0;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.3, "est {est} truth {truth}");
    }

    #[test]
    fn colors_partition_vertices() {
        let mut seen = [false; 5];
        for v in 0..1000u64 {
            let c = color_of(v, 5, 1) as usize;
            assert!(c < 5);
            seen[c] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}

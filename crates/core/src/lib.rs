//! The triangle counting algorithms of Sanders & Uhl, *Engineering a
//! Distributed-Memory Triangle Counting Algorithm* (IPDPS 2023), implemented
//! over the simulated distributed machine of `tricount-comm`.
//!
//! # Quick start
//!
//! ```
//! use tricount_core::{count, Algorithm};
//! use tricount_graph::{Csr, EdgeList};
//!
//! // a triangle plus a pendant edge
//! let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
//! el.canonicalize();
//! let g = Csr::from_edges(4, &el);
//!
//! // sequential COMPACT-FORWARD
//! assert_eq!(tricount_core::seq::compact_forward(&g).triangles, 1);
//!
//! // CETRIC on 2 simulated PEs
//! let result = count(&g, 2, Algorithm::Cetric).unwrap();
//! assert_eq!(result.triangles, 1);
//! ```
//!
//! # Algorithms
//!
//! * [`seq`] — EDGEITERATOR / COMPACT-FORWARD, enumeration, per-vertex
//!   counts, LCC (Algorithm 1 and §II).
//! * [`dist::ditric`] — DITRIC and DITRIC² (dynamic message aggregation,
//!   optional grid indirection; Algorithm 2 + §IV-A/B).
//! * [`dist::cetric`] — CETRIC and CETRIC² (expanded local graph +
//!   contraction; Algorithm 3, §IV-C).
//! * [`dist::baselines`] — TriC-like and HavoqGT-like competitor
//!   re-implementations (§V-B).
//! * [`dist::lcc`] — distributed per-vertex counts and local clustering
//!   coefficients (§IV-E).
//! * [`dist::approx`] — AMQ-approximate counting with the truthful
//!   estimator (§IV-E).
//! * [`dist::enumerate`] — distributed triangle enumeration (§IV-E).
//! * [`dist::hybrid`] — hybrid thread × rank execution (§IV-D, Fig. 8).
//! * [`sampling`] — DOULION and colorful-counting approximation baselines
//!   (§III-B), built on the distributed counters.

#![warn(missing_docs)]

pub mod config;
pub mod dist;
pub mod result;
pub mod sampling;
pub mod seq;

pub use config::{Aggregation, Algorithm, DistConfig};
pub use dist::{count, count_with, run_on, run_on_cached, run_on_default};
pub use result::{ApproxResult, CountResult, DistError, LccResult};
pub use tricount_cache::{CacheConfig, CacheReport, CacheSession, Eviction, RankCache};

//! The per-PE mutable adjacency overlay.
//!
//! A [`LocalGraph`] is immutable CSR storage. An [`Overlay`] layers two
//! sorted delta lists per owned vertex on top of it — `added` (edges not
//! in the base) and `removed` (base edges logically deleted) — so the
//! *merged* neighborhood `(base \ removed) ∪ added` is available as a
//! sorted stream ([`Overlay::merged_neighbors`]) without rewriting the
//! CSR. The stream feeds the `graph::intersect` iterator kernels directly.
//!
//! The overlay also carries **ghost-degree overrides**: the targeted
//! refresh of the update protocol records the new global degree of every
//! touched remote vertex here, so a later compaction (merging the overlay
//! into a fresh base, [`Overlay::merged_local_graph`]) can re-orient by
//! degree without any further communication — including for ghosts the
//! base never had.
//!
//! Invariants, checked in debug builds: `added[v]` and `removed[v]` are
//! sorted and duplicate-free, `added[v] ∩ base(v) = ∅`, and
//! `removed[v] ⊆ base(v)`.

use std::collections::BTreeMap;

use tricount_graph::dist::LocalGraph;
use tricount_graph::VertexId;

/// Sorted insertion/deletion delta lists over a base [`LocalGraph`], plus
/// refreshed ghost degrees. One per PE; indexes owned vertices only (each
/// undirected edge is overlaid at both endpoints, on their owning PEs).
#[derive(Debug, Clone, Default)]
pub struct Overlay {
    start: VertexId,
    added: Vec<Vec<VertexId>>,
    removed: Vec<Vec<VertexId>>,
    added_entries: u64,
    removed_entries: u64,
    /// Refreshed global degrees of remote vertices (touched ghosts and
    /// endpoints of added cut edges). Override the base ghost degrees.
    ghost_degrees: BTreeMap<VertexId, u64>,
    /// Remote endpoints currently referenced by `added` lists, with a
    /// reference count — the "new ghosts" a compaction will acquire.
    added_remote: BTreeMap<VertexId, u64>,
}

impl Overlay {
    /// An empty overlay for `lg`'s owned range.
    pub fn for_local(lg: &LocalGraph) -> Self {
        let n = lg.num_owned() as usize;
        Overlay {
            start: lg.owned_range().start,
            added: vec![Vec::new(); n],
            removed: vec![Vec::new(); n],
            added_entries: 0,
            removed_entries: 0,
            ghost_degrees: BTreeMap::new(),
            added_remote: BTreeMap::new(),
        }
    }

    #[inline]
    fn slot(&self, v: VertexId) -> usize {
        debug_assert!(v >= self.start && ((v - self.start) as usize) < self.added.len());
        (v - self.start) as usize
    }

    /// Total overlay entries (added + removed directed slots) on this PE —
    /// the numerator of the compaction trigger fraction.
    pub fn entries(&self) -> u64 {
        self.added_entries + self.removed_entries
    }

    /// Whether the overlay holds no pending deltas (ghost-degree overrides
    /// don't count: they stay correct across compactions).
    pub fn is_clean(&self) -> bool {
        self.entries() == 0
    }

    /// Whether owned vertex `v`'s neighborhood carries no pending deltas —
    /// i.e. its merged view equals the base CSR slice exactly. Lets callers
    /// use slice (random-access) intersection kernels for clean vertices
    /// and fall back to the streamed merged view only where the overlay is
    /// actually dirty.
    pub fn is_clean_at(&self, v: VertexId) -> bool {
        let s = self.slot(v);
        self.added[s].is_empty() && self.removed[s].is_empty()
    }

    /// Whether the *current* graph (base ⊕ overlay) contains `{v, u}`,
    /// judged from owned endpoint `v`. Both owners of an edge reach the
    /// same verdict independently — undirected adjacency is symmetric —
    /// which is what lets the update protocol filter no-ops without an
    /// agreement round.
    pub fn has_edge(&self, lg: &LocalGraph, v: VertexId, u: VertexId) -> bool {
        let s = self.slot(v);
        if self.added[s].binary_search(&u).is_ok() {
            return true;
        }
        if self.removed[s].binary_search(&u).is_ok() {
            return false;
        }
        lg.neighbors(v).binary_search(&u).is_ok()
    }

    /// Records the insertion of `{v, u}` at owned endpoint `v`. The caller
    /// must have checked effectiveness (`!has_edge(lg, v, u)`).
    pub fn insert(&mut self, lg: &LocalGraph, v: VertexId, u: VertexId) {
        debug_assert!(!self.has_edge(lg, v, u), "insert of a present edge");
        let s = self.slot(v);
        if let Ok(pos) = self.removed[s].binary_search(&u) {
            // re-insertion of a base edge deleted earlier: cancel
            self.removed[s].remove(pos);
            self.removed_entries -= 1;
        } else {
            let pos = self.added[s].binary_search(&u).unwrap_err();
            self.added[s].insert(pos, u);
            self.added_entries += 1;
            if !lg.is_owned(u) {
                *self.added_remote.entry(u).or_insert(0) += 1;
            }
        }
    }

    /// Records the deletion of `{v, u}` at owned endpoint `v`. The caller
    /// must have checked effectiveness (`has_edge(lg, v, u)`).
    pub fn delete(&mut self, lg: &LocalGraph, v: VertexId, u: VertexId) {
        debug_assert!(self.has_edge(lg, v, u), "delete of an absent edge");
        let s = self.slot(v);
        if let Ok(pos) = self.added[s].binary_search(&u) {
            // deleting an overlay-inserted edge: cancel
            self.added[s].remove(pos);
            self.added_entries -= 1;
            if !lg.is_owned(u) {
                let cnt = self
                    .added_remote
                    .get_mut(&u)
                    .expect("added remote endpoint was refcounted");
                *cnt -= 1;
                if *cnt == 0 {
                    self.added_remote.remove(&u);
                }
            }
        } else {
            let pos = self.removed[s].binary_search(&u).unwrap_err();
            self.removed[s].insert(pos, u);
            self.removed_entries += 1;
        }
    }

    /// The merged neighborhood `(base(v) \ removed(v)) ∪ added(v)` of an
    /// owned vertex as a sorted stream, suitable for
    /// [`merge_count_iter`](tricount_graph::intersect::merge_count_iter) /
    /// [`merge_collect_iter`](tricount_graph::intersect::merge_collect_iter).
    pub fn merged_neighbors<'a>(&'a self, lg: &'a LocalGraph, v: VertexId) -> MergedNeighbors<'a> {
        let s = self.slot(v);
        MergedNeighbors {
            base: lg.neighbors(v),
            added: &self.added[s],
            removed: &self.removed[s],
            bi: 0,
            ai: 0,
        }
    }

    /// Materialises the merged neighborhood of `v` into `out` (cleared
    /// first) — for protocol payloads, which ship slices.
    pub fn merge_into(&self, lg: &LocalGraph, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.merged_neighbors(lg, v));
    }

    /// The degree of owned vertex `v` in the current (base ⊕ overlay)
    /// graph.
    pub fn degree_after(&self, lg: &LocalGraph, v: VertexId) -> u64 {
        let s = self.slot(v);
        lg.degree(v) + self.added[s].len() as u64 - self.removed[s].len() as u64
    }

    /// Records the refreshed global degree of remote vertex `v`.
    pub fn set_ghost_degree(&mut self, v: VertexId, degree: u64) {
        self.ghost_degrees.insert(v, degree);
    }

    /// Whether remote vertex `v` is relevant to this PE: a base ghost, or
    /// the remote endpoint of an overlay-added edge (a new ghost a future
    /// compaction will acquire).
    pub fn tracks_remote(&self, lg: &LocalGraph, v: VertexId) -> bool {
        self.added_remote.contains_key(&v) || lg.ghosts().index_of(v).is_some()
    }

    /// The freshest known global degree of remote vertex `v`: the override
    /// if the update protocol refreshed it, else the base exchange's value.
    pub fn ghost_degree(&self, lg: &LocalGraph, v: VertexId) -> Option<u64> {
        if let Some(&d) = self.ghost_degrees.get(&v) {
            return Some(d);
        }
        let gi = lg.ghosts().index_of(v)?;
        lg.ghosts().degrees_known().then(|| lg.ghosts().degree(gi))
    }

    /// Compacts the overlay into a fresh base: builds a new [`LocalGraph`]
    /// from the merged neighborhoods and installs ghost degrees from the
    /// base exchange plus the refreshed overrides — entirely
    /// communication-free, because the update protocol kept the overrides
    /// current for every touched remote vertex. Degrees are installed only
    /// when resolvable for *every* ghost of the new base (always, when the
    /// base had them); otherwise the new base is left degree-less, which
    /// only id-ordered pipelines accept.
    ///
    /// The overlay itself is not modified; call [`reset`](Overlay::reset)
    /// after swapping the prepared state.
    pub fn merged_local_graph(&self, lg: &LocalGraph) -> LocalGraph {
        let neighborhoods: Vec<(VertexId, Vec<VertexId>)> = lg
            .owned_range()
            .map(|v| (v, self.merged_neighbors(lg, v).collect()))
            .collect();
        let mut merged =
            LocalGraph::from_neighborhoods(lg.partition().clone(), lg.rank(), neighborhoods);
        let degrees: Option<Vec<u64>> = merged
            .ghosts()
            .ids()
            .iter()
            .map(|&g| self.ghost_degree(lg, g))
            .collect();
        if let Some(d) = degrees {
            merged.set_ghost_degrees(d);
        }
        merged
    }

    /// Clears the delta lists after a compaction. Ghost-degree overrides
    /// are retained: they record current global degrees, which stay valid
    /// (the refresh phase updates them whenever a degree changes).
    pub fn reset(&mut self) {
        for l in &mut self.added {
            l.clear();
        }
        for l in &mut self.removed {
            l.clear();
        }
        self.added_entries = 0;
        self.removed_entries = 0;
        self.added_remote.clear();
    }
}

/// Sorted stream over `(base \ removed) ∪ added`. See
/// [`Overlay::merged_neighbors`].
#[derive(Debug, Clone)]
pub struct MergedNeighbors<'a> {
    base: &'a [VertexId],
    added: &'a [VertexId],
    removed: &'a [VertexId],
    bi: usize,
    ai: usize,
}

impl Iterator for MergedNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            let b = self.base.get(self.bi).copied();
            let a = self.added.get(self.ai).copied();
            match (b, a) {
                (None, None) => return None,
                (None, Some(x)) => {
                    self.ai += 1;
                    return Some(x);
                }
                (Some(x), None) => {
                    self.bi += 1;
                    if self.removed.binary_search(&x).is_err() {
                        return Some(x);
                    }
                }
                (Some(x), Some(y)) => {
                    // added ∩ base = ∅ by invariant, so x ≠ y
                    if x < y {
                        self.bi += 1;
                        if self.removed.binary_search(&x).is_err() {
                            return Some(x);
                        }
                    } else {
                        self.ai += 1;
                        return Some(y);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricount_graph::dist::DistGraph;
    use tricount_graph::Csr;

    fn local_of(g: &Csr, p: usize, rank: usize) -> LocalGraph {
        let mut dg = DistGraph::new_balanced_vertices(g, p);
        dg.fill_ghost_degrees_centrally();
        dg.into_locals().remove(rank)
    }

    #[test]
    fn merged_neighbors_reflect_edits() {
        let g = tricount_gen::rgg2d_default(40, 11);
        let lg = local_of(&g, 2, 0);
        let mut ov = Overlay::for_local(&lg);
        let v = lg.owned_range().start;
        let base: Vec<VertexId> = lg.neighbors(v).to_vec();

        // delete the first base neighbor, add two absent ones
        let absent: Vec<VertexId> = (0..40u64)
            .filter(|&u| u != v && !g.has_edge(v, u))
            .take(2)
            .collect();
        assert_eq!(absent.len(), 2, "graph is sparse enough");
        if let Some(&gone) = base.first() {
            assert!(ov.has_edge(&lg, v, gone));
            ov.delete(&lg, v, gone);
            assert!(!ov.has_edge(&lg, v, gone));
        }
        for &u in &absent {
            assert!(!ov.has_edge(&lg, v, u));
            ov.insert(&lg, v, u);
            assert!(ov.has_edge(&lg, v, u));
        }

        let mut expect: Vec<VertexId> = base.iter().copied().skip(1).collect();
        expect.extend(&absent);
        expect.sort_unstable();
        let merged: Vec<VertexId> = ov.merged_neighbors(&lg, v).collect();
        assert_eq!(merged, expect);
        assert_eq!(ov.degree_after(&lg, v), expect.len() as u64);
        assert_eq!(
            ov.entries(),
            2 + u64::from(!base.is_empty()),
            "two adds plus one remove"
        );
    }

    #[test]
    fn insert_then_delete_cancels() {
        let g = tricount_gen::rgg2d_default(30, 5);
        let lg = local_of(&g, 1, 0);
        let mut ov = Overlay::for_local(&lg);
        let v = 0u64;
        let u = (1..30u64).find(|&u| !g.has_edge(v, u)).unwrap();
        ov.insert(&lg, v, u);
        assert_eq!(ov.entries(), 1);
        ov.delete(&lg, v, u);
        assert_eq!(ov.entries(), 0);
        assert!(ov.is_clean());
        let merged: Vec<VertexId> = ov.merged_neighbors(&lg, v).collect();
        assert_eq!(merged, lg.neighbors(v));
    }

    #[test]
    fn delete_then_reinsert_cancels() {
        let g = tricount_gen::rgg2d_default(30, 5);
        let lg = local_of(&g, 1, 0);
        let mut ov = Overlay::for_local(&lg);
        let v = (0..30u64).find(|&v| !lg.neighbors(v).is_empty()).unwrap();
        let u = lg.neighbors(v)[0];
        ov.delete(&lg, v, u);
        ov.insert(&lg, v, u);
        assert!(ov.is_clean());
        assert!(ov.has_edge(&lg, v, u));
    }

    #[test]
    fn merged_local_graph_compacts_with_degrees() {
        let g = tricount_gen::rgg2d_default(60, 9);
        let p = 3;
        let lg = local_of(&g, p, 1);
        let mut ov = Overlay::for_local(&lg);
        let range = lg.owned_range();

        // add a cut edge to a brand-new remote endpoint
        let v = range.start;
        let remote = (0..60u64)
            .find(|&u| !lg.is_owned(u) && !g.has_edge(v, u) && lg.ghosts().index_of(u).is_none())
            .expect("some un-ghosted remote vertex");
        ov.insert(&lg, v, remote);
        assert!(ov.tracks_remote(&lg, remote));
        // the protocol would refresh its degree; simulate that
        ov.set_ghost_degree(remote, g.neighbors(remote).len() as u64 + 1);

        let merged = ov.merged_local_graph(&lg);
        assert_eq!(merged.owned_range(), range);
        assert!(merged.ghosts().index_of(remote).is_some());
        assert!(merged.ghosts().degrees_known());
        let gi = merged.ghosts().index_of(remote).unwrap();
        assert_eq!(
            merged.ghosts().degree(gi),
            g.neighbors(remote).len() as u64 + 1
        );
        assert_eq!(
            merged.degree(v),
            lg.degree(v) + 1,
            "merged base includes the added edge"
        );
        // orientation by degree works on the compacted base
        let oriented = merged.orient(tricount_graph::OrderingKind::Degree, true);
        assert!(oriented.is_expanded());
    }
}

//! Edge-update batches and their canonical form.
//!
//! A batch is a **set** of desired undirected edge mutations: order within
//! a batch does not matter. Canonicalisation normalises every edge to
//! `u < v`, drops self-loops, collapses duplicate mentions of the same
//! edge, and cancels an insert + delete of the same edge to a no-op (the
//! edge is left as it was). Whether a surviving operation actually changes
//! the graph ("effectiveness" — inserting an edge that already exists is a
//! no-op) is decided against the live adjacency by the distributed
//! protocol, not here.

use tricount_graph::{Csr, VertexId};

/// One requested undirected edge mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Insert the undirected edge `{0, 1}` (no-op if present).
    Insert(VertexId, VertexId),
    /// Delete the undirected edge `{0, 1}` (no-op if absent).
    Delete(VertexId, VertexId),
}

impl EdgeUpdate {
    /// The endpoints, as written.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeUpdate::Insert(..))
    }
}

/// A batch of edge updates, as submitted (possibly redundant).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// The requested operations, in submission order.
    pub ops: Vec<EdgeUpdate>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insertion of `{u, v}`.
    pub fn insert(&mut self, u: VertexId, v: VertexId) {
        self.ops.push(EdgeUpdate::Insert(u, v));
    }

    /// Appends a deletion of `{u, v}`.
    pub fn delete(&mut self, u: VertexId, v: VertexId) {
        self.ops.push(EdgeUpdate::Delete(u, v));
    }

    /// Number of requested operations (before canonicalisation).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The largest vertex id mentioned, if any (for validation).
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.ops
            .iter()
            .map(|op| {
                let (u, v) = op.endpoints();
                u.max(v)
            })
            .max()
    }

    /// Canonicalises the batch: normalises edges to `u < v`, drops
    /// self-loops, collapses duplicates, and cancels insert + delete of
    /// the same edge. The result mentions each edge at most once, sorted
    /// by `(u, v)`.
    pub fn canonicalize(&self) -> CanonicalBatch {
        use std::collections::BTreeMap;
        let mut seen: BTreeMap<(VertexId, VertexId), (bool, bool)> = BTreeMap::new();
        for op in &self.ops {
            let (a, b) = op.endpoints();
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            let entry = seen.entry(key).or_insert((false, false));
            if op.is_insert() {
                entry.0 = true;
            } else {
                entry.1 = true;
            }
        }
        let ops = seen
            .into_iter()
            .filter_map(|((u, v), (ins, del))| match (ins, del) {
                (true, false) => Some(CanonicalOp { insert: true, u, v }),
                (false, true) => Some(CanonicalOp {
                    insert: false,
                    u,
                    v,
                }),
                // both mentioned: they cancel; neither: unreachable
                _ => None,
            })
            .collect();
        CanonicalBatch { ops }
    }
}

/// One canonical operation: `u < v`, each edge at most once per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalOp {
    /// `true` = insert, `false` = delete.
    pub insert: bool,
    /// Smaller endpoint (the edge's canonical tail).
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

/// A canonicalised batch: ops sorted by `(u, v)`, duplicate-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CanonicalBatch {
    /// The surviving operations.
    pub ops: Vec<CanonicalOp>,
}

impl CanonicalBatch {
    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of canonical operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// Parses the update text format: one op per line (`+ u v` inserts,
/// `- u v` deletes, `#` starts a comment), blank lines separate batches.
/// Returns the non-empty batches in file order.
pub fn parse_batches(text: &str) -> Result<Vec<UpdateBatch>, String> {
    let mut batches = Vec::new();
    let mut cur = UpdateBatch::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            if !cur.is_empty() {
                batches.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let sign = it.next().expect("non-empty line has a first token");
        let parse_v = |tok: Option<&str>| -> Result<VertexId, String> {
            tok.ok_or_else(|| format!("line {}: expected two vertex ids", lineno + 1))?
                .parse::<VertexId>()
                .map_err(|e| format!("line {}: bad vertex id: {e}", lineno + 1))
        };
        let u = parse_v(it.next())?;
        let v = parse_v(it.next())?;
        if it.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
        match sign {
            "+" => cur.insert(u, v),
            "-" => cur.delete(u, v),
            other => {
                return Err(format!(
                    "line {}: expected '+' or '-', got {other:?}",
                    lineno + 1
                ))
            }
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    Ok(batches)
}

/// Applies a canonical batch to a full CSR graph, the from-scratch
/// reference the incremental path is tested against. Inserting a present
/// edge and deleting an absent one are no-ops, exactly like the
/// distributed protocol's effectiveness filter.
pub fn apply_to_csr(g: &Csr, batch: &CanonicalBatch) -> Csr {
    let n = g.num_vertices();
    let mut lists: Vec<Vec<VertexId>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    for op in &batch.ops {
        let (u, v) = (op.u as usize, op.v as usize);
        assert!(op.v < n, "update touches vertex {} outside graph", op.v);
        if op.insert {
            if let Err(pos) = lists[u].binary_search(&op.v) {
                lists[u].insert(pos, op.v);
                let pos = lists[v].binary_search(&op.u).unwrap_err();
                lists[v].insert(pos, op.u);
            }
        } else if let Ok(pos) = lists[u].binary_search(&op.v) {
            lists[u].remove(pos);
            let pos = lists[v].binary_search(&op.u).unwrap();
            lists[v].remove(pos);
        }
    }
    Csr::from_neighbor_lists(lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_normalises_dedups_and_cancels() {
        let mut b = UpdateBatch::new();
        b.insert(5, 2); // normalised to (2, 5)
        b.insert(2, 5); // duplicate
        b.delete(9, 9); // self-loop dropped
        b.delete(7, 1); // (1, 7)
        b.insert(1, 7); // cancels with the delete
        b.insert(0, 3);
        let c = b.canonicalize();
        assert_eq!(
            c.ops,
            vec![
                CanonicalOp {
                    insert: true,
                    u: 0,
                    v: 3
                },
                CanonicalOp {
                    insert: true,
                    u: 2,
                    v: 5
                },
            ]
        );
    }

    #[test]
    fn parse_roundtrips_batches() {
        let text = "# first batch\n+ 0 1\n- 2 3\n\n\n+ 4 5\n";
        let batches = parse_batches(text).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(
            batches[0].ops,
            vec![EdgeUpdate::Insert(0, 1), EdgeUpdate::Delete(2, 3)]
        );
        assert_eq!(batches[1].ops, vec![EdgeUpdate::Insert(4, 5)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_batches("* 1 2").is_err());
        assert!(parse_batches("+ 1").is_err());
        assert!(parse_batches("+ 1 2 3").is_err());
        assert!(parse_batches("+ 1 x").is_err());
    }

    #[test]
    fn apply_to_csr_matches_manual_edit() {
        let g = tricount_gen::rgg2d_default(64, 7);
        let (a, b) = {
            // an existing edge to delete
            let v = (0..64u64)
                .find(|&v| !g.neighbors(v).is_empty())
                .expect("generator produced edges");
            (v, g.neighbors(v)[0])
        };
        let (x, y) = {
            // an absent edge to insert
            let mut found = None;
            'outer: for x in 0..64u64 {
                for y in (x + 1)..64 {
                    if !g.has_edge(x, y) {
                        found = Some((x, y));
                        break 'outer;
                    }
                }
            }
            found.expect("graph is not complete")
        };
        let mut batch = UpdateBatch::new();
        batch.delete(a, b);
        batch.insert(x, y);
        batch.insert(x, y); // duplicate, collapsed
        let g2 = apply_to_csr(&g, &batch.canonicalize());
        assert!(!g2.has_edge(a, b));
        assert!(!g2.has_edge(b, a));
        assert!(g2.has_edge(x, y));
        assert!(g2.has_edge(y, x));
        assert_eq!(g2.num_edges(), g.num_edges()); // one out, one in
    }

    #[test]
    fn noop_updates_leave_graph_identical() {
        let g = tricount_gen::rgg2d_default(64, 3);
        let mut batch = UpdateBatch::new();
        // delete an absent edge, insert a present one
        let v = (0..64u64)
            .find(|&v| !g.neighbors(v).is_empty())
            .expect("edges exist");
        let u = g.neighbors(v)[0];
        batch.insert(v, u);
        let mut absent = None;
        'outer: for x in 0..64u64 {
            for y in (x + 1)..64 {
                if !g.has_edge(x, y) {
                    absent = Some((x, y));
                    break 'outer;
                }
            }
        }
        let (x, y) = absent.unwrap();
        batch.delete(x, y);
        let g2 = apply_to_csr(&g, &batch.canonicalize());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..64u64 {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }
}

//! # tricount-delta — dynamic graph updates for the resident pipeline
//!
//! The CETRIC/DITRIC pipeline is one-shot: partition → ghost exchange →
//! orient → contract, then count. The resident engine (PR 2) keeps that
//! prepared state alive across queries but cannot *change* it short of a
//! full rebuild. This crate supplies the data layer of the incremental
//! path:
//!
//! * [`batch`] — edge-update batches ([`UpdateBatch`]) with a canonical
//!   form ([`CanonicalBatch`]): undirected edges normalised to `u < v`,
//!   duplicates collapsed, self-loops dropped, and an insert + delete of
//!   the same edge cancelling to a no-op. Plus a text format (`+ u v` /
//!   `- u v`, blank-line separated batches) for the CLI, and a reference
//!   [`apply_to_csr`](batch::apply_to_csr) rebuild used by equivalence
//!   tests.
//! * [`overlay`] — the per-PE **mutable adjacency overlay**
//!   ([`Overlay`]): sorted insertion/deletion delta lists layered over the
//!   immutable base [`LocalGraph`](tricount_graph::dist::LocalGraph), a
//!   merged-neighborhood iterator feeding the streaming
//!   `graph::intersect` kernels, refreshed ghost-degree overrides, and
//!   compaction (merging the overlay into a fresh base local graph with
//!   no communication).
//! * [`workload`] — a deterministic mixed insert/delete batch generator
//!   for benches, examples and tests.
//!
//! The distributed delta *protocol* (routing updates to owners, counting
//! the triangle delta with same-batch correction terms, targeted ghost
//! refresh) lives in `tricount-core::dist::delta`; the serving surface
//! (`Engine::apply_updates`) in `tricount-engine`. This crate is pure data
//! structure — it depends only on `tricount-graph`.

#![warn(missing_docs)]

pub mod batch;
pub mod overlay;
pub mod workload;

pub use batch::{
    apply_to_csr, parse_batches, CanonicalBatch, CanonicalOp, EdgeUpdate, UpdateBatch,
};
pub use overlay::Overlay;
pub use workload::random_batch;

//! Deterministic update-workload generation for benches, examples and
//! tests.

use tricount_graph::{Csr, VertexId};

use crate::batch::UpdateBatch;

/// SplitMix64 — the same tiny deterministic generator style the rest of
/// the workspace uses for seeding; good enough for workload shapes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates a mixed insert/delete batch of `ops` operations against the
/// *current* graph `g`: random vertex pairs, inserting when the edge is
/// absent and deleting when it is present — so batches naturally mix both
/// kinds with the graph's density. Deterministic in `seed`. The returned
/// batch may still contain duplicates and (after earlier ops in the same
/// batch) no-ops; that is intentional — canonicalisation and the
/// protocol's effectiveness filter are part of what callers exercise.
pub fn random_batch(g: &Csr, ops: usize, seed: u64) -> UpdateBatch {
    let n = g.num_vertices();
    assert!(n >= 2, "need at least two vertices");
    let mut rng = seed ^ 0xd1f7_5329_8e5a_b9d3;
    let mut batch = UpdateBatch::new();
    while batch.len() < ops {
        let u = splitmix64(&mut rng) % n;
        let v = splitmix64(&mut rng) % n;
        if u == v {
            continue;
        }
        let (u, v): (VertexId, VertexId) = (u.min(v), u.max(v));
        if g.has_edge(u, v) {
            batch.delete(u, v);
        } else {
            batch.insert(u, v);
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_batch_is_deterministic_and_mixed() {
        let g = tricount_gen::rgg2d_default(200, 13);
        let a = random_batch(&g, 50, 7);
        let b = random_batch(&g, 50, 7);
        assert_eq!(a, b, "same seed, same batch");
        let c = random_batch(&g, 50, 8);
        assert_ne!(a, c, "different seed, different batch");
        assert_eq!(a.len(), 50);
        let canon = a.canonicalize();
        assert!(!canon.is_empty());
        let inserts = canon.ops.iter().filter(|o| o.insert).count();
        let deletes = canon.len() - inserts;
        assert!(inserts > 0 && deletes > 0, "workload mixes both kinds");
    }
}

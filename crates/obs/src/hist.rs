//! Log-bucketed (HDR-style) histograms with quantile readout.
//!
//! The paper's evaluation reads off *distributions* — message sizes, queue
//! depths, per-query latencies — not just sums. [`LogHistogram`] records
//! `u64` values into buckets whose width grows geometrically: each power of
//! two is split into `2^SUB_BITS = 8` linear sub-buckets, bounding the
//! relative quantile error at `2^-3 = 12.5%` while keeping the bucket count
//! fixed (≤ 496) regardless of the value range. Recording is O(1) with no
//! allocation beyond a one-time bucket-array growth, so histograms are cheap
//! enough to live on hot paths like the engine tick loop.

/// Sub-bucket resolution: each power of two is split into `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Bucket index of a value. Values below `SUB` get exact singleton buckets;
/// larger values share a bucket with at most 12.5% relative width.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ SUB_BITS
    let shift = msb - SUB_BITS as usize;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    (msb - SUB_BITS as usize + 1) * SUB + sub
}

/// Largest value falling into bucket `i` (inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let msb = i / SUB - 1 + SUB_BITS as usize;
    let sub = i % SUB;
    let shift = msb - SUB_BITS as usize;
    (((SUB + sub + 1) as u64) << shift) - 1
}

/// A fixed-relative-error histogram over `u64` values.
///
/// Latency consumers record nanoseconds ([`LogHistogram::record_seconds`]);
/// size consumers record raw units (words, queue depths). Quantiles are
/// read from bucket upper bounds clamped into the observed `[min, max]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Records a non-negative duration in seconds as whole nanoseconds.
    pub fn record_seconds(&mut self, seconds: f64) {
        let nanos = (seconds.max(0.0) * 1e9).round();
        self.record(if nanos >= u64::MAX as f64 {
            u64::MAX
        } else {
            nanos as u64
        });
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) with ≤ 12.5% relative error: the
    /// upper bound of the bucket holding the rank-`⌈q·count⌉` value,
    /// clamped into `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// [`LogHistogram::quantile`] scaled back to seconds for
    /// nanosecond-recorded histograms.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile(q) as f64 * 1e-9
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }

    /// A compact seconds-unit summary for nanosecond-recorded histograms.
    pub fn summary_seconds(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean() * 1e-9,
            p50: self.quantile_seconds(0.5),
            p90: self.quantile_seconds(0.9),
            p99: self.quantile_seconds(0.99),
            max: self.max() as f64 * 1e-9,
        }
    }
}

/// Quantile summary of a nanosecond-recorded latency histogram, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Number of recorded latencies.
    pub count: u64,
    /// Mean latency.
    pub mean: f64,
    /// Median (≤ 12.5% relative error, like all quantiles here).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest recorded latency (exact).
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let mut prev = None;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            if let Some(p) = prev {
                assert!(i == p || i == p + 1, "index jumped at {v}");
            }
            assert!(v <= bucket_upper(i), "v={v} above its bucket upper");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "v={v} below its bucket");
            }
            prev = Some(i);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 13);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = (q * 100_000.0) as u64;
            let got = h.quantile(q);
            assert!(got >= exact, "q={q}: {got} < {exact}");
            assert!(
                got as f64 <= exact as f64 * 1.125 + 1.0,
                "q={q}: {got} too far above {exact}"
            );
        }
    }

    #[test]
    fn merge_matches_joint_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut joint = LogHistogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            joint.record(x);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn seconds_round_trip() {
        let mut h = LogHistogram::new();
        h.record_seconds(0.001);
        let q = h.quantile_seconds(0.5);
        assert!((0.001..=0.001 * 1.125).contains(&q), "{q}");
        let s = h.summary_seconds();
        assert_eq!(s.count, 1);
        assert!(s.max > 0.0009);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
        assert_eq!(h.buckets().count(), 0);
    }
}

//! Human-readable profile reports and registry population from run data.
//!
//! Everything here consumes the schedule-independent [`RunStats`] counters
//! (plus, optionally, the recorded trace) — the same data the chrome
//! exporter uses — and renders either a fixed-width phase table for the
//! terminal or a [`MetricsRegistry`] for Prometheus scraping.

use tricount_comm::cost::CostModel;
use tricount_comm::stats::RunStats;
use tricount_comm::trace::{SpanKind, Trace, TraceEvent};

use crate::hist::LogHistogram;
use crate::prom::MetricsRegistry;

/// Message-size and queue-depth distributions extracted from a trace.
#[derive(Debug, Default)]
pub struct CommHistograms {
    /// Words per point-to-point message (`Sent` events).
    pub message_words: LogHistogram,
    /// Buffered words after each queue post (`Posted`/`Relayed` events) —
    /// the aggregation-queue depth the §IV-A memory lemma bounds.
    pub queue_depth_words: LogHistogram,
}

/// Builds the communication histograms from a recorded trace.
pub fn comm_histograms(trace: &Trace) -> CommHistograms {
    let mut out = CommHistograms::default();
    for events in &trace.per_pe {
        for ev in events {
            match ev {
                TraceEvent::Sent { words, .. } => out.message_words.record(*words),
                TraceEvent::Posted { buffered_after, .. }
                | TraceEvent::Relayed { buffered_after, .. } => {
                    out.queue_depth_words.record(*buffered_after)
                }
                _ => {}
            }
        }
    }
    out
}

/// Per-phase wall time: max over PEs of the i-th phase span's wall
/// duration (None when the trace carries no span for that phase).
fn phase_wall_ms(trace: &Trace, phase_index: usize, name: &str) -> Option<f64> {
    let mut max = None;
    for spans in &trace.spans {
        let span = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Phase)
            .nth(phase_index)?;
        if span.label != name {
            return None;
        }
        let ms = span.wall_seconds() * 1e3;
        max = Some(max.map_or(ms, |m: f64| m.max(ms)));
    }
    max
}

/// Renders the per-phase breakdown table: modeled time, measured wall time
/// (traced runs), message/volume/work maxima — the numbers behind the
/// paper's Fig. 5-style analysis.
pub fn phase_report(stats: &RunStats, trace: Option<&Trace>, cost: &CostModel) -> String {
    let mut out = String::new();
    out.push_str(&format!("phase breakdown (p = {})\n", stats.p));
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>10} {:>14} {:>12} {:>14}\n",
        "phase", "modeled ms", "wall ms", "max msgs", "bottleneck wds", "work ops", "peak buffered"
    ));
    for (pi, ph) in stats.phases.iter().enumerate() {
        let wall = trace
            .and_then(|t| phase_wall_ms(t, pi, &ph.name))
            .map_or("-".to_string(), |ms| format!("{ms:.3}"));
        out.push_str(&format!(
            "{:<16} {:>12.3} {:>12} {:>10} {:>14} {:>12} {:>14}\n",
            ph.name,
            ph.modeled_time(cost) * 1e3,
            wall,
            ph.max_sent_messages(),
            ph.bottleneck_volume(),
            ph.total_work(),
            ph.max_peak_buffered(),
        ));
    }
    out.push_str(&format!(
        "total modeled: {:.3} ms",
        stats.modeled_time(cost) * 1e3
    ));
    let makespan = stats.makespan();
    if makespan > 0.0 {
        out.push_str(&format!(
            " | overlap-aware makespan: {:.3} ms",
            makespan * 1e3
        ));
    }
    out.push('\n');
    out
}

/// One phase's modeled-vs-measured comparison in a [`ModelFitReport`].
#[derive(Debug, Clone)]
pub struct PhaseFit {
    /// Phase name.
    pub name: String,
    /// Modeled phase time (max over ranks, seconds).
    pub modeled_seconds: f64,
    /// Measured wall phase time (max over ranks, seconds).
    pub measured_seconds: f64,
    /// `measured / modeled` (∞ when the model predicts zero but the wall
    /// clock disagrees).
    pub ratio: f64,
    /// Whether the discrepancy factor `max(ratio, 1/ratio)` exceeds the
    /// report's threshold.
    pub flagged: bool,
}

/// Modeled-vs-measured fit of one run: per-phase ratios with outlier
/// flagging, and a calibration hand-off that feeds the overall discrepancy
/// back into [`CostModel::calibrated`].
///
/// This is the honesty check the dual-clock trace visualizes: phases where
/// the α/β/t_op fiction and the host's wall clock disagree by more than
/// `threshold`× are exactly where contention (or an unmodeled cost) lives.
#[derive(Debug, Clone)]
pub struct ModelFitReport {
    /// Per-phase fits, in execution order (phases without wall
    /// measurements are skipped).
    pub phases: Vec<PhaseFit>,
    /// Discrepancy factor above which a phase is flagged.
    pub threshold: f64,
    /// Total modeled seconds over the compared phases.
    pub modeled_total: f64,
    /// Total measured wall seconds over the compared phases.
    pub measured_total: f64,
}

impl ModelFitReport {
    /// Compares each phase's modeled time against its measured wall time,
    /// flagging phases whose discrepancy factor exceeds `threshold`
    /// (i.e. measured/modeled outside `[1/threshold, threshold]`). Phases
    /// with no wall measurement (synthetic stats) are skipped.
    pub fn compute(stats: &RunStats, cost: &CostModel, threshold: f64) -> ModelFitReport {
        let threshold = threshold.max(1.0);
        let mut phases = Vec::new();
        let mut modeled_total = 0.0;
        let mut measured_total = 0.0;
        for ph in &stats.phases {
            let measured = ph.max_wall();
            if measured <= 0.0 {
                continue;
            }
            let modeled = ph.modeled_time(cost);
            let ratio = if modeled > 0.0 {
                measured / modeled
            } else {
                f64::INFINITY
            };
            let factor = if ratio > 0.0 {
                ratio.max(1.0 / ratio)
            } else {
                f64::INFINITY
            };
            modeled_total += modeled;
            measured_total += measured;
            phases.push(PhaseFit {
                name: ph.name.clone(),
                modeled_seconds: modeled,
                measured_seconds: measured,
                ratio,
                flagged: factor > threshold,
            });
        }
        ModelFitReport {
            phases,
            threshold,
            modeled_total,
            measured_total,
        }
    }

    /// Overall `measured / modeled` ratio (1.0 when nothing was compared).
    pub fn overall_ratio(&self) -> f64 {
        if self.modeled_total > 0.0 && self.measured_total > 0.0 {
            self.measured_total / self.modeled_total
        } else {
            1.0
        }
    }

    /// Phases whose discrepancy exceeded the threshold.
    pub fn flagged(&self) -> Vec<&PhaseFit> {
        self.phases.iter().filter(|f| f.flagged).collect()
    }

    /// Feeds the overall discrepancy back into the cost model: every
    /// constant of `base` is scaled by [`ModelFitReport::overall_ratio`],
    /// so the returned model predicts this host's measured totals.
    /// (A proper per-constant fit needs the probe binaries — see
    /// `tricount-pingpong`/`tricount-allgather`; this is the coarse
    /// single-run correction.)
    pub fn calibrated(&self, base: &CostModel) -> CostModel {
        let s = self.overall_ratio();
        CostModel::calibrated(base.alpha * s, base.beta * s, base.t_op * s)
    }

    /// Renders the fit table plus the flagged-phase verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model fit (flag threshold {:.1}x)\n{:<16} {:>12} {:>12} {:>10}  {}\n",
            self.threshold, "phase", "modeled ms", "wall ms", "wall/model", "verdict"
        ));
        for f in &self.phases {
            out.push_str(&format!(
                "{:<16} {:>12.3} {:>12.3} {:>10.2}  {}\n",
                f.name,
                f.modeled_seconds * 1e3,
                f.measured_seconds * 1e3,
                f.ratio,
                if f.flagged { "FLAGGED" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "overall wall/model: {:.2} ({} of {} phases flagged)\n",
            self.overall_ratio(),
            self.flagged().len(),
            self.phases.len()
        ));
        out
    }
}

/// Renders a per-label span summary (count, total wall ms, total simulated
/// ms) aggregated over all PEs, in first-appearance order.
pub fn span_summary(trace: &Trace) -> String {
    // (kind name, label) -> (count, wall s, sim s); Vec keeps label order
    // deterministic without relying on hash iteration.
    type SpanAgg = ((&'static str, String), (u64, f64, f64));
    let mut rows: Vec<SpanAgg> = Vec::new();
    for spans in &trace.spans {
        for s in spans {
            let key = (s.kind.name(), s.label.clone());
            match rows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, acc)) => {
                    acc.0 += 1;
                    acc.1 += s.wall_seconds();
                    acc.2 += s.sim_seconds();
                }
                None => rows.push((key, (1, s.wall_seconds(), s.sim_seconds()))),
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<20} {:>8} {:>14} {:>14}\n",
        "kind", "label", "count", "wall ms", "sim ms"
    ));
    for ((kind, label), (count, wall, sim)) in rows {
        out.push_str(&format!(
            "{:<12} {:<20} {:>8} {:>14.3} {:>14.3}\n",
            kind,
            label,
            count,
            wall * 1e3,
            sim * 1e3
        ));
    }
    out
}

/// Renders kernel-dispatch tallies as a fixed-width table: one row per
/// (phase, kernel) with the call count and its share of the phase.
///
/// Takes plain `(phase, [(kernel, calls)])` data so the obs crate stays
/// decoupled from the kernel layer — callers flatten their
/// `DispatchReport` (e.g. `tricount_core::dist::dispatch`) into this shape
/// via `KernelCounters::named()`. Zero-call kernels are elided; phases
/// with no dispatches at all are skipped.
pub fn dispatch_table(phases: &[(&str, Vec<(&str, u64)>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:<8} {:>12} {:>8}\n",
        "phase", "kernel", "calls", "share"
    ));
    let mut any = false;
    for (phase, kernels) in phases {
        let total: u64 = kernels.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            continue;
        }
        for &(kernel, n) in kernels {
            if n == 0 {
                continue;
            }
            any = true;
            out.push_str(&format!(
                "{:<16} {:<8} {:>12} {:>7.1}%\n",
                phase,
                kernel,
                n,
                n as f64 / total as f64 * 100.0
            ));
        }
    }
    if !any {
        out.push_str("(no kernel dispatches recorded)\n");
    }
    out
}

/// Populates a [`MetricsRegistry`] from a run's statistics (and, when a
/// trace is available, its message-size/queue-depth histograms).
pub fn run_metrics(stats: &RunStats, cost: &CostModel, trace: Option<&Trace>) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let t = stats.totals();
    reg.gauge(
        "tricount_run_pes",
        "Number of simulated PEs",
        stats.p as f64,
    );
    reg.counter(
        "tricount_run_sent_messages_total",
        "Point-to-point messages sent",
        t.sent_messages,
    );
    reg.counter(
        "tricount_run_sent_words_total",
        "Words sent point-to-point",
        t.sent_words,
    );
    reg.counter(
        "tricount_run_recv_messages_total",
        "Point-to-point messages received",
        t.recv_messages,
    );
    reg.counter(
        "tricount_run_work_ops_total",
        "Metered local work operations",
        t.work_ops,
    );
    reg.gauge(
        "tricount_run_modeled_seconds",
        "Modeled run time under the cost model",
        stats.modeled_time(cost),
    );
    reg.gauge(
        "tricount_run_makespan_seconds",
        "Overlap-aware makespan (0 in untimed runs)",
        stats.makespan(),
    );
    reg.gauge(
        "tricount_run_max_sent_messages",
        "Per-PE message-count bottleneck",
        stats.max_sent_messages() as f64,
    );
    reg.gauge(
        "tricount_run_bottleneck_words",
        "Per-PE send-volume bottleneck",
        stats.bottleneck_volume() as f64,
    );
    for ph in &stats.phases {
        reg.gauge_with(
            "tricount_phase_modeled_seconds",
            "Per-phase modeled time",
            &[("phase", ph.name.clone())],
            ph.modeled_time(cost),
        );
    }
    if let Some(trace) = trace {
        let h = comm_histograms(trace);
        reg.histogram_units(
            "tricount_message_words",
            "Point-to-point message sizes in words",
            &h.message_words,
        );
        reg.histogram_units(
            "tricount_queue_depth_words",
            "Aggregation-queue depth after each post",
            &h.queue_depth_words,
        );
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::parse_exposition;
    use tricount_comm::stats::{Counters, PhaseStats};
    use tricount_comm::trace::{SpanRecord, SpanStamp};

    fn stats() -> RunStats {
        RunStats {
            p: 1,
            phases: vec![PhaseStats::unmeasured(
                "local",
                vec![Counters {
                    work_ops: 10,
                    sent_messages: 2,
                    sent_words: 8,
                    recv_messages: 2,
                    recv_words: 8,
                    ..Counters::default()
                }],
            )],
            contention: None,
        }
    }

    #[test]
    fn model_fit_flags_discrepant_phases() {
        let cost = CostModel::calibrated(0.0, 0.0, 1e-3); // 1 ms per op
        let mut s = stats(); // one phase, 10 work ops → modeled 10 ms
        s.phases[0].wall_per_rank = vec![0.200]; // measured 200 ms: 20x off
        let fit = ModelFitReport::compute(&s, &cost, 3.0);
        assert_eq!(fit.phases.len(), 1);
        assert!(fit.phases[0].flagged);
        assert!((fit.phases[0].ratio - 20.0).abs() < 1e-9);
        assert_eq!(fit.flagged().len(), 1);
        let rendered = fit.render();
        assert!(rendered.contains("FLAGGED"), "{rendered}");
        // feeding the discrepancy back scales the model onto the host
        let cal = fit.calibrated(&cost);
        assert!((cal.t_op - 20e-3).abs() < 1e-12);

        // a phase within tolerance is not flagged
        s.phases[0].wall_per_rank = vec![0.012];
        let fit = ModelFitReport::compute(&s, &cost, 3.0);
        assert!(!fit.phases[0].flagged);

        // synthetic stats (no wall measurements) compare nothing
        let fit = ModelFitReport::compute(&stats(), &cost, 3.0);
        assert!(fit.phases.is_empty());
        assert_eq!(fit.overall_ratio(), 1.0);
    }

    #[test]
    fn phase_report_renders_all_phases() {
        let rep = phase_report(&stats(), None, &CostModel::supermuc());
        assert!(rep.contains("local"));
        assert!(rep.contains("total modeled"));
    }

    #[test]
    fn phase_report_includes_wall_time_from_spans() {
        let trace = Trace {
            per_pe: vec![Vec::new()],
            spans: vec![vec![SpanRecord {
                kind: SpanKind::Phase,
                label: "local".to_string(),
                begin: SpanStamp {
                    sim: 0.0,
                    wall_nanos: 0,
                },
                end: SpanStamp {
                    sim: 0.0,
                    wall_nanos: 2_000_000,
                },
            }]],
        };
        let rep = phase_report(&stats(), Some(&trace), &CostModel::supermuc());
        assert!(rep.contains("2.000"), "{rep}");
        let summary = span_summary(&trace);
        assert!(summary.contains("phase"));
        assert!(summary.contains("local"));
    }

    #[test]
    fn dispatch_table_elides_zero_rows() {
        let rows = vec![
            (
                "local",
                vec![("merge", 10u64), ("gallop", 30), ("bitmap", 0)],
            ),
            ("global", vec![("merge", 0u64), ("gallop", 0)]),
        ];
        let t = dispatch_table(&rows);
        assert!(t.contains("local"), "{t}");
        assert!(t.contains("gallop"), "{t}");
        assert!(t.contains("75.0%"), "{t}");
        assert!(!t.contains("bitmap"), "{t}");
        assert!(!t.contains("global"), "{t}");
        let empty = dispatch_table(&[("local", vec![("merge", 0u64)])]);
        assert!(empty.contains("no kernel dispatches"), "{empty}");
    }

    #[test]
    fn run_metrics_render_and_parse() {
        let trace = Trace {
            per_pe: vec![vec![
                TraceEvent::Sent {
                    to: 0,
                    words: 4,
                    seq: 0,
                },
                TraceEvent::Posted {
                    dest: 0,
                    hop: 0,
                    payload_words: 3,
                    payload_hash: 1,
                    buffered_after: 5,
                },
            ]],
            ..Trace::default()
        };
        let reg = run_metrics(&stats(), &CostModel::supermuc(), Some(&trace));
        let samples = parse_exposition(&reg.render()).expect("parse");
        assert!(samples
            .iter()
            .any(|s| s.name == "tricount_run_sent_messages_total" && s.value == 2.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "tricount_message_words_count" && s.value == 1.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "tricount_phase_modeled_seconds"));
    }
}

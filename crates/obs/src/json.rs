//! A minimal JSON validity checker (recursive descent, no value tree).
//!
//! The workspace builds with no registry access, so exporter tests cannot
//! lean on serde; this validator is enough to assert "the chrome trace is
//! well-formed JSON" and to extract the few counts the tests compare.

/// Validates that `s` is exactly one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset and message of the
/// first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn value(b: &[u8], i: usize) -> Result<usize, String> {
    match b.get(i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at {i}", *c as char)),
        None => Err(format!("unexpected end of input at {i}")),
    }
}

fn literal(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
        Ok(i + lit.len())
    } else {
        Err(format!("bad literal at {i}"))
    }
}

fn number(b: &[u8], mut i: usize) -> Result<usize, String> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |b: &[u8], mut i: usize| -> usize {
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        i
    };
    let after_int = digits(b, i);
    if after_int == i {
        return Err(format!("bad number at {start}"));
    }
    i = after_int;
    if b.get(i) == Some(&b'.') {
        let after_frac = digits(b, i + 1);
        if after_frac == i + 1 {
            return Err(format!("bad fraction at {i}"));
        }
        i = after_frac;
    }
    if matches!(b.get(i), Some(b'e') | Some(b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+') | Some(b'-')) {
            i += 1;
        }
        let after_exp = digits(b, i);
        if after_exp == i {
            return Err(format!("bad exponent at {i}"));
        }
        i = after_exp;
    }
    Ok(i)
}

fn string(b: &[u8], mut i: usize) -> Result<usize, String> {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'"' => return Ok(i + 1),
            b'\\' => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    if b.len() < i + 6 || !b[i + 2..i + 6].iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at {i}"));
                    }
                    i += 6;
                }
                _ => return Err(format!("bad escape at {i}")),
            },
            0x20.. => i += 1,
            _ => return Err(format!("raw control byte in string at {i}")),
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[u8], mut i: usize) -> Result<usize, String> {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected object key at {i}"));
        }
        i = string(b, i)?;
        i = skip_ws(b, i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' at {i}"));
        }
        i = skip_ws(b, i + 1);
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b'}') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or '}}' at {i}")),
        }
    }
}

fn array(b: &[u8], mut i: usize) -> Result<usize, String> {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b']') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or ']' at {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-1.5e-3",
            "\"a\\nb\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":true}",
            "  [1, 2, 3]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "01a",
            "\"unterminated",
            "[1] trailing",
            "nul",
            "1.e5",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}

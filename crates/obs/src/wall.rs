//! The measured side of the dual clock: turns a drained
//! [`WallProfile`](tricount_comm::WallProfile) into a [`WallTimeline`] —
//! matched send→recv flows with queue-dwell times, per-PE barrier
//! intervals, and the contention meters folded into report/Prometheus
//! form.
//!
//! The modeled exporter ([`crate::chrome`]) reconstructs a *fiction*: the
//! α/β/t_op machine the paper reasons about. This module reconstructs the
//! *fact*: where the host's wall nanoseconds actually went. `tricount
//! profile` renders both side by side (dual-clock trace) and
//! [`crate::report::ModelFitReport`] quantifies the gap.

use std::collections::BTreeMap;

use tricount_comm::{WallEventKind, WallProfile};

use crate::hist::LogHistogram;
use crate::prom::MetricsRegistry;

/// One matched message: sent by `src` at `send_nanos`, popped by `dst` at
/// `recv_nanos` (both on the transport's shared epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Per-`(src, dst)` sequence number.
    pub seq: u64,
    /// Payload machine words.
    pub words: u64,
    /// Wall nanoseconds of the push.
    pub send_nanos: u64,
    /// Wall nanoseconds of the pop.
    pub recv_nanos: u64,
}

impl Flow {
    /// Queue dwell: pop minus push (0 if the clocks raced backwards).
    pub fn dwell_nanos(&self) -> u64 {
        self.recv_nanos.saturating_sub(self.send_nanos)
    }
}

/// One barrier visit of one PE: enter and exit stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierInterval {
    /// Wall nanoseconds of arrival at the barrier.
    pub enter_nanos: u64,
    /// Wall nanoseconds of release.
    pub exit_nanos: u64,
}

/// The post-run wall-clock reconstruction of one profiled threads run.
#[derive(Debug)]
pub struct WallTimeline {
    /// Number of PEs.
    pub p: usize,
    /// Matched send→recv flows, in send order.
    pub flows: Vec<Flow>,
    /// Barrier intervals per PE, indexed by rank.
    pub barriers: Vec<Vec<BarrierInterval>>,
    /// Queue-dwell histogram (nanoseconds) over all matched flows.
    pub dwell: LogHistogram,
    /// Sends whose receive never appeared in any ring (overflow on the
    /// receiver's side, or a run abandoned mid-flight).
    pub unmatched_sends: u64,
    /// Receives whose send never appeared in any ring (overflow on the
    /// sender's side).
    pub unmatched_recvs: u64,
    /// Events recorded over all rings.
    pub events_recorded: u64,
    /// Events dropped to ring overflow.
    pub events_dropped: u64,
    /// Wall nanoseconds of the last recorded event (timeline extent).
    pub end_nanos: u64,
}

impl WallTimeline {
    /// Matches sends to receives per `(src, dst, seq)` and folds the
    /// profile into a timeline. Ring overflow shows up as unmatched
    /// events, never as an error: the timeline is a best-effort view of
    /// whatever the rings held.
    pub fn build(profile: &WallProfile) -> WallTimeline {
        // (src, dst, seq) → send stamp+words. Sequence numbers are unique
        // per ordered pair by construction, so this is a bijective key.
        let mut sends: BTreeMap<(usize, usize, u64), (u64, u64)> = BTreeMap::new();
        let mut recvs: BTreeMap<(usize, usize, u64), u64> = BTreeMap::new();
        let mut barriers: Vec<Vec<BarrierInterval>> = vec![Vec::new(); profile.p];
        let mut end_nanos = 0u64;
        for log in &profile.per_pe {
            let mut pending_enter: Option<u64> = None;
            for ev in &log.events {
                end_nanos = end_nanos.max(ev.t_nanos);
                match ev.kind {
                    WallEventKind::Send { to, seq, words } => {
                        sends.insert((log.rank, to, seq), (ev.t_nanos, words));
                    }
                    WallEventKind::Recv { from, seq, .. } => {
                        recvs.insert((from, log.rank, seq), ev.t_nanos);
                    }
                    WallEventKind::BarrierEnter => pending_enter = Some(ev.t_nanos),
                    WallEventKind::BarrierExit => {
                        if let Some(enter_nanos) = pending_enter.take() {
                            barriers[log.rank].push(BarrierInterval {
                                enter_nanos,
                                exit_nanos: ev.t_nanos,
                            });
                        }
                    }
                }
            }
        }
        let mut flows = Vec::with_capacity(sends.len().min(recvs.len()));
        let mut dwell = LogHistogram::new();
        let mut unmatched_sends = 0u64;
        for (&(src, dst, seq), &(send_nanos, words)) in &sends {
            match recvs.remove(&(src, dst, seq)) {
                Some(recv_nanos) => {
                    let flow = Flow {
                        src,
                        dst,
                        seq,
                        words,
                        send_nanos,
                        recv_nanos,
                    };
                    dwell.record(flow.dwell_nanos());
                    flows.push(flow);
                }
                None => unmatched_sends += 1,
            }
        }
        flows.sort_by_key(|f| (f.send_nanos, f.src, f.dst, f.seq));
        WallTimeline {
            p: profile.p,
            flows,
            barriers,
            dwell,
            unmatched_sends,
            unmatched_recvs: recvs.len() as u64,
            events_recorded: profile.events_recorded(),
            events_dropped: profile.events_dropped(),
            end_nanos,
        }
    }

    /// Total barrier-spin seconds over all PEs (from the event intervals;
    /// the meters report the same quantity independently of ring capacity).
    pub fn barrier_spin_seconds(&self) -> f64 {
        self.barriers
            .iter()
            .flatten()
            .map(|b| b.exit_nanos.saturating_sub(b.enter_nanos))
            .sum::<u64>() as f64
            / 1e9
    }

    /// Human-readable wall report: flow/dwell/barrier summary.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("wall-clock timeline (threads transport, measured)\n");
        out.push_str(&format!(
            "  events recorded {}  dropped {}  span {:.3} ms\n",
            self.events_recorded,
            self.events_dropped,
            self.end_nanos as f64 / 1e6
        ));
        out.push_str(&format!(
            "  flows matched {}  unmatched sends {}  unmatched recvs {}\n",
            self.flows.len(),
            self.unmatched_sends,
            self.unmatched_recvs
        ));
        if !self.dwell.is_empty() {
            out.push_str(&format!(
                "  queue dwell ns: p50 {}  p90 {}  p99 {}  max {}\n",
                self.dwell.quantile(0.5),
                self.dwell.quantile(0.9),
                self.dwell.quantile(0.99),
                self.dwell.max()
            ));
        }
        let waits: usize = self.barriers.iter().map(Vec::len).sum();
        out.push_str(&format!(
            "  barrier waits {}  spin total {:.3} ms\n",
            waits,
            self.barrier_spin_seconds() * 1e3
        ));
        out
    }
}

/// Populates `reg` with the wall-clock metrics of one profiled run: the
/// queue-dwell histogram plus the per-PE contention meters riding on
/// `stats.contention`.
pub fn wall_metrics(
    reg: &mut MetricsRegistry,
    timeline: &WallTimeline,
    contention: Option<&tricount_comm::ContentionSummary>,
) {
    reg.histogram_units(
        "tricount_wall_queue_dwell_nanos",
        "Send-to-receive queue dwell time (wall nanoseconds)",
        &timeline.dwell,
    );
    reg.counter(
        "tricount_wall_events_recorded_total",
        "Wall-probe events recorded across all PE rings",
        timeline.events_recorded,
    );
    reg.counter(
        "tricount_wall_events_dropped_total",
        "Wall-probe events dropped to ring overflow",
        timeline.events_dropped,
    );
    reg.counter(
        "tricount_wall_flows_matched_total",
        "Send-receive pairs matched in the wall timeline",
        timeline.flows.len() as u64,
    );
    let Some(c) = contention else { return };
    for rank in 0..c.p {
        let labels = [("pe", rank.to_string())];
        reg.gauge_with(
            "tricount_wall_send_lock_wait_seconds",
            "Send-side queue lock wait per PE (wall seconds)",
            &labels,
            c.send_lock_wait_nanos[rank] as f64 / 1e9,
        );
        reg.gauge_with(
            "tricount_wall_recv_lock_wait_seconds",
            "Receive-side queue lock wait per PE (wall seconds)",
            &labels,
            c.recv_lock_wait_nanos[rank] as f64 / 1e9,
        );
        reg.gauge_with(
            "tricount_wall_barrier_spin_seconds",
            "Barrier spin per PE (wall seconds)",
            &labels,
            c.barrier_spin_nanos[rank] as f64 / 1e9,
        );
        reg.gauge_with(
            "tricount_wall_queue_occupancy_highwater",
            "High-water outgoing queue occupancy per PE (messages)",
            &labels,
            c.occupancy_highwater[rank] as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricount_comm::{PeWallLog, WallEvent};

    fn ev(kind: WallEventKind, t_nanos: u64) -> WallEvent {
        WallEvent { kind, t_nanos }
    }

    fn log(rank: usize, p: usize, events: Vec<WallEvent>) -> PeWallLog {
        PeWallLog {
            rank,
            events,
            dropped: 0,
            meters: tricount_comm::ContentionMeters::new(p),
        }
    }

    fn two_pe_profile() -> WallProfile {
        WallProfile {
            p: 2,
            ring_capacity: 64,
            per_pe: vec![
                log(
                    0,
                    2,
                    vec![
                        ev(
                            WallEventKind::Send {
                                to: 1,
                                seq: 0,
                                words: 4,
                            },
                            100,
                        ),
                        ev(
                            WallEventKind::Send {
                                to: 1,
                                seq: 1,
                                words: 2,
                            },
                            200,
                        ),
                        ev(WallEventKind::BarrierEnter, 300),
                        ev(WallEventKind::BarrierExit, 900),
                    ],
                ),
                log(
                    1,
                    2,
                    vec![
                        ev(
                            WallEventKind::Recv {
                                from: 0,
                                seq: 0,
                                words: 4,
                            },
                            450,
                        ),
                        ev(
                            WallEventKind::Recv {
                                from: 0,
                                seq: 1,
                                words: 2,
                            },
                            460,
                        ),
                        ev(WallEventKind::BarrierEnter, 500),
                        ev(WallEventKind::BarrierExit, 901),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn flows_match_by_seq_and_dwell_is_recorded() {
        let tl = WallTimeline::build(&two_pe_profile());
        assert_eq!(tl.flows.len(), 2);
        assert_eq!(tl.unmatched_sends, 0);
        assert_eq!(tl.unmatched_recvs, 0);
        assert_eq!(tl.flows[0].dwell_nanos(), 350);
        assert_eq!(tl.flows[1].dwell_nanos(), 260);
        assert_eq!(tl.dwell.count(), 2);
        assert_eq!(tl.barriers[0].len(), 1);
        assert_eq!(tl.barriers[1].len(), 1);
        assert_eq!(tl.end_nanos, 901);
        let spin = tl.barrier_spin_seconds();
        assert!((spin - (600 + 401) as f64 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn overflow_shows_as_unmatched_not_error() {
        let mut profile = two_pe_profile();
        // the receiver's ring lost the second recv
        profile.per_pe[1].events.remove(1);
        profile.per_pe[1].dropped = 1;
        let tl = WallTimeline::build(&profile);
        assert_eq!(tl.flows.len(), 1);
        assert_eq!(tl.unmatched_sends, 1);
        assert_eq!(tl.events_dropped, 1);
    }

    #[test]
    fn report_and_metrics_render() {
        let tl = WallTimeline::build(&two_pe_profile());
        let rep = tl.report();
        assert!(rep.contains("flows matched 2"), "{rep}");
        assert!(rep.contains("queue dwell"), "{rep}");
        let mut reg = MetricsRegistry::new();
        wall_metrics(&mut reg, &tl, None);
        let text = reg.render();
        assert!(text.contains("tricount_wall_queue_dwell_nanos"));
        assert!(text.contains("tricount_wall_flows_matched_total 2"));
    }
}

//! Chrome-trace (Perfetto-loadable) JSON export of a simulated run.
//!
//! The exporter renders **one track per PE** with its barrier-delimited
//! phase spans, a nested work/communication split, flow arrows for every
//! point-to-point message, and a buffered-words counter series — the
//! per-PE interleaving view the paper's Fig. 5/Fig. 7 analysis needs.
//!
//! **Determinism.** The live `sim_clock` at receive events depends on the
//! thread schedule (whether a poll wins a race decides which `max(clock,
//! arrival)` is applied first), and wall stamps differ every run. Exported
//! timelines therefore *reconstruct* all timestamps from
//! schedule-independent data only: per-phase counter deltas priced under
//! the cost model give the phase boundaries, `t_op·work_ops` gives each
//! PE's work slice, and send timestamps replay each PE's `Sent` events in
//! program order, charging `α` per message exactly like the runtime does
//! (the matching flow arrival is `send + β·ℓ`). Receive events are ignored
//! entirely. The same trace always renders to the same bytes, across
//! schedule perturbations too — which the exporter tests assert.

use tricount_comm::cost::CostModel;
use tricount_comm::stats::RunStats;
use tricount_comm::trace::{Trace, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a timestamp/duration for the JSON output (plain `Display`,
/// which is deterministic and shortest-round-trip in Rust).
fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// An incremental builder of chrome-trace JSON ("trace event format").
/// Timestamps and durations are in microseconds.
#[derive(Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ChromeTraceBuilder::default()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the process `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    /// Names the thread (track) `tid` of process `pid`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    /// A complete slice (`"X"`) on track `tid`: `[ts, ts+dur]` µs.
    pub fn complete(&mut self, pid: u64, tid: u64, cat: &str, name: &str, ts: f64, dur: f64) {
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{},\"dur\":{}}}",
            esc(cat),
            esc(name),
            num(ts),
            num(dur)
        ));
    }

    /// A counter sample (`"C"`): the value of `series` at `ts`.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, series: &str, ts: f64, value: u64) {
        self.events.push(format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"ts\":{},\"args\":{{\"{}\":{value}}}}}",
            esc(name),
            num(ts),
            esc(series)
        ));
    }

    /// A flow-arrow start (`"s"`) bound to the slice enclosing `ts`.
    pub fn flow_start(&mut self, id: u64, pid: u64, tid: u64, cat: &str, name: &str, ts: f64) {
        self.events.push(format!(
            "{{\"ph\":\"s\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{}}}",
            esc(cat),
            esc(name),
            num(ts)
        ));
    }

    /// The matching flow-arrow end (`"f"`, binding point "enclosing").
    pub fn flow_finish(&mut self, id: u64, pid: u64, tid: u64, cat: &str, name: &str, ts: f64) {
        self.events.push(format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{}}}",
            esc(cat),
            esc(name),
            num(ts)
        ));
    }

    /// Assembles the final JSON document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

/// What [`export_run`] produced, with the counts the acceptance criteria
/// compare.
#[derive(Debug)]
pub struct RunExport {
    /// The chrome-trace JSON document.
    pub json: String,
    /// Number of flow arrows (message send→deliver pairs). Equals the
    /// run's `totals().recv_messages`: every sent message is received.
    pub flow_arrows: u64,
    /// Number of PE tracks rendered.
    pub tracks: usize,
}

const PID: u64 = 0;
/// Seconds → chrome-trace microseconds.
const US: f64 = 1e6;

/// Renders a recorded run as chrome-trace JSON: one track per PE, one
/// slice per phase with a nested work/communication split, one flow arrow
/// per point-to-point message, and a `buffered_words` counter series from
/// the queue's `Posted` events. See the module docs for why timestamps are
/// reconstructed from counters rather than read off the live clock.
pub fn export_run(trace: &Trace, stats: &RunStats, cost: &CostModel) -> RunExport {
    let p = stats.p;
    assert_eq!(
        trace.per_pe.len(),
        p,
        "trace and stats disagree on the PE count"
    );
    let mut b = ChromeTraceBuilder::new();
    b.process_name(PID, "simulated machine");
    for r in 0..p {
        b.thread_name(PID, r as u64, &format!("PE {r}"));
    }

    // Deterministic phase boundaries: cumulative per-phase modeled times
    // (max over ranks, the same number `RunStats::phase_time` reports).
    let mut bounds = Vec::with_capacity(stats.phases.len() + 1);
    bounds.push(0.0f64);
    for ph in &stats.phases {
        bounds.push(bounds.last().expect("nonempty") + ph.modeled_time(cost));
    }

    // Per-PE, per-phase slices: the phase span plus a work/comm split.
    let mut work_dur = vec![vec![0.0f64; stats.phases.len()]; p];
    for (pi, ph) in stats.phases.iter().enumerate() {
        let t0 = bounds[pi] * US;
        let dur = (bounds[pi + 1] - bounds[pi]) * US;
        for (r, c) in ph.per_rank.iter().enumerate() {
            b.complete(PID, r as u64, "phase", &ph.name, t0, dur);
            let work = cost.t_op * c.work_ops as f64;
            let comm = (c.modeled_time(cost) - work).max(0.0);
            work_dur[r][pi] = work;
            if c.work_ops > 0 {
                b.complete(PID, r as u64, "work", "work", t0, work * US);
            }
            if comm > 0.0 {
                b.complete(PID, r as u64, "comm", "comm", t0 + work * US, comm * US);
            }
        }
    }

    // Flow arrows: replay each PE's Sent events in program order, charging
    // α per message after that phase's work slice — the runtime's own
    // sender-side rule. The arrival is send + β·ℓ on the destination track.
    let mut flow_arrows = 0u64;
    let mut flow_id = 0u64;
    for (r, events) in trace.per_pe.iter().enumerate() {
        let mut pi = 0usize;
        let mut cum = 0.0f64; // seconds of send charges within the phase
        for ev in events {
            match ev {
                TraceEvent::PhaseEnded { .. } => {
                    // The runtime may record more phase ends than the stats
                    // keep (an inactive trailing "rest" is dropped).
                    if pi + 1 < stats.phases.len() {
                        pi += 1;
                    }
                    cum = 0.0;
                }
                TraceEvent::Sent { to, words, .. } => {
                    cum += cost.alpha;
                    let send_ts = bounds[pi] + work_dur[r][pi] + cum;
                    let arrival = send_ts + cost.beta * *words as f64;
                    flow_id += 1;
                    flow_arrows += 1;
                    b.flow_start(flow_id, PID, r as u64, "msg", "msg", send_ts * US);
                    b.flow_finish(flow_id, PID, *to as u64, "msg", "msg", arrival * US);
                }
                TraceEvent::Posted { buffered_after, .. }
                | TraceEvent::Relayed { buffered_after, .. } => {
                    let ts = bounds[pi] + work_dur[r][pi] + cum;
                    b.counter(
                        PID,
                        r as u64,
                        "buffered_words",
                        "words",
                        ts * US,
                        *buffered_after,
                    );
                }
                _ => {}
            }
        }
    }

    RunExport {
        json: b.finish(),
        flow_arrows,
        tracks: p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use tricount_comm::stats::{Counters, PhaseStats};

    fn tiny_stats() -> RunStats {
        let c0 = Counters {
            work_ops: 100,
            sent_messages: 1,
            sent_words: 4,
            ..Counters::default()
        };
        let c1 = Counters {
            recv_messages: 1,
            recv_words: 4,
            ..Counters::default()
        };
        RunStats {
            p: 2,
            phases: vec![PhaseStats::unmeasured("local", vec![c0, c1])],
        }
    }

    fn tiny_trace() -> Trace {
        Trace {
            per_pe: vec![
                vec![
                    TraceEvent::Sent {
                        to: 1,
                        words: 4,
                        seq: 0,
                    },
                    TraceEvent::PhaseEnded {
                        name: "local".to_string(),
                    },
                ],
                vec![
                    TraceEvent::Received {
                        from: 0,
                        words: 4,
                        seq: 0,
                    },
                    TraceEvent::PhaseEnded {
                        name: "local".to_string(),
                    },
                ],
            ],
            ..Trace::default()
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_counts() {
        let cost = CostModel::supermuc();
        let export = export_run(&tiny_trace(), &tiny_stats(), &cost);
        validate(&export.json).expect("valid JSON");
        assert_eq!(export.tracks, 2);
        assert_eq!(export.flow_arrows, 1);
        assert!(export.json.contains("\"name\":\"PE 1\""));
        assert!(export.json.contains("\"name\":\"local\""));
        assert!(export.json.contains("\"ph\":\"s\""));
        assert!(export.json.contains("\"ph\":\"f\""));
    }

    #[test]
    fn export_is_reproducible() {
        let cost = CostModel::supermuc();
        let a = export_run(&tiny_trace(), &tiny_stats(), &cost);
        let b = export_run(&tiny_trace(), &tiny_stats(), &cost);
        assert_eq!(a.json, b.json);
    }

    #[test]
    fn receive_events_do_not_shift_timestamps() {
        // Schedule-dependent data (receive order) must not affect output:
        // add extra Received events and compare.
        let cost = CostModel::supermuc();
        let base = export_run(&tiny_trace(), &tiny_stats(), &cost);
        let mut shuffled = tiny_trace();
        shuffled.per_pe[1].insert(
            0,
            TraceEvent::Received {
                from: 0,
                words: 4,
                seq: 0,
            },
        );
        shuffled.per_pe[1].remove(1);
        let again = export_run(&shuffled, &tiny_stats(), &cost);
        assert_eq!(base.json, again.json);
    }
}

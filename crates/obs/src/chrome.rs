//! Chrome-trace (Perfetto-loadable) JSON export of a simulated run.
//!
//! The exporter renders **one track per PE** with its barrier-delimited
//! phase spans, a nested work/communication split, flow arrows for every
//! point-to-point message, and a buffered-words counter series — the
//! per-PE interleaving view the paper's Fig. 5/Fig. 7 analysis needs.
//!
//! **Determinism.** The live `sim_clock` at receive events depends on the
//! thread schedule (whether a poll wins a race decides which `max(clock,
//! arrival)` is applied first), and wall stamps differ every run. Exported
//! timelines therefore *reconstruct* all timestamps from
//! schedule-independent data only: per-phase counter deltas priced under
//! the cost model give the phase boundaries, `t_op·work_ops` gives each
//! PE's work slice, and send timestamps replay each PE's `Sent` events in
//! program order, charging `α` per message exactly like the runtime does
//! (the matching flow arrival is `send + β·ℓ`). Receive events are ignored
//! entirely. The same trace always renders to the same bytes, across
//! schedule perturbations too — which the exporter tests assert.

use tricount_comm::cost::CostModel;
use tricount_comm::stats::RunStats;
use tricount_comm::trace::{Trace, TraceEvent};

use crate::wall::WallTimeline;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a timestamp/duration for the JSON output (plain `Display`,
/// which is deterministic and shortest-round-trip in Rust).
fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// An incremental builder of chrome-trace JSON ("trace event format").
/// Timestamps and durations are in microseconds.
#[derive(Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ChromeTraceBuilder::default()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the process `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    /// Names the thread (track) `tid` of process `pid`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    /// A complete slice (`"X"`) on track `tid`: `[ts, ts+dur]` µs.
    pub fn complete(&mut self, pid: u64, tid: u64, cat: &str, name: &str, ts: f64, dur: f64) {
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{},\"dur\":{}}}",
            esc(cat),
            esc(name),
            num(ts),
            num(dur)
        ));
    }

    /// A counter sample (`"C"`): the value of `series` at `ts`.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, series: &str, ts: f64, value: u64) {
        self.events.push(format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"ts\":{},\"args\":{{\"{}\":{value}}}}}",
            esc(name),
            num(ts),
            esc(series)
        ));
    }

    /// A flow-arrow start (`"s"`) bound to the slice enclosing `ts`.
    pub fn flow_start(&mut self, id: u64, pid: u64, tid: u64, cat: &str, name: &str, ts: f64) {
        self.events.push(format!(
            "{{\"ph\":\"s\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{}}}",
            esc(cat),
            esc(name),
            num(ts)
        ));
    }

    /// The matching flow-arrow end (`"f"`, binding point "enclosing").
    pub fn flow_finish(&mut self, id: u64, pid: u64, tid: u64, cat: &str, name: &str, ts: f64) {
        self.events.push(format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{}}}",
            esc(cat),
            esc(name),
            num(ts)
        ));
    }

    /// Assembles the final JSON document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

/// What [`export_run`] produced, with the counts the acceptance criteria
/// compare.
#[derive(Debug)]
pub struct RunExport {
    /// The chrome-trace JSON document.
    pub json: String,
    /// Number of flow arrows (message send→deliver pairs). Equals the
    /// run's `totals().recv_messages`: every sent message is received.
    pub flow_arrows: u64,
    /// Number of PE tracks rendered.
    pub tracks: usize,
}

const PID: u64 = 0;
/// Seconds → chrome-trace microseconds.
const US: f64 = 1e6;

/// Renders a recorded run as chrome-trace JSON: one track per PE, one
/// slice per phase with a nested work/communication split, one flow arrow
/// per point-to-point message, and a `buffered_words` counter series from
/// the queue's `Posted` events. See the module docs for why timestamps are
/// reconstructed from counters rather than read off the live clock.
pub fn export_run(trace: &Trace, stats: &RunStats, cost: &CostModel) -> RunExport {
    let p = stats.p;
    assert_eq!(
        trace.per_pe.len(),
        p,
        "trace and stats disagree on the PE count"
    );
    let mut b = ChromeTraceBuilder::new();
    let flow_arrows = emit_modeled(&mut b, trace, stats, cost);
    RunExport {
        json: b.finish(),
        flow_arrows,
        tracks: p,
    }
}

/// Emits the modeled (reconstructed) machine into `b` as process [`PID`]
/// and returns the flow-arrow count. Shared by [`export_run`] and the
/// modeled half of [`export_dual`].
fn emit_modeled(
    b: &mut ChromeTraceBuilder,
    trace: &Trace,
    stats: &RunStats,
    cost: &CostModel,
) -> u64 {
    let p = stats.p;
    b.process_name(PID, "simulated machine");
    for r in 0..p {
        b.thread_name(PID, r as u64, &format!("PE {r}"));
    }

    // Deterministic phase boundaries: cumulative per-phase modeled times
    // (max over ranks, the same number `RunStats::phase_time` reports).
    let mut bounds = Vec::with_capacity(stats.phases.len() + 1);
    bounds.push(0.0f64);
    for ph in &stats.phases {
        bounds.push(bounds.last().expect("nonempty") + ph.modeled_time(cost));
    }

    // Per-PE, per-phase slices: the phase span plus a work/comm split.
    let mut work_dur = vec![vec![0.0f64; stats.phases.len()]; p];
    for (pi, ph) in stats.phases.iter().enumerate() {
        let t0 = bounds[pi] * US;
        let dur = (bounds[pi + 1] - bounds[pi]) * US;
        for (r, c) in ph.per_rank.iter().enumerate() {
            b.complete(PID, r as u64, "phase", &ph.name, t0, dur);
            let work = cost.t_op * c.work_ops as f64;
            let comm = (c.modeled_time(cost) - work).max(0.0);
            work_dur[r][pi] = work;
            if c.work_ops > 0 {
                b.complete(PID, r as u64, "work", "work", t0, work * US);
            }
            if comm > 0.0 {
                b.complete(PID, r as u64, "comm", "comm", t0 + work * US, comm * US);
            }
        }
    }

    // Flow arrows: replay each PE's Sent events in program order, charging
    // α per message after that phase's work slice — the runtime's own
    // sender-side rule. The arrival is send + β·ℓ on the destination track.
    let mut flow_arrows = 0u64;
    let mut flow_id = 0u64;
    for (r, events) in trace.per_pe.iter().enumerate() {
        let mut pi = 0usize;
        let mut cum = 0.0f64; // seconds of send charges within the phase
        for ev in events {
            match ev {
                TraceEvent::PhaseEnded { .. } => {
                    // The runtime may record more phase ends than the stats
                    // keep (an inactive trailing "rest" is dropped).
                    if pi + 1 < stats.phases.len() {
                        pi += 1;
                    }
                    cum = 0.0;
                }
                TraceEvent::Sent { to, words, .. } => {
                    cum += cost.alpha;
                    let send_ts = bounds[pi] + work_dur[r][pi] + cum;
                    let arrival = send_ts + cost.beta * *words as f64;
                    flow_id += 1;
                    flow_arrows += 1;
                    b.flow_start(flow_id, PID, r as u64, "msg", "msg", send_ts * US);
                    b.flow_finish(flow_id, PID, *to as u64, "msg", "msg", arrival * US);
                }
                TraceEvent::Posted { buffered_after, .. }
                | TraceEvent::Relayed { buffered_after, .. } => {
                    let ts = bounds[pi] + work_dur[r][pi] + cum;
                    b.counter(
                        PID,
                        r as u64,
                        "buffered_words",
                        "words",
                        ts * US,
                        *buffered_after,
                    );
                }
                _ => {}
            }
        }
    }

    flow_arrows
}

/// What [`export_dual`] produced.
#[derive(Debug)]
pub struct DualExport {
    /// The chrome-trace JSON document: process 0 is the modeled machine,
    /// process 1 the measured wall clock.
    pub json: String,
    /// Flow arrows on the modeled track (= `totals().recv_messages`).
    pub modeled_flows: u64,
    /// Flow arrows on the measured track (= matched send→recv pairs in the
    /// wall timeline; ring overflow can make this smaller).
    pub measured_flows: u64,
    /// PE tracks per process.
    pub tracks: usize,
}

/// Wall nanoseconds → chrome-trace microseconds.
const NS_TO_US: f64 = 1e-3;

/// Renders a wall-profiled run as a **dual-clock** chrome trace: process 0
/// is the deterministic modeled reconstruction of [`export_run`], process 1
/// is the measured wall clock of the same run — per-PE phase slices at
/// their real wall boundaries, barrier-spin slices, flow arrows at the
/// actual send→recv stamps, and per-PE contention counter series
/// (`send_lock_wait_ns`, `recv_lock_wait_ns`, `barrier_spin_ns`,
/// `occupancy_highwater`). Loading the document shows fiction and fact
/// side by side, per PE.
///
/// The two processes tick on different epochs (the model starts at 0; the
/// wall track starts when the transport was built), so compare *durations
/// and shapes*, not absolute offsets. The modeled half stays byte-stable
/// across runs; the measured half is honest and therefore is not.
pub fn export_dual(
    trace: &Trace,
    stats: &RunStats,
    cost: &CostModel,
    timeline: &WallTimeline,
) -> DualExport {
    let p = stats.p;
    assert_eq!(timeline.p, p, "timeline and stats disagree on the PE count");
    let mut b = ChromeTraceBuilder::new();
    let modeled_flows = emit_modeled(&mut b, trace, stats, cost);

    const WPID: u64 = 1;
    b.process_name(WPID, "measured (wall)");
    for r in 0..p {
        b.thread_name(WPID, r as u64, &format!("PE {r}"));
    }

    // Measured phase slices: each rank's own cumulative wall seconds. The
    // phase records are stamped on the runtime's epoch, not the
    // transport's, so the slices carry phase *durations* laid end to end
    // from 0 — aligned with the flow stamps only up to setup skew.
    for r in 0..p {
        let mut t = 0.0f64;
        for ph in &stats.phases {
            let dur = ph.wall_per_rank.get(r).copied().unwrap_or(0.0);
            b.complete(WPID, r as u64, "phase", &ph.name, t * US, dur * US);
            t += dur;
        }
    }

    // Barrier spin: real intervals from the wall probe.
    for (r, ivs) in timeline.barriers.iter().enumerate() {
        for iv in ivs {
            let dur = iv.exit_nanos.saturating_sub(iv.enter_nanos);
            b.complete(
                WPID,
                r as u64,
                "barrier",
                "barrier spin",
                iv.enter_nanos as f64 * NS_TO_US,
                dur as f64 * NS_TO_US,
            );
        }
    }

    // Flow arrows at the real send→recv stamps. Ids continue past the
    // modeled ones (they must be unique per document).
    let mut flow_id = u64::MAX / 2;
    for f in &timeline.flows {
        flow_id += 1;
        b.flow_start(
            flow_id,
            WPID,
            f.src as u64,
            "msg",
            "msg",
            f.send_nanos as f64 * NS_TO_US,
        );
        b.flow_finish(
            flow_id,
            WPID,
            f.dst as u64,
            "msg",
            "msg",
            f.recv_nanos as f64 * NS_TO_US,
        );
    }

    // Contention counter series, one closing sample per PE.
    if let Some(c) = &stats.contention {
        let ts = timeline.end_nanos as f64 * NS_TO_US;
        for r in 0..p.min(c.p) {
            let tid = r as u64;
            b.counter(
                WPID,
                tid,
                "send_lock_wait_ns",
                "ns",
                ts,
                c.send_lock_wait_nanos[r],
            );
            b.counter(
                WPID,
                tid,
                "recv_lock_wait_ns",
                "ns",
                ts,
                c.recv_lock_wait_nanos[r],
            );
            b.counter(
                WPID,
                tid,
                "barrier_spin_ns",
                "ns",
                ts,
                c.barrier_spin_nanos[r],
            );
            b.counter(
                WPID,
                tid,
                "occupancy_highwater",
                "msgs",
                ts,
                c.occupancy_highwater[r],
            );
        }
    }

    DualExport {
        json: b.finish(),
        modeled_flows,
        measured_flows: timeline.flows.len() as u64,
        tracks: p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use tricount_comm::stats::{Counters, PhaseStats};

    fn tiny_stats() -> RunStats {
        let c0 = Counters {
            work_ops: 100,
            sent_messages: 1,
            sent_words: 4,
            ..Counters::default()
        };
        let c1 = Counters {
            recv_messages: 1,
            recv_words: 4,
            ..Counters::default()
        };
        RunStats {
            p: 2,
            phases: vec![PhaseStats::unmeasured("local", vec![c0, c1])],
            contention: None,
        }
    }

    fn tiny_trace() -> Trace {
        Trace {
            per_pe: vec![
                vec![
                    TraceEvent::Sent {
                        to: 1,
                        words: 4,
                        seq: 0,
                    },
                    TraceEvent::PhaseEnded {
                        name: "local".to_string(),
                    },
                ],
                vec![
                    TraceEvent::Received {
                        from: 0,
                        words: 4,
                        seq: 0,
                    },
                    TraceEvent::PhaseEnded {
                        name: "local".to_string(),
                    },
                ],
            ],
            ..Trace::default()
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_counts() {
        let cost = CostModel::supermuc();
        let export = export_run(&tiny_trace(), &tiny_stats(), &cost);
        validate(&export.json).expect("valid JSON");
        assert_eq!(export.tracks, 2);
        assert_eq!(export.flow_arrows, 1);
        assert!(export.json.contains("\"name\":\"PE 1\""));
        assert!(export.json.contains("\"name\":\"local\""));
        assert!(export.json.contains("\"ph\":\"s\""));
        assert!(export.json.contains("\"ph\":\"f\""));
    }

    #[test]
    fn export_is_reproducible() {
        let cost = CostModel::supermuc();
        let a = export_run(&tiny_trace(), &tiny_stats(), &cost);
        let b = export_run(&tiny_trace(), &tiny_stats(), &cost);
        assert_eq!(a.json, b.json);
    }

    #[test]
    fn receive_events_do_not_shift_timestamps() {
        // Schedule-dependent data (receive order) must not affect output:
        // add extra Received events and compare.
        let cost = CostModel::supermuc();
        let base = export_run(&tiny_trace(), &tiny_stats(), &cost);
        let mut shuffled = tiny_trace();
        shuffled.per_pe[1].insert(
            0,
            TraceEvent::Received {
                from: 0,
                words: 4,
                seq: 0,
            },
        );
        shuffled.per_pe[1].remove(1);
        let again = export_run(&shuffled, &tiny_stats(), &cost);
        assert_eq!(base.json, again.json);
    }

    #[test]
    fn dual_export_renders_both_clocks() {
        use tricount_comm::{ContentionMeters, PeWallLog, WallEvent, WallEventKind, WallProfile};
        let cost = CostModel::supermuc();
        let mut stats = tiny_stats();
        stats.phases[0].wall_per_rank = vec![0.001, 0.002];
        let mut meters0 = ContentionMeters::new(2);
        meters0.send_lock_wait_nanos[1] = 40;
        meters0.occupancy_highwater[1] = 1;
        stats.contention = Some(
            WallProfile {
                p: 2,
                ring_capacity: 64,
                per_pe: vec![
                    PeWallLog {
                        rank: 0,
                        events: Vec::new(),
                        dropped: 0,
                        meters: meters0.clone(),
                    },
                    PeWallLog {
                        rank: 1,
                        events: Vec::new(),
                        dropped: 0,
                        meters: ContentionMeters::new(2),
                    },
                ],
            }
            .contention(),
        );
        let profile = WallProfile {
            p: 2,
            ring_capacity: 64,
            per_pe: vec![
                PeWallLog {
                    rank: 0,
                    events: vec![
                        WallEvent {
                            kind: WallEventKind::Send {
                                to: 1,
                                seq: 0,
                                words: 4,
                            },
                            t_nanos: 100,
                        },
                        WallEvent {
                            kind: WallEventKind::BarrierEnter,
                            t_nanos: 200,
                        },
                        WallEvent {
                            kind: WallEventKind::BarrierExit,
                            t_nanos: 900,
                        },
                    ],
                    dropped: 0,
                    meters: meters0,
                },
                PeWallLog {
                    rank: 1,
                    events: vec![WallEvent {
                        kind: WallEventKind::Recv {
                            from: 0,
                            seq: 0,
                            words: 4,
                        },
                        t_nanos: 500,
                    }],
                    dropped: 0,
                    meters: ContentionMeters::new(2),
                },
            ],
        };
        let timeline = WallTimeline::build(&profile);
        let export = export_dual(&tiny_trace(), &stats, &cost, &timeline);
        validate(&export.json).expect("valid JSON");
        assert_eq!(export.tracks, 2);
        assert_eq!(export.modeled_flows, 1);
        assert_eq!(export.measured_flows, 1);
        assert!(export.json.contains("\"name\":\"simulated machine\""));
        assert!(export.json.contains("\"name\":\"measured (wall)\""));
        assert!(export.json.contains("barrier spin"));
        assert!(export.json.contains("send_lock_wait_ns"));
        assert!(export.json.contains("occupancy_highwater"));
        // the modeled half is still byte-identical to a plain export's
        let plain = export_run(&tiny_trace(), &stats, &cost);
        assert!(export.json.starts_with(
            plain
                .json
                .strip_suffix("\n]}\n")
                .expect("modeled document suffix")
        ));
    }
}

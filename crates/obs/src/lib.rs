//! Observability layer for the triangle-counting reproduction: turns the
//! runtime's counter/trace records and the engine's statistics into things
//! a human (or a scraper) can read.
//!
//! The paper's whole evaluation is about *where* time and communication go
//! — per-phase breakdowns, bottleneck PEs, message-size distributions
//! (Fig. 5/Fig. 7) — so this crate provides, with zero dependencies beyond
//! `tricount-comm`:
//!
//! * [`chrome`] — a deterministic Chrome-trace/Perfetto JSON exporter:
//!   one track per PE, phase spans with a work/comm split, flow arrows for
//!   every message, a buffered-words counter series. Timestamps are
//!   reconstructed from schedule-independent counters, so the same run
//!   always exports the same bytes (asserted across schedule
//!   perturbations by the exporter tests).
//! * [`hist`] — log-bucketed (HDR-style) [`hist::LogHistogram`]s with
//!   bounded-relative-error quantiles, for query latencies, message sizes
//!   and queue depths.
//! * [`prom`] — a [`prom::MetricsRegistry`] rendering the Prometheus text
//!   exposition format, plus a small parser for round-trip tests.
//! * [`report`] — terminal phase reports, span summaries and registry
//!   population from [`tricount_comm::RunStats`].
//! * [`json`] — a minimal JSON validity checker for exporter tests (the
//!   workspace builds without registry access, so no serde).
//! * [`wall`] — the measured side of the dual clock: rebuilds a
//!   [`wall::WallTimeline`] (matched send→recv flows, queue-dwell
//!   histogram, barrier intervals) from the threads backend's wall-clock
//!   probe, feeding the dual-clock Chrome export and the model-fit report.
//!
//! Span *recording* lives in `tricount-comm` ([`tricount_comm::SpanRecord`],
//! behind the `trace` feature): spans are pushed into private per-PE
//! buffers exactly like trace events, so observing a run never perturbs
//! its schedule — the non-perturbation regression test proves traced and
//! untraced counters bit-equal.

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod prom;
pub mod report;
pub mod wall;

pub use chrome::{export_dual, export_run, ChromeTraceBuilder, RunExport};
pub use hist::{LogHistogram, Summary};
pub use prom::{parse_exposition, MetricsRegistry, Sample};
pub use report::{
    comm_histograms, dispatch_table, phase_report, run_metrics, span_summary, CommHistograms,
    ModelFitReport,
};
pub use wall::{wall_metrics, BarrierInterval, Flow, WallTimeline};

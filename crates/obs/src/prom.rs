//! Prometheus text-exposition rendering (and a small parser for round-trip
//! tests).
//!
//! [`MetricsRegistry`] collects counter/gauge/histogram families and renders
//! them in the Prometheus text format (`# HELP` / `# TYPE` headers, then one
//! sample per line). Histograms come from [`LogHistogram`]s and emit the
//! standard cumulative `_bucket{le="…"}` / `_sum` / `_count` series; latency
//! histograms additionally emit a `<name>_quantile{q="…"}` gauge family so
//! quantiles survive scraping without server-side bucket math. Families are
//! rendered in registration order and buckets in ascending order, so the
//! exposition is deterministic.

use crate::hist::LogHistogram;

/// One parsed sample line of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` parses to [`f64::INFINITY`]).
    pub value: f64,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    /// Rendered sample lines (name + labels + value), in emit order.
    lines: Vec<String>,
}

/// An ordered collection of metric families rendered to the Prometheus
/// text exposition format.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

/// Renders an f64 the way Prometheus expects (no exponent surprises for
/// integral values, `+Inf` spelled out).
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &'static str) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            &mut self.families[i]
        } else {
            self.families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                lines: Vec::new(),
            });
            self.families.last_mut().expect("just pushed")
        }
    }

    /// Registers a monotonically increasing counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let line = format!("{name} {value}");
        self.family(name, help, "counter").lines.push(line);
    }

    /// Registers a labelled counter sample under the family `name`.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: u64) {
        let line = format!("{name}{} {value}", fmt_labels(labels));
        self.family(name, help, "counter").lines.push(line);
    }

    /// Registers a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let line = format!("{name} {}", fmt_value(value));
        self.family(name, help, "gauge").lines.push(line);
    }

    /// Registers a labelled gauge sample under the family `name`.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        let line = format!("{name}{} {}", fmt_labels(labels), fmt_value(value));
        self.family(name, help, "gauge").lines.push(line);
    }

    /// Registers a histogram of raw units (words, depths): cumulative
    /// `_bucket` series over the non-empty log buckets plus `_sum`/`_count`.
    pub fn histogram_units(&mut self, name: &str, help: &str, h: &LogHistogram) {
        self.histogram_scaled(name, help, h, 1.0);
    }

    /// Registers a nanosecond-recorded latency histogram in seconds, plus a
    /// `<name>_quantile{q="…"}` gauge family with p50/p90/p99 readouts.
    pub fn histogram_seconds(&mut self, name: &str, help: &str, h: &LogHistogram) {
        self.histogram_scaled(name, help, h, 1e-9);
        let qname = format!("{name}_quantile");
        for (q, v) in [
            ("0.5", h.quantile_seconds(0.5)),
            ("0.9", h.quantile_seconds(0.9)),
            ("0.99", h.quantile_seconds(0.99)),
        ] {
            self.gauge_with(
                &qname,
                "Quantile readout of the sibling histogram",
                &[("q", q.to_string())],
                v,
            );
        }
    }

    fn histogram_scaled(&mut self, name: &str, help: &str, h: &LogHistogram, scale: f64) {
        let mut lines = Vec::new();
        let mut cum = 0u64;
        for (upper, count) in h.buckets() {
            cum += count;
            lines.push(format!(
                "{name}_bucket{} {cum}",
                fmt_labels(&[("le", fmt_value(upper as f64 * scale))])
            ));
        }
        lines.push(format!(
            "{name}_bucket{} {}",
            fmt_labels(&[("le", "+Inf".to_string())]),
            h.count()
        ));
        lines.push(format!("{name}_sum {}", fmt_value(h.sum() as f64 * scale)));
        lines.push(format!("{name}_count {}", h.count()));
        self.family(name, help, "histogram")
            .lines
            .append(&mut lines);
    }

    /// Renders the whole registry as a text exposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind));
            for line in &f.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// Parses a text exposition back into samples (comment and blank lines are
/// skipped). Returns an error describing the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(b) => {
            let close = line[b..]
                .find('}')
                .map(|i| b + i)
                .ok_or("unterminated label set")?;
            (&line[..b], Some((&line[b + 1..close], &line[close + 1..])))
        }
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (&line[..sp], None)
        }
    };
    let name = name_part.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let (labels, value_str) = match rest {
        Some((labels_str, tail)) => (parse_labels(labels_str)?, tail.trim()),
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (Vec::new(), line[sp..].trim())
        }
    };
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        s => s.parse::<f64>().map_err(|_| format!("bad value {s:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(out);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?}: expected opening quote"));
        }
        let mut val = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => val.push('\\'),
                    Some('"') => val.push('"'),
                    Some('n') => val.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => val.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        out.push((key.trim().to_string(), val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300, 10_000] {
            h.record(v);
        }
        let mut reg = MetricsRegistry::new();
        reg.counter("tc_queries_total", "Queries answered", 42);
        reg.gauge("tc_modeled_seconds", "Modeled time", 0.125);
        reg.gauge_with(
            "tc_phase_seconds",
            "Per-phase modeled time",
            &[("phase", "local".to_string())],
            0.5,
        );
        reg.histogram_units("tc_message_words", "Message sizes", &h);
        let text = reg.render();
        assert!(text.contains("# TYPE tc_message_words histogram"));
        let samples = parse_exposition(&text).expect("parse");
        let get = |n: &str| {
            samples
                .iter()
                .find(|s| s.name == n && s.labels.is_empty())
                .map(|s| s.value)
        };
        assert_eq!(get("tc_queries_total"), Some(42.0));
        assert_eq!(get("tc_modeled_seconds"), Some(0.125));
        assert_eq!(get("tc_message_words_count"), Some(4.0));
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "tc_message_words_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf.value, 4.0);
        let phase = samples
            .iter()
            .find(|s| s.name == "tc_phase_seconds")
            .expect("labelled gauge");
        assert_eq!(
            phase.labels,
            vec![("phase".to_string(), "local".to_string())]
        );
    }

    #[test]
    fn latency_histogram_exposes_quantiles() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record_seconds(0.002);
        }
        for _ in 0..10 {
            h.record_seconds(0.1);
        }
        let mut reg = MetricsRegistry::new();
        reg.histogram_seconds("tc_query_wall_seconds", "Query wall latency", &h);
        let text = reg.render();
        let samples = parse_exposition(&text).expect("parse");
        let p50 = samples
            .iter()
            .find(|s| {
                s.name == "tc_query_wall_seconds_quantile"
                    && s.labels.iter().any(|(k, v)| k == "q" && v == "0.5")
            })
            .expect("p50 present");
        assert!((0.0019..0.0024).contains(&p50.value), "{}", p50.value);
        let p99 = samples
            .iter()
            .find(|s| {
                s.name == "tc_query_wall_seconds_quantile"
                    && s.labels.iter().any(|(k, v)| k == "q" && v == "0.99")
            })
            .expect("p99 present");
        assert!(p99.value > 0.05, "{}", p99.value);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_exposition("metric_without_value").is_err());
        assert!(parse_exposition("m{le=\"unterminated} 1").is_err());
        assert!(parse_exposition("bad name 1").is_err());
        assert!(parse_exposition("m nanvalue").is_err());
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = LogHistogram::new();
        for v in 0..1000u64 {
            h.record(v * 17 % 4096);
        }
        let mut reg = MetricsRegistry::new();
        reg.histogram_units("m", "h", &h);
        let samples = parse_exposition(&reg.render()).expect("parse");
        let mut prev = 0.0;
        for s in samples.iter().filter(|s| s.name == "m_bucket") {
            assert!(s.value >= prev, "cumulative count decreased");
            prev = s.value;
        }
        assert_eq!(prev, 1000.0);
    }
}

//! End-to-end exporter guarantees over real algorithm runs:
//!
//! * the Chrome trace of a p = 16 CETRIC run is valid JSON whose flow-arrow
//!   count equals the number of delivered messages,
//! * the exported bytes are identical across schedule perturbations,
//! * the Prometheus exposition round-trips through the text-format parser,
//! * recording a trace (and spans) does not perturb the run: the metered
//!   `Counters` of a traced run are bit-equal to an untraced run's.

use tricount_comm::{CostModel, SimOptions};
use tricount_core::config::Algorithm;
use tricount_core::dist::run_on;
use tricount_graph::dist::DistGraph;
use tricount_obs::{export_run, json, parse_exposition, run_metrics};

fn rgg16() -> DistGraph {
    let g = tricount_gen::rgg2d_default(2_000, 42);
    DistGraph::new_balanced_vertices(&g, 16)
}

/// Untimed + unperturbed-routing options so counters and trace events are
/// schedule independent (the sim clock stays 0 and never enters the data).
fn traced_opts(perturb_seed: Option<u64>) -> SimOptions {
    SimOptions {
        timing: None,
        record_trace: true,
        perturb_seed,
        ..SimOptions::default()
    }
}

#[test]
fn chrome_trace_is_valid_json_with_one_flow_per_delivery() {
    let alg = Algorithm::Cetric;
    let (r, trace) = run_on(rgg16(), alg, &alg.config(), &traced_opts(None)).unwrap();
    let trace = trace.expect("traced");
    let cost = CostModel::supermuc();
    let export = export_run(&trace, &r.stats, &cost);
    json::validate(&export.json).expect("chrome trace is valid JSON");
    assert_eq!(export.tracks, 16, "one track per PE");
    assert_eq!(
        export.flow_arrows,
        r.stats.totals().recv_messages,
        "every delivered message becomes exactly one flow arrow"
    );
    assert!(export.flow_arrows > 0, "CETRIC on p=16 communicates");
}

#[test]
fn chrome_trace_bytes_identical_across_schedule_perturbations() {
    let alg = Algorithm::Cetric;
    let cost = CostModel::supermuc();
    let mut exports = Vec::new();
    for seed in [None, Some(7), Some(1234)] {
        let (r, trace) = run_on(rgg16(), alg, &alg.config(), &traced_opts(seed)).unwrap();
        let trace = trace.expect("traced");
        exports.push(export_run(&trace, &r.stats, &cost).json);
    }
    assert_eq!(
        exports[0], exports[1],
        "perturbing the schedule must not change the exported bytes"
    );
    assert_eq!(exports[0], exports[2]);
}

#[test]
fn prometheus_snapshot_round_trips_through_the_parser() {
    let alg = Algorithm::Cetric;
    let (r, trace) = run_on(rgg16(), alg, &alg.config(), &traced_opts(None)).unwrap();
    let trace = trace.expect("traced");
    let cost = CostModel::supermuc();
    let text = run_metrics(&r.stats, &cost, Some(&trace)).render();
    let samples = parse_exposition(&text).expect("exposition parses");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(get("tricount_run_pes"), 16.0);
    assert_eq!(
        get("tricount_run_recv_messages_total"),
        r.stats.totals().recv_messages as f64
    );
    assert_eq!(
        get("tricount_run_sent_words_total"),
        r.stats.totals().sent_words as f64
    );
    // the message-size histogram sums to the traced wire volume
    assert_eq!(
        get("tricount_message_words_sum"),
        r.stats.totals().sent_words as f64
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "tricount_phase_modeled_seconds"
                && s.labels.iter().any(|(k, v)| k == "phase" && v == "local")),
        "per-phase gauges carry the phase label"
    );
}

#[test]
fn update_run_exports_a_valid_chrome_trace() {
    use std::sync::Mutex;
    use tricount_core::config::DistConfig;
    use tricount_core::dist::delta::apply_batch_sim;
    use tricount_core::dist::residency::build_residency;
    use tricount_delta::{random_batch, Overlay};

    let g = tricount_gen::rgg2d_default(2_000, 42);
    let cfg = DistConfig::default();
    let dg = DistGraph::new_balanced_vertices(&g, 16);
    let (ranks, _) = build_residency(dg, &cfg, &SimOptions::default());
    let overlays: Vec<Mutex<Overlay>> = ranks
        .iter()
        .map(|r| Mutex::new(Overlay::for_local(&r.local)))
        .collect();
    let batch = random_batch(&g, 40, 9).canonicalize();
    let (_, stats, trace) = apply_batch_sim(&ranks, &overlays, &batch, &cfg, &traced_opts(None));
    let trace = trace.expect("traced");
    let cost = CostModel::supermuc();
    let export = export_run(&trace, &stats, &cost);
    json::validate(&export.json).expect("update-run chrome trace is valid JSON");
    assert_eq!(export.tracks, 16, "one track per PE");
    assert_eq!(
        export.flow_arrows,
        stats.totals().recv_messages,
        "every delivered update message becomes exactly one flow arrow"
    );
    assert!(export.flow_arrows > 0, "the update protocol communicates");
    // the update phases appear in the exported spans
    for phase in ["update_route", "update_count", "update_ghost_refresh"] {
        assert!(
            export.json.contains(phase),
            "phase {phase} missing from the export"
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_run() {
    // Direct-routed variants: every counter is schedule independent, so
    // tracing must leave each one bit-equal.
    for alg in [Algorithm::Cetric, Algorithm::Ditric] {
        let untraced = SimOptions {
            timing: None,
            record_trace: false,
            perturb_seed: None,
            ..SimOptions::default()
        };
        let (r_plain, t_plain) = run_on(rgg16(), alg, &alg.config(), &untraced).unwrap();
        assert!(t_plain.is_none());
        let (r_traced, t_traced) = run_on(rgg16(), alg, &alg.config(), &traced_opts(None)).unwrap();
        assert!(t_traced.is_some());
        assert_eq!(r_plain.triangles, r_traced.triangles);
        assert_eq!(
            r_plain.stats.phases.len(),
            r_traced.stats.phases.len(),
            "{}: same phase structure",
            alg.name()
        );
        for (a, b) in r_plain.stats.phases.iter().zip(&r_traced.stats.phases) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.per_rank,
                b.per_rank,
                "{} phase {}: tracing must not change any counter bit",
                alg.name(),
                a.name
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_grid_invariants() {
    // Grid-routed DITRIC2 re-aggregates at relay PEs in arrival order, so
    // its per-phase *message* counts vary run to run even untraced (checked
    // by probe). Words moved and work done are schedule independent — those
    // must stay bit-equal under tracing.
    let alg = Algorithm::Ditric2;
    let untraced = SimOptions {
        timing: None,
        record_trace: false,
        perturb_seed: None,
        ..SimOptions::default()
    };
    let (r_plain, _) = run_on(rgg16(), alg, &alg.config(), &untraced).unwrap();
    let (r_traced, _) = run_on(rgg16(), alg, &alg.config(), &traced_opts(None)).unwrap();
    assert_eq!(r_plain.triangles, r_traced.triangles);
    let (a, b) = (r_plain.stats.totals(), r_traced.stats.totals());
    assert_eq!(a.sent_words, b.sent_words);
    assert_eq!(a.recv_words, b.recv_words);
    assert_eq!(a.work_ops, b.work_ops);
    assert_eq!(a.coll_alpha_units, b.coll_alpha_units);
    assert_eq!(a.coll_word_units, b.coll_word_units);
}

//! The deterministic-schedule harness: re-run a rank program under seeded
//! permutations of message delivery and thread interleaving and demand
//! bit-identical results; plus re-exports of the runtime's deadlock guard.
//!
//! The simulated runtime (like MPI) guarantees *per-channel* FIFO but says
//! nothing about cross-channel arrival order or thread scheduling. A
//! correct triangle counter must produce identical counts under every
//! legal schedule; a result that varies with the seed reveals a real
//! order-dependence bug (e.g. a reduction over ghost updates applied in
//! arrival order with a non-commutative operation, or a termination race).
//!
//! [`check_schedule_independence`] runs the natural schedule once as the
//! baseline, then `seeds.len()` perturbed schedules
//! ([`SimOptions::perturb_seed`]), comparing full per-rank results. For
//! hang-prone code, [`run_guarded`] (re-exported from `tricount-comm`)
//! wraps any of these runs with the wait-for-graph deadlock watchdog that
//! returns a [`DeadlockReport`] instead of blocking forever.

use std::fmt;

use tricount_comm::{run_sim, Ctx, SimOptions};

pub use tricount_comm::{run_guarded, DeadlockReport, PeSnapshot};

/// One seed whose schedule produced different results than the baseline.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The perturbation seed.
    pub seed: u64,
    /// Debug rendering of the baseline per-rank results.
    pub expected: String,
    /// Debug rendering of this schedule's per-rank results.
    pub found: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: results diverge from the unperturbed schedule\n  baseline: {}\n  perturbed: {}",
            self.seed, self.expected, self.found
        )
    }
}

/// Runs `f` on `p` PEs once unperturbed and once per seed with a permuted
/// schedule, asserting bit-identical per-rank results. Returns the baseline
/// results, or every diverging seed.
///
/// `base_opts` carries timing/trace settings shared by all runs; its
/// `perturb_seed` field is overridden per run.
pub fn check_schedule_independence<R, F>(
    p: usize,
    seeds: &[u64],
    base_opts: &SimOptions,
    f: F,
) -> Result<Vec<R>, Vec<Divergence>>
where
    R: PartialEq + fmt::Debug + Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    let baseline = run_sim(
        p,
        &SimOptions {
            perturb_seed: None,
            ..base_opts.clone()
        },
        &f,
    )
    .output
    .results;
    let mut divergences = Vec::new();
    for &seed in seeds {
        let perturbed = run_sim(
            p,
            &SimOptions {
                perturb_seed: Some(seed),
                ..base_opts.clone()
            },
            &f,
        )
        .output
        .results;
        if perturbed != baseline {
            divergences.push(Divergence {
                seed,
                expected: format!("{baseline:?}"),
                found: format!("{perturbed:?}"),
            });
        }
    }
    if divergences.is_empty() {
        Ok(baseline)
    } else {
        Err(divergences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_program_passes() {
        let results = check_schedule_independence(
            4,
            &[1, 2, 3, 4],
            &SimOptions::default(),
            |ctx: &mut Ctx| ctx.allreduce_sum(&[ctx.rank() as u64 + 1])[0],
        )
        .expect("schedule-independent");
        assert_eq!(results, vec![10, 10, 10, 10]);
    }

    #[test]
    fn order_dependent_program_flagged() {
        // Each PE reports the SOURCE ORDER in which its two incoming
        // messages arrived — inherently schedule-dependent.
        let p = 3;
        let body = move |ctx: &mut Ctx| {
            for d in 0..p {
                if d != ctx.rank() {
                    ctx.send_raw(d, vec![ctx.rank() as u64]);
                }
            }
            // All messages are in flight before anyone polls, so a perturbed
            // schedule always has a pending set to permute.
            ctx.barrier();
            let mut order = Vec::new();
            while order.len() < p - 1 {
                if let Some(m) = ctx.try_recv_raw() {
                    order.push(m.src as u64);
                } else {
                    std::thread::yield_now();
                }
            }
            order
        };
        // Many seeds so at least one permutes some PE's arrival order.
        let seeds: Vec<u64> = (0..32).collect();
        let verdict = check_schedule_independence(p, &seeds, &SimOptions::default(), body);
        assert!(
            verdict.is_err(),
            "arrival-order-dependent program must be flagged"
        );
    }
}

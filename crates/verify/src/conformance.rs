//! The protocol conformance linter: machine-checks the paper's claimed
//! message-trace properties on a recorded [`Trace`].
//!
//! Invariant families (each maps to a [`Violation`] variant):
//!
//! 1. **Exactly-once delivery** — the multiset of posted envelopes
//!    `(dest, payload)` equals the multiset of envelopes delivered at each
//!    destination. A dropped envelope or a double delivery (e.g. a relay
//!    bug) breaks benchmark correctness silently; here it becomes
//!    [`Violation::MissingDelivery`] / [`Violation::ExtraDelivery`].
//! 2. **§IV-A memory lemma** — with `delta: Some(d)`, the buffered volume
//!    observed after any record append stays within `d` plus bounded
//!    overshoot: one maximal record under direct routing, and `2d` plus two
//!    maximal records under grid routing (a poll may append one whole
//!    incoming aggregate of relay records before flushing). `delta: None`
//!    (static aggregation) is exempt — its superlinear buffering is the
//!    behaviour the paper criticises in TriC, not a bug.
//! 3. **§IV-B grid fan-out** — inside grid-routed queue segments a PE's
//!    flushes go only to its O(√p) first-hop peers or down its own column
//!    (the second hop of a relay); anything else defeats the indirection.
//! 4. **Collective epoch alignment** — every PE records the same sequence
//!    of collective entries and phase ends, and each entry is matched by
//!    its exit. Skew here is the precursor of deadlock.
//! 5. **Meter conformance** — the words the cost model was charged for
//!    point-to-point traffic equal the words that actually crossed the
//!    simulated wire (checked per PE and direction against [`RunStats`]).

use std::fmt;

use tricount_comm::{CollKind, Grid, RunStats, SimOutput, Trace, TraceEvent, HEADER_WORDS};
use tricount_graph::hash::{FxHashMap, FxHashSet};

/// One detected protocol violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An envelope was posted but never delivered at its destination.
    MissingDelivery {
        /// Destination PE of the lost envelope(s).
        dest: usize,
        /// Payload hash of the lost envelope(s).
        payload_hash: u64,
        /// How many copies went missing.
        count: u64,
    },
    /// An envelope was delivered that was never posted (or delivered twice).
    ExtraDelivery {
        /// PE that received the surplus envelope(s).
        dest: usize,
        /// Payload hash of the surplus envelope(s).
        payload_hash: u64,
        /// How many surplus copies arrived.
        count: u64,
    },
    /// Buffered volume exceeded the §IV-A memory bound.
    MemoryBound {
        /// PE whose buffers overshot.
        pe: usize,
        /// Observed buffered words after a record append.
        buffered: u64,
        /// The bound in force (δ plus allowed overshoot).
        bound: u64,
        /// The configured flush threshold δ.
        delta: u64,
    },
    /// A grid-routed flush left toward a peer outside the allowed
    /// row/column set.
    GridFanout {
        /// Flushing PE.
        pe: usize,
        /// The disallowed peer.
        peer: usize,
    },
    /// A PE's collective/phase sequence diverges from rank 0's.
    EpochMismatch {
        /// The diverging PE.
        pe: usize,
        /// Index into the epoch sequence where the divergence starts.
        index: usize,
        /// What rank 0 recorded at that index (or "∅" past its end).
        expected: String,
        /// What this PE recorded (or "∅" past its end).
        found: String,
    },
    /// A collective entry without a matching exit (or vice versa) on one PE.
    UnbalancedCollective {
        /// The offending PE.
        pe: usize,
        /// Human-readable description of the imbalance.
        detail: String,
    },
    /// A PE ended a phase whose name is not in the registered vocabulary.
    UnregisteredPhase {
        /// The PE that ended the rogue phase.
        pe: usize,
        /// The unregistered phase name.
        name: String,
    },
    /// Metered point-to-point words disagree with the traced words.
    MeterMismatch {
        /// The PE whose counters disagree.
        pe: usize,
        /// `"sent"` or `"received"`.
        direction: &'static str,
        /// Words according to the cost-model counters.
        metered: u64,
        /// Words according to the trace.
        traced: u64,
    },
    /// A receive with no matching send: the received `(from, seq)` pair
    /// appears nowhere in the sender's trace, so the receive cannot be
    /// happens-before-ordered after any send.
    HbUnmatchedReceive {
        /// The receiving PE.
        pe: usize,
        /// The claimed sender.
        from: usize,
        /// The sequence number carried by the orphaned receive.
        seq: u64,
    },
    /// Point-to-point channels are FIFO per `(sender, receiver)` pair, so
    /// receive sequence numbers from one sender must be strictly
    /// increasing; a regression means a receive was recorded (or delivered)
    /// before an earlier send's receive — not happens-after its own send's
    /// predecessors.
    HbReceiveReorder {
        /// The receiving PE.
        pe: usize,
        /// The sender whose stream went backwards.
        from: usize,
        /// The out-of-order sequence number.
        seq: u64,
        /// The highest sequence number already received from `from`.
        prev_seq: u64,
    },
    /// Collective epochs overlap on one PE: it entered a collective while
    /// still inside another, or exited one it never entered. The runtime's
    /// collectives are strictly sequential barriers; overlap means the
    /// recorded order cannot have happened.
    CollectiveOverlap {
        /// The offending PE.
        pe: usize,
        /// Index of the offending event within the PE's stream.
        index: usize,
        /// Human-readable description of the overlap.
        detail: String,
    },
    /// The happens-before sweep stalled: no PE's next event is enabled,
    /// yet unprocessed events remain. The remaining events form a causal
    /// cycle (e.g. a receive ordered before its send across a barrier).
    HbCycle {
        /// Each stuck PE's next pending event, rendered.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingDelivery {
                dest,
                payload_hash,
                count,
            } => write!(
                f,
                "{count} envelope(s) posted to PE {dest} (payload {payload_hash:#x}) never delivered"
            ),
            Violation::ExtraDelivery {
                dest,
                payload_hash,
                count,
            } => write!(
                f,
                "{count} surplus envelope(s) delivered at PE {dest} (payload {payload_hash:#x})"
            ),
            Violation::MemoryBound {
                pe,
                buffered,
                bound,
                delta,
            } => write!(
                f,
                "PE {pe} buffered {buffered} words, exceeding the memory bound {bound} (delta = {delta})"
            ),
            Violation::GridFanout { pe, peer } => write!(
                f,
                "PE {pe} flushed a grid-routed buffer to PE {peer}, outside its row/column peer set"
            ),
            Violation::EpochMismatch {
                pe,
                index,
                expected,
                found,
            } => write!(
                f,
                "PE {pe} epoch sequence diverges at step {index}: rank 0 has {expected}, PE has {found}"
            ),
            Violation::UnbalancedCollective { pe, detail } => {
                write!(f, "PE {pe}: unbalanced collective ({detail})")
            }
            Violation::UnregisteredPhase { pe, name } => write!(
                f,
                "PE {pe} ended phase '{name}', which is not in the registered phase vocabulary"
            ),
            Violation::MeterMismatch {
                pe,
                direction,
                metered,
                traced,
            } => write!(
                f,
                "PE {pe}: cost model metered {metered} {direction} words but the trace shows {traced}"
            ),
            Violation::HbUnmatchedReceive { pe, from, seq } => write!(
                f,
                "PE {pe} received seq {seq} from PE {from}, but PE {from} never sent it"
            ),
            Violation::HbReceiveReorder {
                pe,
                from,
                seq,
                prev_seq,
            } => write!(
                f,
                "PE {pe}: receive stream from PE {from} went backwards (seq {seq} after {prev_seq})"
            ),
            Violation::CollectiveOverlap { pe, index, detail } => {
                write!(
                    f,
                    "PE {pe} event {index}: collective epoch overlap ({detail})"
                )
            }
            Violation::HbCycle { detail } => {
                write!(
                    f,
                    "happens-before sweep stalled on a causal cycle: {detail}"
                )
            }
        }
    }
}

/// The linter's verdict on one trace.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// All detected violations, in detection order.
    pub violations: Vec<Violation>,
    /// Envelopes posted across all PEs (fault-dropped posts included).
    pub envelopes_posted: u64,
    /// Envelopes delivered across all PEs.
    pub envelopes_delivered: u64,
    /// Max over PEs of distinct peers contacted by grid-segment flushes.
    pub max_grid_fanout: usize,
}

impl ConformanceReport {
    /// Whether no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance: {} posted, {} delivered, grid fan-out ≤ {}: {}",
            self.envelopes_posted,
            self.envelopes_delivered,
            self.max_grid_fanout,
            if self.is_clean() {
                "clean"
            } else {
                "VIOLATIONS"
            }
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Per-PE queue-segment state while scanning (invariants 2 and 3).
struct Segment {
    delta: Option<u64>,
    grid: bool,
    max_record: u64,
}

/// One step of the epoch sequence (invariant 4).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Epoch {
    Coll(&'static str),
    Phase(String),
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Epoch::Coll(name) => write!(f, "collective '{name}'"),
            Epoch::Phase(name) => write!(f, "phase end '{name}'"),
        }
    }
}

/// Runs invariants 1–4 over a recorded trace.
pub fn check_trace(trace: &Trace) -> ConformanceReport {
    let p = trace.num_ranks();
    let mut report = ConformanceReport::default();

    // Invariant 1: exactly-once delivery, as a signed multiset keyed by
    // (dest, payload_hash, payload_words).
    let mut ledger: FxHashMap<(usize, u64, u64), i64> = FxHashMap::default();

    // Invariant 4: per-PE epoch sequences and enter/exit pairing.
    let mut epochs: Vec<Vec<Epoch>> = vec![Vec::new(); p];

    let grid = Grid::new(p.max(1));
    let mut allowed_cache: FxHashMap<usize, FxHashSet<usize>> = FxHashMap::default();

    for (pe, events) in trace.per_pe.iter().enumerate() {
        let mut segment: Option<Segment> = None;
        let mut coll_stack: Vec<CollKind> = Vec::new();
        let mut grid_peers: FxHashSet<usize> = FxHashSet::default();

        for ev in events {
            match ev {
                TraceEvent::QueueConfigured { delta, grid } => {
                    segment = Some(Segment {
                        delta: *delta,
                        grid: *grid,
                        max_record: 0,
                    });
                }
                TraceEvent::Posted {
                    dest,
                    payload_words,
                    payload_hash,
                    buffered_after,
                    ..
                } => {
                    report.envelopes_posted += 1;
                    *ledger
                        .entry((*dest, *payload_hash, *payload_words))
                        .or_insert(0) += 1;
                    check_memory(
                        pe,
                        &mut segment,
                        *payload_words,
                        *buffered_after,
                        &mut report,
                    );
                }
                TraceEvent::Relayed {
                    payload_words,
                    buffered_after,
                    ..
                } => {
                    check_memory(
                        pe,
                        &mut segment,
                        *payload_words,
                        *buffered_after,
                        &mut report,
                    );
                }
                TraceEvent::Delivered {
                    payload_words,
                    payload_hash,
                } => {
                    report.envelopes_delivered += 1;
                    *ledger
                        .entry((pe, *payload_hash, *payload_words))
                        .or_insert(0) -= 1;
                }
                TraceEvent::Flushed { peer, .. } => {
                    if segment.as_ref().is_some_and(|s| s.grid) {
                        grid_peers.insert(*peer);
                        let allowed = allowed_cache
                            .entry(pe)
                            .or_insert_with(|| allowed_grid_peers(&grid, pe));
                        if !allowed.contains(peer) {
                            report
                                .violations
                                .push(Violation::GridFanout { pe, peer: *peer });
                        }
                    }
                }
                TraceEvent::Sent { .. } | TraceEvent::Received { .. } => {}
                TraceEvent::CollEnter { kind } => {
                    coll_stack.push(*kind);
                    epochs[pe].push(Epoch::Coll(kind.name()));
                }
                TraceEvent::CollExit { kind } => match coll_stack.pop() {
                    Some(entered) if entered == *kind => {}
                    Some(entered) => report.violations.push(Violation::UnbalancedCollective {
                        pe,
                        detail: format!(
                            "exited '{}' while inside '{}'",
                            kind.name(),
                            entered.name()
                        ),
                    }),
                    None => report.violations.push(Violation::UnbalancedCollective {
                        pe,
                        detail: format!("exit of '{}' without an entry", kind.name()),
                    }),
                },
                TraceEvent::PhaseEnded { name } => {
                    epochs[pe].push(Epoch::Phase(name.clone()));
                }
            }
        }
        for kind in coll_stack {
            report.violations.push(Violation::UnbalancedCollective {
                pe,
                detail: format!("'{}' entered but never exited", kind.name()),
            });
        }
        report.max_grid_fanout = report.max_grid_fanout.max(grid_peers.len());
    }

    // Settle the delivery ledger. Sort for deterministic violation order.
    let mut unsettled: Vec<(&(usize, u64, u64), &i64)> =
        ledger.iter().filter(|(_, &c)| c != 0).collect();
    unsettled.sort_unstable();
    for (&(dest, payload_hash, _), &count) in unsettled {
        if count > 0 {
            report.violations.push(Violation::MissingDelivery {
                dest,
                payload_hash,
                count: count as u64,
            });
        } else {
            report.violations.push(Violation::ExtraDelivery {
                dest,
                payload_hash,
                count: (-count) as u64,
            });
        }
    }

    // Epoch alignment against rank 0.
    if p > 1 {
        let reference = epochs[0].clone();
        for (pe, seq) in epochs.iter().enumerate().skip(1) {
            let steps = reference.len().max(seq.len());
            for i in 0..steps {
                let expected = reference.get(i);
                let found = seq.get(i);
                if expected != found {
                    report.violations.push(Violation::EpochMismatch {
                        pe,
                        index: i,
                        expected: expected.map_or_else(|| "∅".to_string(), |e| e.to_string()),
                        found: found.map_or_else(|| "∅".to_string(), |e| e.to_string()),
                    });
                    break; // one divergence report per PE
                }
            }
        }
    }

    report
}

/// Invariant 2: the §IV-A memory bound for one record-append observation.
fn check_memory(
    pe: usize,
    segment: &mut Option<Segment>,
    payload_words: u64,
    buffered_after: u64,
    report: &mut ConformanceReport,
) {
    let Some(seg) = segment.as_mut() else {
        return;
    };
    let record = HEADER_WORDS + payload_words;
    seg.max_record = seg.max_record.max(record);
    let Some(delta) = seg.delta else {
        return; // static aggregation: superlinear by design
    };
    let bound = if seg.grid {
        2 * delta + 2 * seg.max_record
    } else {
        delta + seg.max_record
    };
    if buffered_after > bound {
        report.violations.push(Violation::MemoryBound {
            pe,
            buffered: buffered_after,
            bound,
            delta,
        });
    }
}

/// Invariant 3's allowed peer set: first-hop proxies of `pe` plus every PE
/// in `pe`'s own column (relay second hops travel down the destination's
/// column, which is the relaying proxy's column).
fn allowed_grid_peers(grid: &Grid, pe: usize) -> FxHashSet<usize> {
    let mut allowed: FxHashSet<usize> = grid.first_hop_peers(pe).into_iter().collect();
    let col = grid.pos(pe).1;
    for q in 0..grid.num_ranks() {
        if q != pe && grid.pos(q).1 == col {
            allowed.insert(q);
        }
    }
    allowed
}

/// Invariant 5: metered vs. traced point-to-point words, per PE and
/// direction.
pub fn check_meters(trace: &Trace, stats: &RunStats) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (pe, events) in trace.per_pe.iter().enumerate() {
        let traced_sent: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sent { words, .. } => Some(*words),
                _ => None,
            })
            .sum();
        let traced_recv: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Received { words, .. } => Some(*words),
                _ => None,
            })
            .sum();
        let metered_sent: u64 = stats
            .phases
            .iter()
            .map(|ph| ph.per_rank[pe].sent_words)
            .sum();
        let metered_recv: u64 = stats
            .phases
            .iter()
            .map(|ph| ph.per_rank[pe].recv_words)
            .sum();
        if traced_sent != metered_sent {
            violations.push(Violation::MeterMismatch {
                pe,
                direction: "sent",
                metered: metered_sent,
                traced: traced_sent,
            });
        }
        if traced_recv != metered_recv {
            violations.push(Violation::MeterMismatch {
                pe,
                direction: "received",
                metered: metered_recv,
                traced: traced_recv,
            });
        }
    }
    violations
}

/// Invariant 7 — closed phase vocabulary: every `PhaseEnded` event must
/// carry a name from `registry` (the central list in
/// `tricount_core::dist::phases::ALL`). A name outside the registry means a
/// driver bypassed the registry module, so exporters and dashboards keyed
/// on phase names would silently miss it.
pub fn check_phase_names(trace: &Trace, registry: &[&str]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (pe, events) in trace.per_pe.iter().enumerate() {
        for e in events {
            if let TraceEvent::PhaseEnded { name } = e {
                if !registry.contains(&name.as_str()) {
                    violations.push(Violation::UnregisteredPhase {
                        pe,
                        name: name.clone(),
                    });
                }
            }
        }
    }
    violations
}

/// Runs every invariant (1–5) over a traced simulation output. Panics if
/// the run was not traced (`SimOptions::record_trace` unset or the `trace`
/// feature missing) — calling the linter without a trace is a harness bug.
pub fn check_sim<R>(sim: &SimOutput<R>) -> ConformanceReport {
    let trace = sim
        .trace
        .as_ref()
        .expect("run was not traced; enable SimOptions::record_trace and the `trace` feature");
    let mut report = check_trace(trace);
    report
        .violations
        .extend(check_meters(trace, &sim.output.stats));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricount_comm::hash_words;

    fn posted(dest: usize, payload: &[u64], buffered_after: u64) -> TraceEvent {
        TraceEvent::Posted {
            dest,
            hop: dest,
            payload_words: payload.len() as u64,
            payload_hash: hash_words(payload),
            buffered_after,
        }
    }

    fn delivered(payload: &[u64]) -> TraceEvent {
        TraceEvent::Delivered {
            payload_words: payload.len() as u64,
            payload_hash: hash_words(payload),
        }
    }

    fn queue(delta: Option<u64>, grid: bool) -> TraceEvent {
        TraceEvent::QueueConfigured { delta, grid }
    }

    fn trace_of(per_pe: Vec<Vec<TraceEvent>>) -> Trace {
        Trace {
            per_pe,
            ..Trace::default()
        }
    }

    #[test]
    fn empty_trace_is_clean() {
        let rep = check_trace(&Trace::default());
        assert!(rep.is_clean(), "{rep}");
    }

    #[test]
    fn matched_post_and_delivery_is_clean() {
        let trace = trace_of(vec![
            vec![queue(Some(8), false), posted(1, &[42, 43], 4)],
            vec![queue(Some(8), false), delivered(&[42, 43])],
        ]);

        let rep = check_trace(&trace);
        assert!(rep.is_clean(), "{rep}");
        assert_eq!(rep.envelopes_posted, 1);
        assert_eq!(rep.envelopes_delivered, 1);
    }

    #[test]
    fn missing_delivery_detected() {
        let trace = trace_of(vec![
            vec![queue(Some(8), false), posted(1, &[9], 3)],
            vec![],
        ]);

        let rep = check_trace(&trace);
        assert!(matches!(
            rep.violations.as_slice(),
            [Violation::MissingDelivery {
                dest: 1,
                count: 1,
                ..
            }]
        ));
    }

    #[test]
    fn double_delivery_detected() {
        let trace = trace_of(vec![
            vec![queue(Some(8), false), posted(1, &[9], 3)],
            vec![delivered(&[9]), delivered(&[9])],
        ]);

        let rep = check_trace(&trace);
        assert!(matches!(
            rep.violations.as_slice(),
            [Violation::ExtraDelivery {
                dest: 1,
                count: 1,
                ..
            }]
        ));
    }

    #[test]
    fn memory_bound_breach_detected() {
        // δ=4, record = 2+1 = 3 words; buffered_after 10 > 4+3
        let trace = trace_of(vec![
            vec![
                queue(Some(4), false),
                posted(1, &[1], 3),
                posted(1, &[2], 10),
            ],
            vec![delivered(&[1]), delivered(&[2])],
        ]);

        let rep = check_trace(&trace);
        assert!(rep.violations.iter().any(|v| matches!(
            v,
            Violation::MemoryBound {
                pe: 0,
                buffered: 10,
                ..
            }
        )));
    }

    #[test]
    fn static_aggregation_exempt_from_memory_bound() {
        let trace = trace_of(vec![
            vec![queue(None, false), posted(1, &[1], 1_000_000)],
            vec![delivered(&[1])],
        ]);

        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn grid_fanout_violation_detected() {
        // p=16: PE 0's row is {1,2,3}, column {4,8,12}; flushing to 5 in a
        // grid segment is out of set.
        let mut per_pe = vec![Vec::new(); 16];
        per_pe[0] = vec![
            queue(Some(8), true),
            TraceEvent::Flushed { peer: 1, words: 4 },
            TraceEvent::Flushed { peer: 5, words: 4 },
        ];
        let rep = check_trace(&trace_of(per_pe));
        assert!(matches!(
            rep.violations.as_slice(),
            [Violation::GridFanout { pe: 0, peer: 5 }]
        ));
        assert_eq!(rep.max_grid_fanout, 2);
    }

    #[test]
    fn epoch_skew_detected() {
        let enter = |k| TraceEvent::CollEnter { kind: k };
        let exit = |k| TraceEvent::CollExit { kind: k };
        let trace = trace_of(vec![
            vec![
                enter(CollKind::Barrier),
                exit(CollKind::Barrier),
                enter(CollKind::AllreduceSum),
                exit(CollKind::AllreduceSum),
            ],
            // PE 1 skips the barrier
            vec![enter(CollKind::AllreduceSum), exit(CollKind::AllreduceSum)],
        ]);

        let rep = check_trace(&trace);
        assert!(matches!(
            rep.violations.as_slice(),
            [Violation::EpochMismatch {
                pe: 1,
                index: 0,
                ..
            }]
        ));
    }

    #[test]
    fn unbalanced_collective_detected() {
        let trace = trace_of(vec![vec![TraceEvent::CollEnter {
            kind: CollKind::Barrier,
        }]]);

        let rep = check_trace(&trace);
        assert!(matches!(
            rep.violations.as_slice(),
            [Violation::UnbalancedCollective { pe: 0, .. }]
        ));
    }
}

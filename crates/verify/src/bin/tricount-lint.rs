//! `tricount-lint` — the workspace's source-level concurrency lint pass.
//!
//! Scans every crate's `src/` tree for the three TC-L rules (lock held
//! across a blocking call, double lock acquisition, unguarded blocking
//! receive) and exits non-zero on any finding. Run from the workspace
//! root, or pass the root as the first argument:
//!
//! ```text
//! cargo run -p tricount-verify --bin tricount-lint
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use tricount_verify::lint_workspace;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    match lint_workspace(&root) {
        Ok(report) => {
            print!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tricount-lint: cannot scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
